//! The three BO searchers as declarative policy compositions: HeterBO
//! (the paper's contribution), ConvBO and CherryPick (the baselines),
//! plus the Fig 18 budget-aware "improved" baseline variants.
//!
//! One kernel ([`crate::search::kernel::SearchKernel`]) runs all of them;
//! the paper's mechanisms are independent switches on [`BoConfig`] (see
//! the table in [`crate::search`]) that [`BoCore::kernel`] translates
//! into stage policies. This keeps the comparison honest — the baselines
//! differ from HeterBO by exactly the mechanisms the paper claims matter,
//! nothing else — and gives the ablation benchmarks their knobs for free.

use crate::acquisition::AcquisitionKind;
use crate::env::ProfilingEnv;
use crate::observation::SearchOutcome;
use crate::scenario::Scenario;
use crate::search::kernel::SearchKernel;
use crate::search::policies::{
    ConcaveScaleOutPrior, ConvergenceStop, CostPenalisedAcquisition, InitPolicy, RandomInit,
    SpaceTrim, TeiReserveGate, TypeSweepInit,
};
use crate::search::surrogate::RefitPolicy;
use crate::search::trace::{NullSink, TraceSink};
use crate::search::Searcher;
use mlcd_cloudsim::InstanceType;

/// How the first probes are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitStrategy {
    /// Conventional BO: `k` uniformly random candidates — which can land
    /// on a 50-node GPU cluster and burn a large slice of the budget
    /// before the model knows anything.
    RandomPoints(usize),
    /// HeterBO (§III-C "Initial points"): one single-node probe of each
    /// instance type, cheapest first — bounded cost, full scale-up
    /// coverage.
    TypeSweep,
}

/// Switches for the paper's mechanisms.
///
/// Construct via [`BoConfig::builder`] — the struct is `#[non_exhaustive]`
/// so future policy knobs are not breaking changes.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub struct BoConfig {
    /// Initialisation strategy.
    pub init: InitStrategy,
    /// Relative expected-improvement stop threshold (fraction of the
    /// incumbent's utility).
    pub ei_rel_threshold: f64,
    /// HeterBO's confidence-aware stop: stop only when *no* candidate has
    /// ≥5 % probability of improving by more than the threshold (the
    /// paper's "95 % confidence interval of the expected improvement").
    pub ci_stop: bool,
    /// Divide each candidate's EI by its own probing cost (paper
    /// eqs. 7–8).
    pub cost_penalty: bool,
    /// Constraint-aware acquisition: discard candidates whose TEI
    /// (paper eqs. 5–6) says they can never pay off, and rank incumbents
    /// with the scenario's feasibility filter.
    pub constraint_aware: bool,
    /// Protective mechanism: never start a probe that would eat the
    /// reserve needed to finish training on the current best.
    pub reserve_protection: bool,
    /// Concave scale-out prior: once two neighbouring probes of a type
    /// show declining speed, prune all larger scale-outs of that type.
    pub concave_prior: bool,
    /// Cap on BO-loop probes *after* initialisation (the init sweep is
    /// budgeted separately — a 19-type sweep must not starve the loop).
    pub max_steps: usize,
    /// Minimum observations before a convergence-based stop may fire —
    /// guards against declaring victory off a 2-point surrogate.
    pub min_obs_before_stop: usize,
    /// Whether profiling time/money already spent counts against the
    /// deadline/budget when ranking deployments. HeterBO: yes — that is
    /// the paper's whole point. ConvBO/CherryPick: no — they pick a
    /// deployment whose *training alone* fits the constraint and then
    /// overrun by roughly their profiling overhead, exactly the violation
    /// the paper measures in Figs 10–11 and 14.
    pub account_sunk: bool,
    /// Run the initial probes as one concurrent batch (the type sweep is
    /// embarrassingly parallel): same money, wall-clock of the slowest
    /// probe only. An extension beyond the paper, off by default.
    pub parallel_init: bool,
    /// Which acquisition function ranks candidates. The paper (and every
    /// searcher here by default) uses EI; UCB and POI are selectable for
    /// the acquisition-choice comparison.
    pub acquisition: AcquisitionKind,
    /// Refit GP hyperparameters every k-th observation and extend the
    /// posterior incrementally (`O(n²)`) in between. 1 = refit every step
    /// (the default; exact but `O(n³)` per step).
    pub gp_refit_every: usize,
    /// Warm-start each GP refit from the previous step's fitted
    /// hyperparameters (extra optimiser start; deterministic). See
    /// [`RefitPolicy::warm_start`]. The paper-faithful constructors
    /// leave this off: warm starts can land a (better) different
    /// likelihood optimum, which perturbs search trajectories and the
    /// seed-pinned figure reproductions. Flip it on for speed — the
    /// `search_gp_refits` bench measures the whole-search effect.
    pub gp_warm_start: bool,
    /// Observation count from which warm-started refits shrink their
    /// restart budget. See [`RefitPolicy::warm_burnin`].
    pub gp_warm_burnin: usize,
    /// Latin-hypercube restarts kept per refit past the burn-in. See
    /// [`RefitPolicy::warm_restarts`].
    pub gp_warm_restarts: usize,
    /// RNG seed (init points, tie-breaks, GP restarts).
    pub seed: u64,
}

impl BoConfig {
    /// Start from the conventional-BO baseline defaults (CherryPick's
    /// base: 3 random init points, plain EI, 10 % stop, every paper
    /// mechanism off) and override what differs.
    pub fn builder() -> BoConfigBuilder {
        BoConfigBuilder {
            cfg: BoConfig {
                init: InitStrategy::RandomPoints(3),
                ei_rel_threshold: 0.10,
                ci_stop: false,
                cost_penalty: false,
                constraint_aware: false,
                reserve_protection: false,
                concave_prior: false,
                max_steps: 27,
                min_obs_before_stop: 10,
                account_sunk: false,
                parallel_init: false,
                acquisition: AcquisitionKind::ExpectedImprovement,
                gp_refit_every: 1,
                gp_warm_start: false,
                gp_warm_burnin: 8,
                gp_warm_restarts: 3,
                seed: 0,
            },
        }
    }
}

/// Builds a [`BoConfig`] field by field — the one place the searcher
/// constructors (and ablation variants) derive their configs from.
#[derive(Debug, Clone)]
pub struct BoConfigBuilder {
    cfg: BoConfig,
}

impl BoConfigBuilder {
    /// Initialisation strategy.
    pub fn init(mut self, v: InitStrategy) -> Self {
        self.cfg.init = v;
        self
    }

    /// Relative EI stop threshold.
    pub fn ei_rel_threshold(mut self, v: f64) -> Self {
        self.cfg.ei_rel_threshold = v;
        self
    }

    /// Confidence-aware stop.
    pub fn ci_stop(mut self, v: bool) -> Self {
        self.cfg.ci_stop = v;
        self
    }

    /// Probing-cost EI penalty.
    pub fn cost_penalty(mut self, v: bool) -> Self {
        self.cfg.cost_penalty = v;
        self
    }

    /// Constraint-aware acquisition (TEI filter + feasibility ranking).
    pub fn constraint_aware(mut self, v: bool) -> Self {
        self.cfg.constraint_aware = v;
        self
    }

    /// Protective deadline/budget reserve.
    pub fn reserve_protection(mut self, v: bool) -> Self {
        self.cfg.reserve_protection = v;
        self
    }

    /// Concave scale-out prior.
    pub fn concave_prior(mut self, v: bool) -> Self {
        self.cfg.concave_prior = v;
        self
    }

    /// Cap on BO-loop probes after initialisation.
    pub fn max_steps(mut self, v: usize) -> Self {
        self.cfg.max_steps = v;
        self
    }

    /// Minimum observations before a convergence stop may fire.
    pub fn min_obs_before_stop(mut self, v: usize) -> Self {
        self.cfg.min_obs_before_stop = v;
        self
    }

    /// Count sunk profiling spend when ranking deployments.
    pub fn account_sunk(mut self, v: bool) -> Self {
        self.cfg.account_sunk = v;
        self
    }

    /// Run the init probes as one concurrent batch.
    pub fn parallel_init(mut self, v: bool) -> Self {
        self.cfg.parallel_init = v;
        self
    }

    /// Acquisition function.
    pub fn acquisition(mut self, v: AcquisitionKind) -> Self {
        self.cfg.acquisition = v;
        self
    }

    /// GP refit cadence.
    pub fn gp_refit_every(mut self, v: usize) -> Self {
        self.cfg.gp_refit_every = v;
        self
    }

    /// Warm-start GP refits.
    pub fn gp_warm_start(mut self, v: bool) -> Self {
        self.cfg.gp_warm_start = v;
        self
    }

    /// Warm-start burn-in observation count.
    pub fn gp_warm_burnin(mut self, v: usize) -> Self {
        self.cfg.gp_warm_burnin = v;
        self
    }

    /// Restarts kept per warm refit past the burn-in.
    pub fn gp_warm_restarts(mut self, v: usize) -> Self {
        self.cfg.gp_warm_restarts = v;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, v: u64) -> Self {
        self.cfg.seed = v;
        self
    }

    /// The Fig 18 "improved baseline" bundle: protective reserve +
    /// constraint-aware ranking + sunk-cost accounting, as one switch.
    pub fn budget_guarded(self) -> Self {
        self.reserve_protection(true).constraint_aware(true).account_sunk(true)
    }

    /// Finish the configuration.
    pub fn build(self) -> BoConfig {
        self.cfg
    }
}

/// A named [`BoConfig`] plus optional space restrictions — the bridge
/// between the flag-style configuration and the policy-composed
/// [`SearchKernel`] that actually runs the search.
pub struct BoCore {
    name: &'static str,
    cfg: BoConfig,
    /// CherryPick's experience trimming: only search these types.
    restrict_types: Option<Vec<InstanceType>>,
    /// CherryPick's coarse scale-out grid.
    coarse_grid: Option<Vec<u32>>,
}

impl BoCore {
    /// Build a core with a display name.
    pub fn new(name: &'static str, cfg: BoConfig) -> Self {
        BoCore { name, cfg, restrict_types: None, coarse_grid: None }
    }

    /// Restrict candidates to the given types.
    pub fn with_types(mut self, types: Vec<InstanceType>) -> Self {
        self.restrict_types = Some(types);
        self
    }

    /// Restrict candidate node counts to a coarse grid.
    pub fn with_node_grid(mut self, grid: Vec<u32>) -> Self {
        self.coarse_grid = Some(grid);
        self
    }

    /// The configuration (for ablation reporting).
    pub fn config(&self) -> &BoConfig {
        &self.cfg
    }

    /// Translate the flag configuration into a runnable policy
    /// composition. Each call builds a fresh kernel — pruners carry
    /// per-search state.
    pub fn kernel(&self) -> SearchKernel {
        let cfg = &self.cfg;
        let init: Box<dyn InitPolicy> = match cfg.init {
            InitStrategy::TypeSweep => Box::new(TypeSweepInit { parallel: cfg.parallel_init }),
            InitStrategy::RandomPoints(k) => {
                Box::new(RandomInit { k, parallel: cfg.parallel_init })
            }
        };
        let mut b = SearchKernel::builder(self.name)
            .seed(cfg.seed)
            .account_sunk(cfg.account_sunk)
            .constraint_aware(cfg.constraint_aware)
            .refit(RefitPolicy {
                refit_every: cfg.gp_refit_every,
                warm_start: cfg.gp_warm_start,
                warm_burnin: cfg.gp_warm_burnin,
                warm_restarts: cfg.gp_warm_restarts,
            })
            .init(init)
            .gate(Box::new(TeiReserveGate {
                reserve_protection: cfg.reserve_protection,
                constraint_aware: cfg.constraint_aware,
                min_obs_before_stop: cfg.min_obs_before_stop,
            }))
            .acquisition(Box::new(CostPenalisedAcquisition {
                kind: cfg.acquisition,
                cost_penalty: cfg.cost_penalty,
            }))
            .stop(Box::new(ConvergenceStop {
                ei_rel_threshold: cfg.ei_rel_threshold,
                ci_stop: cfg.ci_stop,
                max_steps: cfg.max_steps,
                min_obs_before_stop: cfg.min_obs_before_stop,
            }));
        if self.restrict_types.is_some() || self.coarse_grid.is_some() {
            b = b.pruner(Box::new(SpaceTrim {
                types: self.restrict_types.clone(),
                grid: self.coarse_grid.clone(),
            }));
        }
        if cfg.concave_prior {
            b = b.pruner(Box::new(ConcaveScaleOutPrior::new()));
        }
        b.build()
    }
}

impl Searcher for BoCore {
    fn name(&self) -> &'static str {
        self.name
    }

    fn search(&self, env: &mut dyn ProfilingEnv, scenario: &Scenario) -> SearchOutcome {
        self.search_traced(env, scenario, &mut NullSink)
    }

    fn search_traced(
        &self,
        env: &mut dyn ProfilingEnv,
        scenario: &Scenario,
        sink: &mut dyn TraceSink,
    ) -> SearchOutcome {
        self.kernel().run(env, scenario, sink)
    }
}

/// HeterBO — the paper's searcher: type-sweep init, cost-penalised
/// constraint-aware acquisition, protective reserve, concave prior,
/// CI-aware stop.
///
/// ```
/// use mlcd::prelude::*;
/// use mlcd::deployment::{Deployment, SearchSpace};
/// use mlcd::env::SyntheticEnv;
///
/// // A synthetic response surface: concave in n, peaking at n = 20.
/// let space = SearchSpace::new(
///     &[InstanceType::C54xlarge],
///     50,
///     &TrainingJob::resnet_cifar10(),
///     &ThroughputModel::default(),
/// );
/// let f = |d: &Deployment| (500.0 - 0.9 * (d.n as f64 - 20.0).powi(2)).max(20.0);
/// let mut env = SyntheticEnv::new(space, 5e6, f);
///
/// let outcome = HeterBo::seeded(1).search(&mut env, &Scenario::FastestUnlimited);
/// let best = outcome.best.unwrap();
/// assert!(best.speed > 450.0); // near the 500-samples/s optimum
/// ```
pub struct HeterBo(BoCore);

impl HeterBo {
    /// HeterBO with a seed.
    pub fn seeded(seed: u64) -> Self {
        HeterBo(BoCore::new(
            "HeterBO",
            BoConfig::builder()
                .init(InitStrategy::TypeSweep)
                .ei_rel_threshold(0.10)
                .ci_stop(true)
                .cost_penalty(true)
                .constraint_aware(true)
                .reserve_protection(true)
                .concave_prior(true)
                // HeterBO's whole design is probe economy; the paper's
                // trajectories finish in 7–9 probes total (type sweep +
                // a handful of BO steps). The CI stop and the reserve end
                // most searches before this cap.
                .max_steps(8)
                .min_obs_before_stop(6)
                .account_sunk(true)
                .seed(seed)
                .build(),
        ))
    }

    /// HeterBO with the initial type sweep run as one concurrent batch of
    /// clusters — same money, wall-clock of the slowest probe only. An
    /// extension beyond the paper (its sweep is sequential).
    pub fn with_parallel_init(seed: u64) -> Self {
        let mut h = HeterBo::seeded(seed);
        h.0.cfg.parallel_init = true;
        h
    }

    /// Access the underlying core (for ablation tweaks).
    pub fn core(self) -> BoCore {
        self.0
    }
}

impl Default for HeterBo {
    fn default() -> Self {
        HeterBo::seeded(0)
    }
}

impl Searcher for HeterBo {
    fn name(&self) -> &'static str {
        "HeterBO"
    }
    fn search(&self, env: &mut dyn ProfilingEnv, scenario: &Scenario) -> SearchOutcome {
        self.0.search(env, scenario)
    }
    fn search_traced(
        &self,
        env: &mut dyn ProfilingEnv,
        scenario: &Scenario,
        sink: &mut dyn TraceSink,
    ) -> SearchOutcome {
        self.0.search_traced(env, scenario, sink)
    }
}

/// Conventional BO: random init, plain EI, oblivious to cost and
/// constraints.
pub struct ConvBo(BoCore);

impl ConvBo {
    /// ConvBO with a seed.
    pub fn seeded(seed: u64) -> Self {
        ConvBo(BoCore::new("ConvBO", Self::base(seed).build()))
    }

    fn base(seed: u64) -> BoConfigBuilder {
        BoConfig::builder()
            .init(InitStrategy::RandomPoints(2))
            // Conventional BO keeps polishing until EI is truly exhausted —
            // this is the "over-exploration" the paper measures: its
            // profiling phase rivals the training run it is optimising.
            .ei_rel_threshold(0.001)
            .max_steps(28)
            .min_obs_before_stop(12)
            .seed(seed)
    }

    #[cfg(test)]
    fn base_config(seed: u64) -> BoConfig {
        Self::base(seed).build()
    }

    /// The Fig 18 "BO_imprd" variant: ConvBO plus the protective budget
    /// reserve (so it stops profiling in time) — but still cost-oblivious
    /// in *where* it probes.
    pub fn budget_aware(seed: u64) -> BoCore {
        BoCore::new("BO_imprd", Self::base(seed).budget_guarded().build())
    }
}

impl Default for ConvBo {
    fn default() -> Self {
        ConvBo::seeded(0)
    }
}

impl Searcher for ConvBo {
    fn name(&self) -> &'static str {
        "ConvBO"
    }
    fn search(&self, env: &mut dyn ProfilingEnv, scenario: &Scenario) -> SearchOutcome {
        self.0.search(env, scenario)
    }
    fn search_traced(
        &self,
        env: &mut dyn ProfilingEnv,
        scenario: &Scenario,
        sink: &mut dyn TraceSink,
    ) -> SearchOutcome {
        self.0.search_traced(env, scenario, sink)
    }
}

/// CherryPick (NSDI'17): ConvBO plus experience-based space trimming, a
/// coarse scale-out grid, 3 random initial probes and the documented 10 %
/// EI stop rule.
pub struct CherryPick(BoCore);

impl CherryPick {
    /// The default coarse scale-out grid CherryPick samples.
    pub const DEFAULT_NODE_GRID: [u32; 11] = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48];

    /// CherryPick with a seed, searching all types on the coarse grid.
    pub fn seeded(seed: u64) -> Self {
        CherryPick(
            BoCore::new("CherryPick", Self::base(seed).build())
                .with_node_grid(Self::DEFAULT_NODE_GRID.to_vec()),
        )
    }

    /// CherryPick with its search space trimmed "based on experience" to
    /// the given types (the paper grants it this prior knowledge to favour
    /// it).
    pub fn with_experience(seed: u64, types: Vec<InstanceType>) -> Self {
        CherryPick(
            BoCore::new("CherryPick", Self::base(seed).build())
                .with_node_grid(Self::DEFAULT_NODE_GRID.to_vec())
                .with_types(types),
        )
    }

    /// CherryPick's base config is exactly the builder's baseline
    /// defaults.
    fn base(seed: u64) -> BoConfigBuilder {
        BoConfig::builder().seed(seed)
    }

    /// The Fig 18 "CP_imprd" variant: CherryPick plus the protective
    /// reserve, optionally with trimmed types.
    pub fn budget_aware(seed: u64, types: Option<Vec<InstanceType>>) -> BoCore {
        let core = BoCore::new("CP_imprd", Self::base(seed).budget_guarded().build())
            .with_node_grid(Self::DEFAULT_NODE_GRID.to_vec());
        match types {
            Some(t) => core.with_types(t),
            None => core,
        }
    }
}

impl Default for CherryPick {
    fn default() -> Self {
        CherryPick::seeded(0)
    }
}

impl Searcher for CherryPick {
    fn name(&self) -> &'static str {
        "CherryPick"
    }
    fn search(&self, env: &mut dyn ProfilingEnv, scenario: &Scenario) -> SearchOutcome {
        self.0.search(env, scenario)
    }
    fn search_traced(
        &self,
        env: &mut dyn ProfilingEnv,
        scenario: &Scenario,
        sink: &mut dyn TraceSink,
    ) -> SearchOutcome {
        self.0.search_traced(env, scenario, sink)
    }
}

#[cfg(test)]
#[path = "bo_tests.rs"]
mod tests;
