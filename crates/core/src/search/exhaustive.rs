//! Exhaustive profiling baseline (paper Fig 2).
//!
//! Profiles every candidate (optionally a strided subset — the paper's
//! Fig 2 profiles "180 deployment choices out of total 3,100") and
//! recommends the best observed. Guaranteed to find the optimum of the
//! sampled grid, at ruinous profiling cost — which is the figure's point.

use crate::env::ProfilingEnv;
use crate::observation::{SearchOutcome, SearchStep, StopReason};
use crate::scenario::Scenario;
use crate::search::trace::{NullSink, TraceEvent, TraceSink};
use crate::search::{pick_incumbent, Searcher};

/// Exhaustive (or strided) grid profiling.
pub struct ExhaustiveSearch {
    /// Probe every `stride`-th candidate (1 = truly exhaustive).
    pub stride: usize,
}

impl ExhaustiveSearch {
    /// Fully exhaustive.
    pub fn full() -> Self {
        ExhaustiveSearch { stride: 1 }
    }

    /// Strided subset, e.g. the paper's 180-of-3100 ≈ stride 17.
    pub fn strided(stride: usize) -> Self {
        assert!(stride >= 1, "ExhaustiveSearch: stride must be ≥ 1");
        ExhaustiveSearch { stride }
    }
}

impl Searcher for ExhaustiveSearch {
    fn name(&self) -> &'static str {
        "Exhaustive"
    }

    fn search(&self, env: &mut dyn ProfilingEnv, scenario: &Scenario) -> SearchOutcome {
        self.search_traced(env, scenario, &mut NullSink)
    }

    fn search_traced(
        &self,
        env: &mut dyn ProfilingEnv,
        scenario: &Scenario,
        sink: &mut dyn TraceSink,
    ) -> SearchOutcome {
        let pool = env.space().candidates().to_vec();
        let mut observations = Vec::new();
        let mut steps = Vec::new();
        for d in pool.iter().step_by(self.stride) {
            match env.profile(d) {
                Ok(obs) => {
                    observations.push(obs);
                    steps.push(SearchStep {
                        index: steps.len() + 1,
                        observation: obs,
                        cum_profile_time: env.elapsed(),
                        cum_profile_cost: env.spent(),
                    });
                    sink.record(TraceEvent::Probe {
                        observation: obs,
                        cum_profile_time: env.elapsed(),
                        cum_profile_cost: env.spent(),
                    });
                }
                Err(e) => {
                    sink.record(TraceEvent::ProbeFailed { deployment: *d, error: e.to_string() })
                }
            }
        }
        let best = pick_incumbent(
            &observations,
            scenario,
            env.total_samples(),
            env.elapsed(),
            env.spent(),
            true,
        )
        .copied();
        let stop_reason =
            if best.is_none() { StopReason::NothingFeasible } else { StopReason::SpaceExhausted };
        sink.record(TraceEvent::Stopped { reason: stop_reason });
        SearchOutcome {
            best,
            steps,
            profile_time: env.elapsed(),
            profile_cost: env.spent(),
            stop_reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{Deployment, SearchSpace};
    use crate::env::SyntheticEnv;
    use mlcd_cloudsim::InstanceType;
    use mlcd_perfmodel::{ThroughputModel, TrainingJob};

    fn make_env() -> SyntheticEnv<fn(&Deployment) -> f64> {
        let job = TrainingJob::resnet_cifar10();
        let space =
            SearchSpace::new(&[InstanceType::C5Xlarge], 20, &job, &ThroughputModel::default());
        fn f(d: &Deployment) -> f64 {
            // Peak at n = 13.
            200.0 - (d.n as f64 - 13.0).powi(2)
        }
        SyntheticEnv::new(space, 1e6, f)
    }

    #[test]
    fn full_sweep_finds_exact_optimum() {
        let mut env = make_env();
        let out = ExhaustiveSearch::full().search(&mut env, &Scenario::FastestUnlimited);
        assert_eq!(out.n_probes(), 20);
        assert_eq!(out.best.unwrap().deployment.n, 13);
        assert_eq!(out.stop_reason, StopReason::SpaceExhausted);
    }

    #[test]
    fn stride_reduces_probes_but_may_miss_peak() {
        let mut env = make_env();
        let out = ExhaustiveSearch::strided(5).search(&mut env, &Scenario::FastestUnlimited);
        assert_eq!(out.n_probes(), 4); // n = 1, 6, 11, 16
        let best_n = out.best.unwrap().deployment.n;
        assert!(best_n == 11 || best_n == 16);
    }

    #[test]
    fn exhaustive_is_most_expensive() {
        let mut env_full = make_env();
        ExhaustiveSearch::full().search(&mut env_full, &Scenario::FastestUnlimited);
        let mut env_strided = make_env();
        ExhaustiveSearch::strided(5).search(&mut env_strided, &Scenario::FastestUnlimited);
        assert!(env_full.spent().dollars() > env_strided.spent().dollars() * 3.0);
    }
}
