//! The policy-driven search kernel: one BO loop, five swappable stages.
//!
//! [`SearchKernel`] owns a composition of
//! [`InitPolicy`] + [`CandidatePruner`]s + [`FeasibilityGate`] +
//! [`AcquisitionPolicy`] + [`StopPolicy`] and runs the loop that used to
//! live inside `BoCore::run`. The searchers in [`crate::search::bo`] are
//! declarative compositions built by [`crate::search::bo::BoCore::kernel`];
//! custom variants compose their own via [`SearchKernel::builder`] (see
//! `examples/custom_searcher.rs`).
//!
//! Every decision the kernel takes is narrated into a [`TraceSink`]; the
//! trace is pure observation and never perturbs the search (pinned by the
//! golden snapshot tests).

use crate::deployment::Deployment;
use crate::env::{ProfileError, ProfilingEnv};
use crate::observation::{Observation, SearchOutcome, SearchStep, StopReason};
use crate::scenario::{Objective, Scenario};
use crate::search::pick_incumbent;
use crate::search::policies::{
    incumbent_feasible, AcquisitionPolicy, CandidatePruner, ConvergenceStop,
    CostPenalisedAcquisition, FeasibilityGate, FrontierContext, InitPolicy, RandomInit,
    StopContext, StopPolicy, TeiReserveGate,
};
use crate::search::surrogate::{RefitPolicy, Surrogate};
use crate::search::trace::{PruneReason, TraceEvent, TraceSink};
use mlcd_cloudsim::{Money, SimDuration};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use super::policies::feasibility::TEI_SIGMAS;

/// The cold-start exploration fallback may burn at most this fraction of
/// the deadline/budget before conceding that the constraint is lost.
pub const HATCH_FRACTION: f64 = 0.5;

/// Probe one deployment and record it: observation list, step log and
/// trace. On failure only a [`TraceEvent::ProbeFailed`] is recorded — the
/// caller decides whether the deployment is retired from the pool.
#[allow(clippy::too_many_arguments)]
fn probe_once(
    d: &Deployment,
    env: &mut dyn ProfilingEnv,
    observations: &mut Vec<Observation>,
    steps: &mut Vec<SearchStep>,
    probed: &mut Vec<Deployment>,
    sink: &mut dyn TraceSink,
    init: bool,
) -> Result<(), ProfileError> {
    match env.profile(d) {
        Ok(obs) => {
            observations.push(obs);
            probed.push(*d);
            steps.push(SearchStep {
                index: steps.len() + 1,
                observation: obs,
                cum_profile_time: env.elapsed(),
                cum_profile_cost: env.spent(),
            });
            let (cum_profile_time, cum_profile_cost) = (env.elapsed(), env.spent());
            sink.record(if init {
                TraceEvent::InitProbe { observation: obs, cum_profile_time, cum_profile_cost }
            } else {
                TraceEvent::Probe { observation: obs, cum_profile_time, cum_profile_cost }
            });
            Ok(())
        }
        Err(e) => {
            sink.record(TraceEvent::ProbeFailed { deployment: *d, error: e.to_string() });
            Err(e)
        }
    }
}

/// A complete, runnable composition of the five stage policies.
///
/// Consumed by [`SearchKernel::run`] — pruners carry mutable state (the
/// concave prior's caps), so a kernel runs exactly one search; build a
/// fresh one per search.
pub struct SearchKernel {
    name: &'static str,
    seed: u64,
    account_sunk: bool,
    constraint_aware: bool,
    refit: RefitPolicy,
    init: Box<dyn InitPolicy>,
    pruners: Vec<Box<dyn CandidatePruner>>,
    gate: Box<dyn FeasibilityGate>,
    acquisition: Box<dyn AcquisitionPolicy>,
    stop: Box<dyn StopPolicy>,
}

impl SearchKernel {
    /// Start composing a kernel. The defaults are a plain
    /// constraint-oblivious BO (random 3-point init, no pruning, EI, 10 %
    /// stop) — override stages as needed.
    pub fn builder(name: &'static str) -> SearchKernelBuilder {
        SearchKernelBuilder {
            kernel: SearchKernel {
                name,
                seed: 0,
                account_sunk: false,
                constraint_aware: false,
                refit: RefitPolicy::default(),
                init: Box::new(RandomInit { k: 3, parallel: false }),
                pruners: Vec::new(),
                gate: Box::new(TeiReserveGate {
                    reserve_protection: false,
                    constraint_aware: false,
                    min_obs_before_stop: 10,
                }),
                acquisition: Box::new(CostPenalisedAcquisition {
                    kind: crate::acquisition::AcquisitionKind::ExpectedImprovement,
                    cost_penalty: false,
                }),
                stop: Box::new(ConvergenceStop {
                    ei_rel_threshold: 0.10,
                    ci_stop: false,
                    max_steps: 27,
                    min_obs_before_stop: 10,
                }),
            },
        }
    }

    /// The kernel's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Run the search, narrating every decision into `sink`.
    pub fn run(
        mut self,
        env: &mut dyn ProfilingEnv,
        scenario: &Scenario,
        sink: &mut dyn TraceSink,
    ) -> SearchOutcome {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut pool: Vec<Deployment> = env.space().candidates().to_vec();
        for p in &self.pruners {
            p.trim_pool(&mut pool);
        }
        if pool.is_empty() {
            sink.record(TraceEvent::Stopped { reason: StopReason::NothingFeasible });
            return SearchOutcome::empty(StopReason::NothingFeasible);
        }
        let total_samples = env.total_samples();

        let mut observations: Vec<Observation> = Vec::new();
        let mut steps: Vec<SearchStep> = Vec::new();
        let mut probed: Vec<Deployment> = Vec::new();

        // ----- Initialisation -----
        let init_points = self.init.points(&pool, &mut rng);
        // Ranking totals: HeterBO counts profiling spend against the
        // constraint; the oblivious baselines rank as if profiling were
        // free (and then pay for it in the executed total).
        let account_sunk = self.account_sunk;
        let rank_totals = move |env: &dyn ProfilingEnv| {
            if account_sunk {
                (env.elapsed(), env.spent())
            } else {
                (SimDuration::ZERO, Money::ZERO)
            }
        };

        if self.init.parallel() {
            let affordable = self.gate.filter_init_batch(env, scenario, &init_points);
            for (d, result) in affordable.iter().zip(env.profile_batch(&affordable)) {
                match result {
                    Ok(obs) => {
                        observations.push(obs);
                        probed.push(*d);
                        steps.push(SearchStep {
                            index: steps.len() + 1,
                            observation: obs,
                            cum_profile_time: env.elapsed(),
                            cum_profile_cost: env.spent(),
                        });
                        sink.record(TraceEvent::InitProbe {
                            observation: obs,
                            cum_profile_time: env.elapsed(),
                            cum_profile_cost: env.spent(),
                        });
                    }
                    Err(e) => sink
                        .record(TraceEvent::ProbeFailed { deployment: *d, error: e.to_string() }),
                }
            }
        } else {
            for d in &init_points {
                let (re, rs) = rank_totals(env);
                let guard_ok = match pick_incumbent(
                    &observations,
                    scenario,
                    total_samples,
                    re,
                    rs,
                    self.constraint_aware,
                ) {
                    Some(inc) => {
                        let inc = *inc;
                        self.gate.probe_respects_reserve(env, scenario, d, &inc)
                    }
                    None => self.gate.probe_fits_raw(env, scenario, d),
                };
                if !guard_ok {
                    sink.record(TraceEvent::ReserveBlocked { deployment: *d });
                    continue;
                }
                let _ = probe_once(d, env, &mut observations, &mut steps, &mut probed, sink, true);
            }
        }
        if observations.is_empty() {
            sink.record(TraceEvent::Stopped { reason: StopReason::NothingFeasible });
            return SearchOutcome::empty(StopReason::NothingFeasible);
        }
        for p in self.pruners.iter_mut() {
            p.observe(&observations, sink);
        }

        // ----- BO loop -----
        let init_count = steps.len();
        let mut surrogate_state: Option<Surrogate> = None;
        // One scoring workspace for the whole search, sized up front so
        // the per-step batched posterior below never reallocates: the
        // model can grow to at most init_count + max_steps observations
        // and a scoring batch is at most the whole pool.
        let mut score_ws = mlcd_gp::ScoreWorkspace::new();
        score_ws.reserve(
            crate::deployment::SearchSpace::FEATURE_DIM,
            init_count + self.stop.max_steps() + 1,
            pool.len(),
        );
        let mut best_traced_utility = f64::NEG_INFINITY;
        let stop_reason = loop {
            if steps.len() >= init_count + self.stop.max_steps() {
                break StopReason::MaxSteps;
            }
            let (re, rs) = rank_totals(env);
            let incumbent = match pick_incumbent(
                &observations,
                scenario,
                total_samples,
                re,
                rs,
                self.constraint_aware,
            ) {
                Some(i) => *i,
                None => break StopReason::NothingFeasible,
            };
            let inc_utility =
                scenario.utility(&incumbent.deployment, total_samples, incumbent.speed);
            if inc_utility > best_traced_utility {
                best_traced_utility = inc_utility;
                sink.record(TraceEvent::IncumbentChanged {
                    observation: incumbent,
                    utility: inc_utility,
                });
            }
            let threshold = self.stop.ei_threshold(inc_utility);

            let mut unprobed: Vec<Deployment> = Vec::new();
            for d in pool.iter().filter(|d| !probed.contains(d)) {
                if self.pruners.iter().all(|p| p.admits(d)) {
                    unprobed.push(*d);
                } else {
                    sink.record(TraceEvent::CandidatePruned {
                        deployment: *d,
                        reason: PruneReason::ConcavePrior,
                    });
                }
            }
            if unprobed.is_empty() {
                break StopReason::SpaceExhausted;
            }

            surrogate_state = Surrogate::update(
                surrogate_state.take(),
                env.space(),
                &observations,
                self.seed,
                &self.refit,
            );
            let Some(ref surrogate) = surrogate_state else {
                // Not enough data for a model yet: explore a random
                // reserve-respecting candidate.
                let mut shuffled = unprobed.clone();
                shuffled.shuffle(&mut rng);
                let pick = shuffled
                    .iter()
                    .find(|d| self.gate.probe_respects_reserve(env, scenario, d, &incumbent));
                match pick {
                    Some(d) => {
                        let d = *d;
                        let _ = probe_once(
                            &d,
                            env,
                            &mut observations,
                            &mut steps,
                            &mut probed,
                            sink,
                            false,
                        );
                        for p in self.pruners.iter_mut() {
                            p.observe(&observations, sink);
                        }
                        continue;
                    }
                    None => break StopReason::ReserveProtection,
                }
            };

            // One batched GP posterior over the whole pool per step —
            // shared by the acquisition scoring, the frontier filter and
            // the CI-stop scan below, so each candidate costs exactly one
            // prediction per step.
            surrogate.predict_batch_into(env.space(), &unprobed, &mut score_ws);
            let preds = score_ws.predictions();
            let pred_of =
                |d: &Deployment| unprobed.iter().position(|u| u == d).and_then(|i| preds.get(i));
            let incumbent_ok = incumbent_feasible(env, scenario, &incumbent);
            // Budget-rescue mode: see `TeiReserveGate::tei_feasible` — an
            // infeasible budget incumbent turns the TEI filter on
            // regardless of how young the surrogate is.
            let budget_rescue = !incumbent_ok && matches!(scenario, Scenario::FastestWithBudget(_));

            // Score every candidate.
            let mut any_reserve_blocked = false;
            let mut best: Option<(
                Deployment,
                f64, /*score*/
                f64, /*poi*/
                f64, /*ei*/
            )> = None;
            // Candidates that pass the reserve but fail TEI — kept around
            // for the cold-start exploration fallback below.
            let mut tei_blocked: Vec<(Deployment, f64 /*optimistic speed*/)> = Vec::new();
            let rates = crate::search::policies::pruning::per_type_speed_rate(&observations);
            for (d, pred) in unprobed.iter().zip(preds) {
                if !self.gate.probe_respects_reserve(env, scenario, d, &incumbent) {
                    any_reserve_blocked = true;
                    sink.record(TraceEvent::ReserveBlocked { deployment: *d });
                    continue;
                }
                if !self.gate.tei_feasible(
                    env,
                    scenario,
                    d,
                    pred,
                    observations.len(),
                    &rates,
                    budget_rescue,
                ) {
                    tei_blocked.push((*d, pred.mean + TEI_SIGMAS * pred.stddev()));
                    sink.record(TraceEvent::CandidatePruned {
                        deployment: *d,
                        reason: PruneReason::TeiInfeasible,
                    });
                    continue;
                }
                let ei = self.acquisition.utility_ei(scenario, total_samples, d, pred, &incumbent);
                let poi = self.acquisition.utility_poi(
                    scenario,
                    total_samples,
                    d,
                    pred,
                    &incumbent,
                    threshold,
                );
                let score = ei / self.acquisition.penalty(env, scenario, d);
                sink.record(TraceEvent::CandidateScored { deployment: *d, ei, poi, score });
                if best.as_ref().is_none_or(|b| score > b.1) {
                    best = Some((*d, score, poi, ei));
                }
            }

            // Frontier exploration from the concave prior's rising branch:
            // un-bent types whose next scale-out step could still pay.
            // When a deadline incumbent is infeasible, the frontier chases
            // raw speed (feasibility first); its bonus then lives in speed
            // units and must pre-empt the cost-unit EI comparison rather
            // than join it.
            let chase_speed = !incumbent_ok && scenario.objective() == Objective::MinCost;
            let fctx = FrontierContext {
                unprobed: &unprobed,
                observations: &observations,
                rates: &rates,
                scenario,
                incumbent: &incumbent,
                chase_speed,
            };
            let frontier: Vec<(Deployment, f64)> =
                self.pruners.iter().flat_map(|p| p.frontier(&fctx)).collect();
            let mut max_frontier_bonus = 0.0_f64;
            let mut forced_frontier: Option<(Deployment, f64)> = None;
            for (d, bonus) in &frontier {
                if !self.gate.probe_respects_reserve(env, scenario, d, &incumbent) {
                    any_reserve_blocked = true;
                    sink.record(TraceEvent::ReserveBlocked { deployment: *d });
                    continue;
                }
                // While rescuing a busted budget, a frontier step whose own
                // completion cannot fit is as useless as any other — apply
                // the same TEI filter the scored candidates went through.
                if budget_rescue {
                    if let Some(pred) = pred_of(d) {
                        if !self.gate.tei_feasible(
                            env,
                            scenario,
                            d,
                            pred,
                            observations.len(),
                            &rates,
                            budget_rescue,
                        ) {
                            tei_blocked.push((*d, pred.mean + TEI_SIGMAS * pred.stddev()));
                            sink.record(TraceEvent::CandidatePruned {
                                deployment: *d,
                                reason: PruneReason::TeiInfeasible,
                            });
                            continue;
                        }
                    }
                }
                max_frontier_bonus = max_frontier_bonus.max(*bonus);
                let score = bonus / self.acquisition.penalty(env, scenario, d);
                sink.record(TraceEvent::CandidateScored {
                    deployment: *d,
                    ei: *bonus,
                    poi: 1.0,
                    score,
                });
                if chase_speed {
                    if forced_frontier.as_ref().is_none_or(|f| score > f.1) {
                        forced_frontier = Some((*d, score));
                    }
                } else if best.as_ref().is_none_or(|b| score > b.1) {
                    best = Some((*d, score, 1.0, *bonus));
                }
            }
            if let Some((d_force, _)) = forced_frontier {
                let _ = probe_once(
                    &d_force,
                    env,
                    &mut observations,
                    &mut steps,
                    &mut probed,
                    sink,
                    false,
                );
                for p in self.pruners.iter_mut() {
                    p.observe(&observations, sink);
                }
                continue;
            }

            let Some((d_next, _, _, best_ei)) = best else {
                // Cold-start escape hatch: TEI judged every candidate
                // hopeless, but the judgment rests on a near-empty model
                // and we hold no feasible incumbent to retreat to. The
                // constraint may well still be reachable at scales the GP
                // knows nothing about — explore the most optimistic
                // blocked candidate (raw guard already vetted) instead of
                // giving up with an infeasible answer.
                let hatch_open = match scenario {
                    Scenario::FastestUnlimited => true,
                    Scenario::CheapestWithDeadline(tmax) => {
                        env.elapsed().as_secs() < HATCH_FRACTION * tmax.as_secs()
                    }
                    Scenario::FastestWithBudget(cmax) => {
                        env.spent().dollars() < HATCH_FRACTION * cmax.dollars()
                    }
                };
                if hatch_open && !incumbent_ok && !tei_blocked.is_empty() {
                    let (d_explore, _) = tei_blocked
                        .iter()
                        .max_by(|a, b| a.1.total_cmp(&b.1))
                        .copied()
                        // lint: allow(hot-panic) — guarded by !tei_blocked.is_empty() above
                        .expect("non-empty");
                    let _ = probe_once(
                        &d_explore,
                        env,
                        &mut observations,
                        &mut steps,
                        &mut probed,
                        sink,
                        false,
                    );
                    for p in self.pruners.iter_mut() {
                        p.observe(&observations, sink);
                    }
                    continue;
                }
                break if any_reserve_blocked {
                    StopReason::ReserveProtection
                } else {
                    StopReason::SpaceExhausted
                };
            };

            // Stop tests: the policy sees this step's statistics; the POI
            // scan over the batched posterior stays lazy — only a CI-aware
            // policy pays for it.
            let max_poi = || {
                unprobed
                    .iter()
                    .zip(preds)
                    .map(|(d, pred)| {
                        self.acquisition.utility_poi(
                            scenario,
                            total_samples,
                            d,
                            pred,
                            &incumbent,
                            threshold,
                        )
                    })
                    .fold(0.0_f64, f64::max)
            };
            let ctx = StopContext {
                n_obs: observations.len(),
                threshold,
                best_ei,
                max_frontier_bonus,
                max_poi: &max_poi,
            };
            if let Some(reason) = self.stop.should_stop(&ctx) {
                break reason;
            }

            if probe_once(&d_next, env, &mut observations, &mut steps, &mut probed, sink, false)
                .is_err()
            {
                // Cloud refused (quota etc.) — drop it from the pool by
                // marking it probed, and continue.
                probed.push(d_next);
                continue;
            }
            for p in self.pruners.iter_mut() {
                p.observe(&observations, sink);
            }
        };

        let (re, rs) = rank_totals(env);
        let best = pick_incumbent(&observations, scenario, total_samples, re, rs, true).copied();
        sink.record(TraceEvent::Stopped { reason: stop_reason });
        SearchOutcome {
            best,
            steps,
            profile_time: env.elapsed(),
            profile_cost: env.spent(),
            stop_reason,
        }
    }
}

/// Composes a [`SearchKernel`] stage by stage.
pub struct SearchKernelBuilder {
    kernel: SearchKernel,
}

impl SearchKernelBuilder {
    /// RNG seed (init points, tie-breaks, GP restarts).
    pub fn seed(mut self, seed: u64) -> Self {
        self.kernel.seed = seed;
        self
    }

    /// Whether profiling time/money already spent counts against the
    /// deadline/budget when ranking deployments.
    pub fn account_sunk(mut self, on: bool) -> Self {
        self.kernel.account_sunk = on;
        self
    }

    /// Rank incumbents with the scenario's feasibility filter.
    pub fn constraint_aware(mut self, on: bool) -> Self {
        self.kernel.constraint_aware = on;
        self
    }

    /// How often GP hyperparameters are refitted.
    pub fn refit(mut self, refit: RefitPolicy) -> Self {
        self.kernel.refit = refit;
        self
    }

    /// The initialisation stage.
    pub fn init(mut self, init: Box<dyn InitPolicy>) -> Self {
        self.kernel.init = init;
        self
    }

    /// Add a pruning stage (applied in insertion order).
    pub fn pruner(mut self, pruner: Box<dyn CandidatePruner>) -> Self {
        self.kernel.pruners.push(pruner);
        self
    }

    /// The feasibility-gating stage.
    pub fn gate(mut self, gate: Box<dyn FeasibilityGate>) -> Self {
        self.kernel.gate = gate;
        self
    }

    /// The acquisition-scoring stage.
    pub fn acquisition(mut self, acquisition: Box<dyn AcquisitionPolicy>) -> Self {
        self.kernel.acquisition = acquisition;
        self
    }

    /// The stopping stage.
    pub fn stop(mut self, stop: Box<dyn StopPolicy>) -> Self {
        self.kernel.stop = stop;
        self
    }

    /// Finish the composition.
    pub fn build(self) -> SearchKernel {
        self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::SearchSpace;
    use crate::env::SyntheticEnv;
    use crate::search::trace::{NullSink, SearchTrace};
    use mlcd_cloudsim::InstanceType;
    use mlcd_perfmodel::{ThroughputModel, TrainingJob};

    fn make_env() -> SyntheticEnv<fn(&Deployment) -> f64> {
        let job = TrainingJob::resnet_cifar10();
        let space = SearchSpace::new(
            &[InstanceType::C5Xlarge, InstanceType::C54xlarge],
            50,
            &job,
            &ThroughputModel::default(),
        );
        fn f(d: &Deployment) -> f64 {
            (400.0 - 0.8 * (d.n as f64 - 18.0).powi(2)).max(15.0)
        }
        SyntheticEnv::new(space, 5e6, f as fn(&Deployment) -> f64)
    }

    fn kernel() -> SearchKernel {
        SearchKernel::builder("test-kernel").seed(5).build()
    }

    #[test]
    fn tracing_does_not_perturb_the_search() {
        let scenario = Scenario::FastestUnlimited;
        let mut env_a = make_env();
        let silent = kernel().run(&mut env_a, &scenario, &mut NullSink);
        let mut env_b = make_env();
        let mut trace = SearchTrace::default();
        let traced = kernel().run(&mut env_b, &scenario, &mut trace);
        assert_eq!(silent.steps.len(), traced.steps.len());
        for (a, b) in silent.steps.iter().zip(&traced.steps) {
            assert_eq!(a.observation.deployment, b.observation.deployment);
            assert_eq!(a.observation.speed.to_bits(), b.observation.speed.to_bits());
        }
        assert_eq!(silent.profile_cost, traced.profile_cost);
        assert_eq!(silent.stop_reason, traced.stop_reason);
        // And the trace actually narrates the run.
        assert_eq!(traced.steps.len(), trace.probes().count());
        assert_eq!(trace.stop_reason(), Some(traced.stop_reason));
    }

    #[test]
    fn trace_cumulative_spend_matches_outcome_spend() {
        let mut env = make_env();
        let mut trace = SearchTrace::default();
        let out = kernel().run(&mut env, &Scenario::FastestUnlimited, &mut trace);
        assert_eq!(trace.final_probe_spend(), Some(out.profile_cost));
    }
}
