//! Initialisation policies: which probes seed the surrogate.

use crate::deployment::Deployment;
use mlcd_cloudsim::InstanceType;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

/// Chooses the initial probes from the candidate pool.
pub trait InitPolicy {
    /// The ordered initial probes. `rng` is the kernel's seeded stream;
    /// policies that do not draw from it must not touch it (draw order is
    /// part of the pinned behaviour).
    fn points(&self, pool: &[Deployment], rng: &mut SmallRng) -> Vec<Deployment>;

    /// Whether the init probes run as one concurrent batch (same money,
    /// wall-clock of the slowest member only).
    fn parallel(&self) -> bool {
        false
    }
}

/// HeterBO's init (§III-C "Initial points"): one minimal-scale probe of
/// each instance type, cheapest hourly rate first — bounded cost, full
/// scale-up coverage.
#[derive(Debug, Clone, Copy)]
pub struct TypeSweepInit {
    /// Run the sweep as one concurrent batch.
    pub parallel: bool,
}

impl InitPolicy for TypeSweepInit {
    fn points(&self, pool: &[Deployment], _rng: &mut SmallRng) -> Vec<Deployment> {
        let mut types: Vec<InstanceType> = {
            let mut ts: Vec<InstanceType> = pool.iter().map(|d| d.itype).collect();
            ts.sort();
            ts.dedup();
            ts
        };
        types.sort_by(|a, b| a.hourly_usd().total_cmp(&b.hourly_usd()));
        types
            .into_iter()
            .filter_map(|t| pool.iter().filter(|d| d.itype == t).min_by_key(|d| d.n).copied())
            .collect()
    }

    fn parallel(&self) -> bool {
        self.parallel
    }
}

/// Conventional BO: `k` uniformly random candidates — which can land on a
/// 50-node GPU cluster and burn a large slice of the budget before the
/// model knows anything.
#[derive(Debug, Clone, Copy)]
pub struct RandomInit {
    /// How many random points to draw.
    pub k: usize,
    /// Run the draws as one concurrent batch.
    pub parallel: bool,
}

impl InitPolicy for RandomInit {
    fn points(&self, pool: &[Deployment], rng: &mut SmallRng) -> Vec<Deployment> {
        let mut shuffled = pool.to_vec();
        shuffled.shuffle(rng);
        shuffled.into_iter().take(self.k).collect()
    }

    fn parallel(&self) -> bool {
        self.parallel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn pool() -> Vec<Deployment> {
        let mut out = Vec::new();
        for t in [InstanceType::P2Xlarge, InstanceType::C5Xlarge, InstanceType::C54xlarge] {
            for n in 1..=4 {
                out.push(Deployment::new(t, n));
            }
        }
        out
    }

    #[test]
    fn type_sweep_probes_each_type_once_at_minimal_scale_cheapest_first() {
        let mut rng = SmallRng::seed_from_u64(0);
        let pts = TypeSweepInit { parallel: false }.points(&pool(), &mut rng);
        assert_eq!(pts.len(), 3);
        assert!(pts.iter().all(|d| d.n == 1));
        // Cheapest hourly rate first.
        for w in pts.windows(2) {
            assert!(w[0].itype.hourly_usd() <= w[1].itype.hourly_usd());
        }
    }

    #[test]
    fn random_init_draws_k_distinct_points_deterministically() {
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            RandomInit { k: 3, parallel: false }.points(&pool(), &mut rng)
        };
        let a = draw(7);
        assert_eq!(a.len(), 3);
        assert_eq!(a, draw(7), "same seed, same draw");
        let mut dedup = a.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "a shuffle never repeats a point");
    }
}
