//! Acquisition scoring: utility EI/POI in the scenario's objective units
//! and the heterogeneous probing-cost penalty.

use crate::acquisition::{cost_belief, prob_improvement, AcquisitionKind};
use crate::deployment::Deployment;
use crate::env::ProfilingEnv;
use crate::observation::Observation;
use crate::scenario::{Objective, Scenario};

/// Scores candidates for the BO loop's next-probe choice.
pub trait AcquisitionPolicy {
    /// EI of a candidate in the scenario's utility units, given the
    /// incumbent's utility.
    fn utility_ei(
        &self,
        scenario: &Scenario,
        total_samples: f64,
        d: &Deployment,
        pred: &mlcd_gp::Prediction,
        incumbent: &Observation,
    ) -> f64;

    /// Probability this candidate improves utility by more than
    /// `threshold` — HeterBO's CI-aware stop statistic.
    fn utility_poi(
        &self,
        scenario: &Scenario,
        total_samples: f64,
        d: &Deployment,
        pred: &mlcd_gp::Prediction,
        incumbent: &Observation,
        threshold: f64,
    ) -> f64;

    /// The probing-cost penalty the EI is divided by (1.0 = no penalty).
    fn penalty(&self, env: &dyn ProfilingEnv, scenario: &Scenario, d: &Deployment) -> f64;
}

/// The paper's acquisition family: EI/POI/UCB over the scenario utility,
/// optionally divided by each candidate's own probing cost (eqs. 7–8).
#[derive(Debug, Clone, Copy)]
pub struct CostPenalisedAcquisition {
    /// Which acquisition function ranks candidates.
    pub kind: AcquisitionKind,
    /// Divide each candidate's EI by its own probing cost.
    pub cost_penalty: bool,
}

impl AcquisitionPolicy for CostPenalisedAcquisition {
    fn utility_ei(
        &self,
        scenario: &Scenario,
        total_samples: f64,
        d: &Deployment,
        pred: &mlcd_gp::Prediction,
        incumbent: &Observation,
    ) -> f64 {
        let kind = self.kind;
        match scenario.objective() {
            Objective::MaxSpeed => kind.score(pred, incumbent.speed),
            Objective::MinCost => {
                let inc_cost =
                    Scenario::training_cost(&incumbent.deployment, total_samples, incumbent.speed)
                        .dollars();
                match cost_belief(pred, total_samples, d.hourly_cost().dollars()) {
                    Some(cb) => {
                        // Minimisation: negate both sides.
                        let neg = mlcd_gp::Prediction {
                            mean: -cb.mean,
                            var: cb.var,
                            var_with_noise: cb.var_with_noise,
                        };
                        kind.score(&neg, -inc_cost)
                    }
                    // Speed belief too uncertain for a cost belief: score
                    // by the speed acquisition scaled into cost units via
                    // the incumbent.
                    None => {
                        kind.score(pred, incumbent.speed) * inc_cost / incumbent.speed.max(1e-9)
                    }
                }
            }
        }
    }

    fn utility_poi(
        &self,
        scenario: &Scenario,
        total_samples: f64,
        d: &Deployment,
        pred: &mlcd_gp::Prediction,
        incumbent: &Observation,
        threshold: f64,
    ) -> f64 {
        match scenario.objective() {
            Objective::MaxSpeed => prob_improvement(pred, incumbent.speed, threshold),
            Objective::MinCost => {
                let inc_cost =
                    Scenario::training_cost(&incumbent.deployment, total_samples, incumbent.speed)
                        .dollars();
                match cost_belief(pred, total_samples, d.hourly_cost().dollars()) {
                    Some(cb) => {
                        let neg = mlcd_gp::Prediction {
                            mean: -cb.mean,
                            var: cb.var,
                            var_with_noise: cb.var_with_noise,
                        };
                        prob_improvement(&neg, -inc_cost, threshold)
                    }
                    None => 1.0, // too uncertain to rule out: keep searching
                }
            }
        }
    }

    /// The probing-cost penalty (paper eqs. 7–8): time for Scenario-1
    /// (the objective is wall-clock), money when a budget or a cost
    /// objective is in play.
    fn penalty(&self, env: &dyn ProfilingEnv, scenario: &Scenario, d: &Deployment) -> f64 {
        if !self.cost_penalty {
            return 1.0;
        }
        let (qt, qc) = env.quote(d);
        match scenario {
            Scenario::FastestUnlimited => qt.as_secs(),
            Scenario::CheapestWithDeadline(_) | Scenario::FastestWithBudget(_) => qc.dollars(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::SearchSpace;
    use crate::env::SyntheticEnv;
    use mlcd_cloudsim::{InstanceType, Money, SimDuration};
    use mlcd_perfmodel::{ThroughputModel, TrainingJob};

    fn pred(mean: f64, var: f64) -> mlcd_gp::Prediction {
        mlcd_gp::Prediction { mean, var, var_with_noise: var }
    }

    fn incumbent(speed: f64) -> Observation {
        Observation {
            deployment: Deployment::new(InstanceType::C5Xlarge, 1),
            speed,
            profile_time: SimDuration::from_mins(10.0),
            profile_cost: Money::from_dollars(0.1),
        }
    }

    #[test]
    fn speed_objective_ei_grows_with_mean() {
        let acq = CostPenalisedAcquisition {
            kind: AcquisitionKind::ExpectedImprovement,
            cost_penalty: false,
        };
        let d = Deployment::new(InstanceType::C5Xlarge, 2);
        let inc = incumbent(100.0);
        let lo = acq.utility_ei(&Scenario::FastestUnlimited, 1e6, &d, &pred(90.0, 25.0), &inc);
        let hi = acq.utility_ei(&Scenario::FastestUnlimited, 1e6, &d, &pred(150.0, 25.0), &inc);
        assert!(hi > lo, "EI must grow with the predicted mean ({lo} vs {hi})");
    }

    #[test]
    fn penalty_is_unity_when_disabled_and_positive_when_enabled() {
        let job = TrainingJob::resnet_cifar10();
        let space =
            SearchSpace::new(&[InstanceType::C5Xlarge], 50, &job, &ThroughputModel::default());
        fn f(d: &Deployment) -> f64 {
            100.0 * d.n as f64
        }
        let env = SyntheticEnv::new(space, 5e6, f as fn(&Deployment) -> f64);
        let d = Deployment::new(InstanceType::C5Xlarge, 4);
        let off = CostPenalisedAcquisition {
            kind: AcquisitionKind::ExpectedImprovement,
            cost_penalty: false,
        };
        assert_eq!(off.penalty(&env, &Scenario::FastestUnlimited, &d), 1.0);
        let on = CostPenalisedAcquisition {
            kind: AcquisitionKind::ExpectedImprovement,
            cost_penalty: true,
        };
        // Scenario 1 penalises by quoted time, budget scenarios by money.
        assert!(on.penalty(&env, &Scenario::FastestUnlimited, &d) > 1.0);
        let budget = Scenario::FastestWithBudget(Money::from_dollars(100.0));
        assert!(on.penalty(&env, &budget, &d) > 0.0);
    }
}
