//! The five stage policies the [`crate::search::kernel::SearchKernel`]
//! composes into a searcher.
//!
//! Each stage of the BO loop is one swappable trait; HeterBO, ConvBO and
//! CherryPick differ only in which implementations they plug in (see the
//! table in [`crate::search`] and the "Search kernel & policies" section
//! of DESIGN.md):
//!
//! | stage                  | trait                                  | implementations                                     |
//! |------------------------|----------------------------------------|-----------------------------------------------------|
//! | initialisation         | [`init::InitPolicy`]                   | [`init::TypeSweepInit`], [`init::RandomInit`]       |
//! | candidate pruning      | [`pruning::CandidatePruner`]           | [`pruning::ConcaveScaleOutPrior`], [`pruning::SpaceTrim`], [`pruning::NoPruning`] |
//! | feasibility gating     | [`feasibility::FeasibilityGate`]       | [`feasibility::TeiReserveGate`]                     |
//! | acquisition scoring    | [`acquisition::AcquisitionPolicy`]     | [`acquisition::CostPenalisedAcquisition`]           |
//! | stopping               | [`stop::StopPolicy`]                   | [`stop::ConvergenceStop`]                           |

pub mod acquisition;
pub mod feasibility;
pub mod init;
pub mod pruning;
pub mod stop;

pub use acquisition::{AcquisitionPolicy, CostPenalisedAcquisition};
pub use feasibility::{incumbent_feasible, FeasibilityGate, TeiReserveGate};
pub use init::{InitPolicy, RandomInit, TypeSweepInit};
pub use pruning::{CandidatePruner, ConcaveScaleOutPrior, FrontierContext, NoPruning, SpaceTrim};
pub use stop::{ConvergenceStop, StopContext, StopPolicy};
