//! Feasibility gating: the TEI filter, the protective reserve and the
//! raw-constraint probe guard.

use crate::deployment::Deployment;
use crate::env::ProfilingEnv;
use crate::observation::Observation;
use crate::scenario::{projection_margin, Scenario};
use mlcd_cloudsim::InstanceType;
use std::collections::BTreeMap;

/// Optimism used in the TEI projection: candidate speed at +2σ.
pub const TEI_SIGMAS: f64 = 2.0;
/// A probe can cost more than its quote (stability extensions,
/// provisioning jitter, billing round-ups); reserve arithmetic scales the
/// quoted money by this factor…
pub const PROBE_COST_OVERRUN: f64 = 1.6;
/// …and the quoted time by this one.
pub const PROBE_TIME_OVERRUN: f64 = 1.3;

/// Whether the incumbent could still finish within the constraint if
/// training started right now (with headroom). Only such an incumbent is
/// worth protecting a reserve for.
pub fn incumbent_feasible(
    env: &dyn ProfilingEnv,
    scenario: &Scenario,
    incumbent: &Observation,
) -> bool {
    let s = env.total_samples();
    match scenario {
        Scenario::FastestUnlimited => true,
        Scenario::CheapestWithDeadline(tmax) => {
            let m = projection_margin(incumbent.deployment.n);
            let train = Scenario::training_time(s, incumbent.speed) * m;
            (env.elapsed() + train).as_secs() <= tmax.as_secs()
        }
        Scenario::FastestWithBudget(cmax) => {
            let m = projection_margin(incumbent.deployment.n);
            let train = Scenario::training_cost(&incumbent.deployment, s, incumbent.speed).scale(m);
            (env.spent() + train).dollars() <= cmax.dollars()
        }
    }
}

/// Decides which probes the constraint allows the kernel to start.
pub trait FeasibilityGate {
    /// Raw-constraint guard used before an incumbent exists: a probe may
    /// not by itself blow the deadline/budget.
    fn probe_fits_raw(&self, env: &dyn ProfilingEnv, scenario: &Scenario, d: &Deployment) -> bool;

    /// The protective reserve (§III-C "Stop condition"): starting this
    /// probe must leave enough deadline/budget to finish training on the
    /// incumbent.
    fn probe_respects_reserve(
        &self,
        env: &dyn ProfilingEnv,
        scenario: &Scenario,
        d: &Deployment,
        incumbent: &Observation,
    ) -> bool;

    /// The TEI filter (paper eqs. 5–6): even at an optimistic speed,
    /// could this candidate still finish within the remaining
    /// deadline/budget after paying its own probing cost?
    #[allow(clippy::too_many_arguments)]
    fn tei_feasible(
        &self,
        env: &dyn ProfilingEnv,
        scenario: &Scenario,
        d: &Deployment,
        pred: &mlcd_gp::Prediction,
        n_obs: usize,
        rates: &BTreeMap<InstanceType, f64>,
        budget_rescue: bool,
    ) -> bool;

    /// Which members of a *concurrent* init batch may launch. The default
    /// admits everything (no constraint to protect).
    fn filter_init_batch(
        &self,
        _env: &dyn ProfilingEnv,
        _scenario: &Scenario,
        points: &[Deployment],
    ) -> Vec<Deployment> {
        points.to_vec()
    }
}

/// HeterBO's gate: the TEI deadline/budget filter plus the protective
/// reserve. With both flags off it admits everything, which is the
/// ConvBO/CherryPick behaviour.
#[derive(Debug, Clone, Copy)]
pub struct TeiReserveGate {
    /// Never start a probe that would eat the reserve needed to finish
    /// training on the current best.
    pub reserve_protection: bool,
    /// Discard candidates whose TEI says they can never pay off.
    pub constraint_aware: bool,
    /// The TEI filter normally waits until the surrogate rests on this
    /// many observations (budget safety is the reserve's job; early
    /// pruning would only cost exploration).
    pub min_obs_before_stop: usize,
}

impl FeasibilityGate for TeiReserveGate {
    fn probe_fits_raw(&self, env: &dyn ProfilingEnv, scenario: &Scenario, d: &Deployment) -> bool {
        if !self.reserve_protection {
            return true;
        }
        let (qt, qc) = env.quote(d);
        match scenario {
            Scenario::FastestUnlimited => true,
            Scenario::CheapestWithDeadline(tmax) => {
                (env.elapsed() + qt * PROBE_TIME_OVERRUN).as_secs() <= tmax.as_secs()
            }
            Scenario::FastestWithBudget(cmax) => {
                (env.spent() + qc.scale(PROBE_COST_OVERRUN)).dollars() <= cmax.dollars()
            }
        }
    }

    /// When no *feasible* incumbent exists yet, there is nothing to
    /// protect — exploration continues under the raw guard (a probe may
    /// never single-handedly blow the constraint).
    fn probe_respects_reserve(
        &self,
        env: &dyn ProfilingEnv,
        scenario: &Scenario,
        d: &Deployment,
        incumbent: &Observation,
    ) -> bool {
        if !self.reserve_protection {
            return true;
        }
        if !incumbent_feasible(env, scenario, incumbent) {
            return self.probe_fits_raw(env, scenario, d);
        }
        let s = env.total_samples();
        let (qt, qc) = env.quote(d);
        match scenario {
            Scenario::FastestUnlimited => true,
            Scenario::CheapestWithDeadline(tmax) => {
                let m = projection_margin(incumbent.deployment.n);
                let train = Scenario::training_time(s, incumbent.speed) * m;
                (env.elapsed() + qt * PROBE_TIME_OVERRUN + train).as_secs() <= tmax.as_secs()
            }
            Scenario::FastestWithBudget(cmax) => {
                let m = projection_margin(incumbent.deployment.n);
                let train =
                    Scenario::training_cost(&incumbent.deployment, s, incumbent.speed).scale(m);
                (env.spent() + qc.scale(PROBE_COST_OVERRUN) + train).dollars() <= cmax.dollars()
            }
        }
    }

    /// "Optimistic" is the larger of the GP's +2σ belief and the
    /// linear-scaling bound from the candidate's own type (a GP fitted on
    /// single-node probes cannot see that scale-out multiplies speed, and
    /// pruning on that blindness would discard the true optimum).
    ///
    /// Normally the filter waits until the surrogate rests on
    /// `min_obs_before_stop` observations. The exception is
    /// `budget_rescue`: a budget incumbent is infeasible, so the search is
    /// trying to buy feasibility back while every probe drains the very
    /// dollars training needs. There the filter activates immediately — a
    /// candidate whose own completion cannot fit even optimistically can
    /// never restore feasibility, and probing it just digs deeper (the
    /// failure mode of a random init landing on a deployment whose
    /// training alone overruns the budget). Deadline infeasibility gets no
    /// such early pruning: it is repaired by *finding speed*, which is the
    /// chase-speed frontier's job.
    fn tei_feasible(
        &self,
        env: &dyn ProfilingEnv,
        scenario: &Scenario,
        d: &Deployment,
        pred: &mlcd_gp::Prediction,
        n_obs: usize,
        rates: &BTreeMap<InstanceType, f64>,
        budget_rescue: bool,
    ) -> bool {
        if !self.constraint_aware {
            return true;
        }
        if n_obs < self.min_obs_before_stop && !budget_rescue {
            return true;
        }
        let gp_opt = pred.mean + TEI_SIGMAS * pred.stddev();
        let scaling_bound = rates.get(&d.itype).map_or(0.0, |r| r * d.n as f64);
        let optimistic = gp_opt.max(scaling_bound).max(1e-9);
        let s = env.total_samples();
        let (qt, qc) = env.quote(d);
        match scenario {
            Scenario::FastestUnlimited => true,
            Scenario::CheapestWithDeadline(tmax) => {
                let train = s / optimistic;
                tmax.as_secs() - (env.elapsed() + qt).as_secs() - train >= 0.0
            }
            Scenario::FastestWithBudget(cmax) => {
                let train_cost = d.hourly_cost().dollars() * (s / optimistic) / 3600.0;
                cmax.dollars() - (env.spent() + qc).dollars() - train_cost >= 0.0
            }
        }
    }

    /// Concurrent sweep: guard the batch as a whole. Money accrues across
    /// the batch — every cluster bills simultaneously — so the budget
    /// check runs against the accumulated sum of the quotes kept so far.
    /// Wall-clock of a concurrent batch is its *slowest member*, so each
    /// candidate is checked against the deadline on its own; admitting one
    /// never tightens the check for the next.
    fn filter_init_batch(
        &self,
        env: &dyn ProfilingEnv,
        scenario: &Scenario,
        points: &[Deployment],
    ) -> Vec<Deployment> {
        let mut kept = Vec::new();
        let mut acc_c = env.spent();
        for d in points {
            let (qt, qc) = env.quote(d);
            let fits = match scenario {
                Scenario::FastestUnlimited => true,
                Scenario::CheapestWithDeadline(tmax) => {
                    (env.elapsed() + qt * PROBE_TIME_OVERRUN).as_secs() <= tmax.as_secs()
                }
                Scenario::FastestWithBudget(cmax) => {
                    (acc_c + qc.scale(PROBE_COST_OVERRUN)).dollars() <= cmax.dollars()
                }
            };
            if fits || !self.reserve_protection {
                acc_c += qc.scale(PROBE_COST_OVERRUN);
                kept.push(*d);
            }
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::SearchSpace;
    use crate::env::SyntheticEnv;
    use mlcd_cloudsim::{Money, SimDuration};
    use mlcd_perfmodel::{ThroughputModel, TrainingJob};

    fn env() -> SyntheticEnv<fn(&Deployment) -> f64> {
        let job = TrainingJob::resnet_cifar10();
        let space = SearchSpace::new(
            &[InstanceType::C5Xlarge, InstanceType::P2Xlarge],
            50,
            &job,
            &ThroughputModel::default(),
        );
        fn f(d: &Deployment) -> f64 {
            100.0 * d.n as f64
        }
        SyntheticEnv::new(space, 5e6, f as fn(&Deployment) -> f64)
    }

    fn gate(on: bool) -> TeiReserveGate {
        TeiReserveGate { reserve_protection: on, constraint_aware: on, min_obs_before_stop: 0 }
    }

    #[test]
    fn disabled_gate_admits_everything() {
        let e = env();
        let g = gate(false);
        let d = Deployment::new(InstanceType::P2Xlarge, 50);
        let tight = Scenario::FastestWithBudget(Money::from_dollars(0.01));
        assert!(g.probe_fits_raw(&e, &tight, &d));
        let inc = Observation {
            deployment: Deployment::new(InstanceType::C5Xlarge, 1),
            speed: 100.0,
            profile_time: SimDuration::from_mins(10.0),
            profile_cost: Money::from_dollars(0.1),
        };
        assert!(g.probe_respects_reserve(&e, &tight, &d, &inc));
    }

    #[test]
    fn raw_guard_blocks_probe_larger_than_budget() {
        let e = env();
        let g = gate(true);
        let d = Deployment::new(InstanceType::P2Xlarge, 50);
        let (_, qc) = e.quote(&d);
        let tight = Scenario::FastestWithBudget(Money::from_dollars(qc.dollars() * 0.5));
        assert!(!g.probe_fits_raw(&e, &tight, &d));
        let roomy = Scenario::FastestWithBudget(Money::from_dollars(qc.dollars() * 10.0));
        assert!(g.probe_fits_raw(&e, &roomy, &d));
    }

    #[test]
    fn init_batch_filter_accumulates_cost_against_the_budget() {
        let e = env();
        let g = gate(true);
        let points: Vec<Deployment> =
            (0..4).map(|_| Deployment::new(InstanceType::P2Xlarge, 1)).collect();
        let (_, qc) = e.quote(&points[0]);
        // Budget fits ~2 overrun-scaled probes, not 4.
        let budget = Money::from_dollars(qc.dollars() * PROBE_COST_OVERRUN * 2.5);
        let kept = g.filter_init_batch(&e, &Scenario::FastestWithBudget(budget), &points);
        assert_eq!(kept.len(), 2, "batch admission must accumulate spend");
        // Unlimited scenario keeps everything.
        let all = g.filter_init_batch(&e, &Scenario::FastestUnlimited, &points);
        assert_eq!(all.len(), 4);
    }
}
