//! Candidate-pruning policies: which deployments the loop may still probe.

use crate::deployment::Deployment;
use crate::observation::Observation;
use crate::scenario::{Objective, Scenario};
use crate::search::trace::{TraceEvent, TraceSink};
use mlcd_cloudsim::InstanceType;
use std::collections::BTreeMap;

/// Speed must decline by more than this fraction between neighbouring
/// scale-outs before the concave prior prunes (guards against noise).
pub const CONCAVE_MARGIN: f64 = 0.03;

/// How much of the linear-scaling upper bound a frontier probe is credited
/// with when competing against GP-EI scores (scaling is sublinear in
/// reality, so the bound is discounted).
pub const FRONTIER_DISCOUNT: f64 = 0.25;

/// What the rising-branch frontier walk needs to know about the current
/// loop iteration.
pub struct FrontierContext<'a> {
    /// Candidates not yet probed and not pruned.
    pub unprobed: &'a [Deployment],
    /// Everything observed so far.
    pub observations: &'a [Observation],
    /// Best observed per-node speed per type (see [`per_type_speed_rate`]).
    pub rates: &'a BTreeMap<InstanceType, f64>,
    /// The scenario being searched.
    pub scenario: &'a Scenario,
    /// The current incumbent.
    pub incumbent: &'a Observation,
    /// Whether the frontier must chase raw speed regardless of the
    /// scenario objective (a deadline incumbent is infeasible and speed
    /// is what buys feasibility back).
    pub chase_speed: bool,
}

/// Trims the candidate pool — statically before the search and/or
/// dynamically as observations arrive.
pub trait CandidatePruner {
    /// Statically trim the pool before the search starts (CherryPick's
    /// experience-based type trimming and coarse scale-out grid).
    fn trim_pool(&self, _pool: &mut Vec<Deployment>) {}

    /// Ingest the observation set after new probes landed; may update
    /// internal pruning state and narrate it to `sink`.
    fn observe(&mut self, _observations: &[Observation], _sink: &mut dyn TraceSink) {}

    /// Whether a candidate is currently admissible for probing.
    fn admits(&self, _d: &Deployment) -> bool {
        true
    }

    /// Rising-branch frontier candidates with their discounted
    /// utility-improvement bonuses (see [`ConcaveScaleOutPrior`]); empty
    /// for pruners with no exploration side.
    fn frontier(&self, _ctx: &FrontierContext<'_>) -> Vec<(Deployment, f64)> {
        Vec::new()
    }
}

/// The identity pruner: every candidate stays admissible forever.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPruning;

impl CandidatePruner for NoPruning {}

/// CherryPick's static space trimming: restrict the pool to the given
/// instance types and/or the coarse scale-out grid.
#[derive(Debug, Clone, Default)]
pub struct SpaceTrim {
    /// Keep only these types (`None` keeps all).
    pub types: Option<Vec<InstanceType>>,
    /// Keep only these node counts (`None` keeps all).
    pub grid: Option<Vec<u32>>,
}

impl CandidatePruner for SpaceTrim {
    fn trim_pool(&self, pool: &mut Vec<Deployment>) {
        pool.retain(|d| {
            self.types.as_ref().is_none_or(|ts| ts.contains(&d.itype))
                && self.grid.as_ref().is_none_or(|g| g.contains(&d.n))
        });
    }
}

/// Best observed per-node speed for each type: `max over obs of speed/n`.
/// Parallel efficiency only falls with scale, so `rate × n` is a true
/// upper bound on any same-type deployment's speed — the safe optimism the
/// TEI filter prunes against.
pub fn per_type_speed_rate(observations: &[Observation]) -> BTreeMap<InstanceType, f64> {
    let mut rates: BTreeMap<InstanceType, f64> = BTreeMap::new();
    for o in observations {
        let rate = o.speed / o.deployment.n as f64;
        let e = rates.entry(o.deployment.itype).or_insert(rate);
        *e = e.max(rate);
    }
    rates
}

/// Update the concave-prior pruning map after new observations: for each
/// type, find the smallest scale-out at which a decline between
/// neighbouring observed points starts, and prune everything larger.
pub fn update_pruning(
    observations: &[Observation],
    pruned_above: &mut BTreeMap<InstanceType, u32>,
) {
    let mut by_type: BTreeMap<InstanceType, Vec<(u32, f64)>> = BTreeMap::new();
    for o in observations {
        by_type.entry(o.deployment.itype).or_default().push((o.deployment.n, o.speed));
    }
    for (t, mut pts) in by_type {
        pts.sort_by_key(|&(n, _)| n);
        for w in pts.windows(2) {
            let (_, s1) = w[0];
            let (n2, s2) = w[1];
            if s2 < s1 * (1.0 - CONCAVE_MARGIN) {
                let cap = pruned_above.entry(t).or_insert(n2);
                *cap = (*cap).min(n2);
                break;
            }
        }
    }
}

/// HeterBO's concave scale-out prior (§III-C): once two neighbouring
/// probes of a type show declining speed, prune all larger scale-outs of
/// that type — and, on the rising branch, push exploration outward via
/// discounted linear-scaling frontier bonuses.
#[derive(Debug, Clone, Default)]
pub struct ConcaveScaleOutPrior {
    pruned_above: BTreeMap<InstanceType, u32>,
}

impl ConcaveScaleOutPrior {
    /// A fresh prior with no caps yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current per-type scale-out caps (for inspection/tests).
    pub fn caps(&self) -> &BTreeMap<InstanceType, u32> {
        &self.pruned_above
    }
}

impl CandidatePruner for ConcaveScaleOutPrior {
    fn observe(&mut self, observations: &[Observation], sink: &mut dyn TraceSink) {
        let before = self.pruned_above.clone();
        update_pruning(observations, &mut self.pruned_above);
        for (&t, &cap) in &self.pruned_above {
            if before.get(&t) != Some(&cap) {
                sink.record(TraceEvent::ScaleOutCapped { itype: t, cap });
            }
        }
    }

    fn admits(&self, d: &Deployment) -> bool {
        self.pruned_above.get(&d.itype).is_none_or(|&cap| d.n <= cap)
    }

    /// The rising branch of the concave prior, used for *exploration*: for
    /// each type whose speed curve has not yet been seen to bend (no
    /// pruning cap), the next scale-out step — a doubling of the largest
    /// probed size — might still multiply speed. A GP fitted on the swept
    /// single-node probes is blind to this, so these frontier candidates
    /// get a discounted linear-scaling utility bonus and block convergence
    /// while any of them remains promising.
    ///
    /// Returns `(candidate, discounted utility-improvement bonus)` pairs.
    /// With `chase_speed` the bonus is in speed units regardless of the
    /// scenario objective — used when the incumbent cannot meet a deadline
    /// and raw speed is what buys feasibility (under ~linear scaling,
    /// scale-out leaves *cost* flat, so a cost bonus would never fire).
    fn frontier(&self, ctx: &FrontierContext<'_>) -> Vec<(Deployment, f64)> {
        // Largest probed n per type.
        let mut n_max: BTreeMap<InstanceType, u32> = BTreeMap::new();
        for o in ctx.observations {
            let e = n_max.entry(o.deployment.itype).or_insert(o.deployment.n);
            *e = (*e).max(o.deployment.n);
        }
        // The frontier reasons in speed units: either the objective is
        // speed, or a deadline incumbent is infeasible and speed buys
        // feasibility. For a *feasible* cost objective, scale-out cannot
        // reduce cost under (sub)linear scaling, so there is no frontier.
        if ctx.scenario.objective() == Objective::MinCost && !ctx.chase_speed {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (&t, &nm) in &n_max {
            if self.pruned_above.contains_key(&t) {
                continue; // curve already bent: exploit via the GP instead
            }
            let Some(&rate) = ctx.rates.get(&t) else { continue };
            // Jump to the larger of (a) a factor-4 geometric step — three
            // probes cover a 50-node range — and (b) the smallest scale at
            // which this type's linear bound could beat the incumbent at
            // all (no point probing scales that cannot win even in the
            // best case).
            let n_beat = (ctx.incumbent.speed / rate).ceil().max(1.0) as u32;
            let n_target = (nm.saturating_mul(4)).max(n_beat.saturating_add(1)).max(nm + 1);
            let step = ctx
                .unprobed
                .iter()
                .filter(|d| d.itype == t && d.n >= n_target)
                .min_by_key(|d| d.n)
                .or_else(|| {
                    // Nothing at or past the target: take the largest
                    // remaining step of this type, if it can still win.
                    ctx.unprobed
                        .iter()
                        .filter(|d| {
                            d.itype == t && d.n > nm && rate * d.n as f64 > ctx.incumbent.speed
                        })
                        .max_by_key(|d| d.n)
                });
            let Some(&d) = step else { continue };
            let bound_speed = rate * d.n as f64;
            let bonus = (bound_speed - ctx.incumbent.speed).max(0.0) * FRONTIER_DISCOUNT;
            if bonus > 0.0 {
                out.push((d, bonus));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::trace::{NullSink, SearchTrace};
    use mlcd_cloudsim::{Money, SimDuration};

    fn obs(itype: InstanceType, n: u32, speed: f64) -> Observation {
        Observation {
            deployment: Deployment::new(itype, n),
            speed,
            profile_time: SimDuration::from_mins(10.0),
            profile_cost: Money::from_dollars(0.1),
        }
    }

    #[test]
    fn per_type_speed_rate_takes_the_best_per_node_rate() {
        let rates = per_type_speed_rate(&[
            obs(InstanceType::C5Xlarge, 1, 100.0),  // rate 100
            obs(InstanceType::C5Xlarge, 2, 150.0),  // rate 75
            obs(InstanceType::C54xlarge, 4, 480.0), // rate 120
        ]);
        assert_eq!(rates[&InstanceType::C5Xlarge], 100.0);
        assert_eq!(rates[&InstanceType::C54xlarge], 120.0);
    }

    #[test]
    fn update_pruning_caps_at_first_adjacent_decline() {
        let mut caps = BTreeMap::new();
        update_pruning(
            &[
                obs(InstanceType::C5Xlarge, 1, 100.0),
                obs(InstanceType::C5Xlarge, 2, 180.0),
                obs(InstanceType::C5Xlarge, 4, 120.0), // > 3 % below 180: bend at n=4
                obs(InstanceType::C5Xlarge, 8, 130.0),
            ],
            &mut caps,
        );
        assert_eq!(caps[&InstanceType::C5Xlarge], 4);
    }

    #[test]
    fn update_pruning_tolerates_noise_within_the_margin() {
        let mut caps = BTreeMap::new();
        update_pruning(
            &[
                obs(InstanceType::C5Xlarge, 1, 100.0),
                // 2 % below the previous point: inside CONCAVE_MARGIN.
                obs(InstanceType::C5Xlarge, 2, 98.0),
            ],
            &mut caps,
        );
        assert!(caps.is_empty(), "a within-margin dip must not prune");
    }

    #[test]
    fn update_pruning_only_tightens_existing_caps() {
        let mut caps = BTreeMap::from([(InstanceType::C5Xlarge, 3u32)]);
        update_pruning(
            &[obs(InstanceType::C5Xlarge, 4, 200.0), obs(InstanceType::C5Xlarge, 8, 100.0)],
            &mut caps,
        );
        assert_eq!(caps[&InstanceType::C5Xlarge], 3, "caps are monotone decreasing");
    }

    #[test]
    fn concave_prior_admits_below_cap_and_narrates_new_caps() {
        let mut prior = ConcaveScaleOutPrior::new();
        let mut trace = SearchTrace::default();
        prior.observe(
            &[obs(InstanceType::C5Xlarge, 2, 200.0), obs(InstanceType::C5Xlarge, 4, 100.0)],
            &mut trace,
        );
        assert!(prior.admits(&Deployment::new(InstanceType::C5Xlarge, 4)));
        assert!(!prior.admits(&Deployment::new(InstanceType::C5Xlarge, 5)));
        assert!(prior.admits(&Deployment::new(InstanceType::P2Xlarge, 50)), "other types free");
        assert!(
            trace.events.iter().any(|e| matches!(
                e,
                TraceEvent::ScaleOutCapped { itype: InstanceType::C5Xlarge, cap: 4 }
            )),
            "cap change must be narrated"
        );
        // Re-observing the same data changes nothing and emits nothing new.
        let before = trace.len();
        prior.observe(
            &[obs(InstanceType::C5Xlarge, 2, 200.0), obs(InstanceType::C5Xlarge, 4, 100.0)],
            &mut trace,
        );
        assert_eq!(trace.len(), before);
    }

    #[test]
    fn space_trim_filters_types_and_grid() {
        let mut pool = vec![
            Deployment::new(InstanceType::C5Xlarge, 1),
            Deployment::new(InstanceType::C5Xlarge, 5),
            Deployment::new(InstanceType::P2Xlarge, 1),
        ];
        SpaceTrim { types: Some(vec![InstanceType::C5Xlarge]), grid: Some(vec![1, 2, 4]) }
            .trim_pool(&mut pool);
        assert_eq!(pool, vec![Deployment::new(InstanceType::C5Xlarge, 1)]);
    }

    #[test]
    fn frontier_proposes_geometric_step_on_unbent_types() {
        let prior = ConcaveScaleOutPrior::new();
        let observations = vec![obs(InstanceType::C5Xlarge, 1, 100.0)];
        let rates = per_type_speed_rate(&observations);
        let unprobed: Vec<Deployment> =
            (2..=16).map(|n| Deployment::new(InstanceType::C5Xlarge, n)).collect();
        let incumbent = observations[0];
        let ctx = FrontierContext {
            unprobed: &unprobed,
            observations: &observations,
            rates: &rates,
            scenario: &Scenario::FastestUnlimited,
            incumbent: &incumbent,
            chase_speed: false,
        };
        let f = prior.frontier(&ctx);
        assert_eq!(f.len(), 1);
        let (d, bonus) = f[0];
        // Factor-4 geometric step from n_max = 1.
        assert_eq!(d.n, 4);
        // Discounted linear-scaling improvement: (100*4 - 100) * 0.25.
        assert!((bonus - 300.0 * FRONTIER_DISCOUNT).abs() < 1e-12);
    }

    #[test]
    fn frontier_is_empty_for_feasible_cost_objective_and_bent_types() {
        let mut prior = ConcaveScaleOutPrior::new();
        let observations = vec![
            obs(InstanceType::C5Xlarge, 1, 100.0),
            obs(InstanceType::C5Xlarge, 2, 50.0), // bend: cap at 2
        ];
        prior.observe(&observations, &mut NullSink);
        let rates = per_type_speed_rate(&observations);
        let unprobed: Vec<Deployment> =
            (3..=16).map(|n| Deployment::new(InstanceType::C5Xlarge, n)).collect();
        let incumbent = observations[0];
        let mk = |scenario, chase_speed| FrontierContext {
            unprobed: &unprobed,
            observations: &observations,
            rates: &rates,
            scenario,
            incumbent: &incumbent,
            chase_speed,
        };
        // Bent type: no frontier even under a speed objective.
        assert!(prior.frontier(&mk(&Scenario::FastestUnlimited, false)).is_empty());
        // Cost objective without chase-speed: no frontier by construction.
        let fresh = ConcaveScaleOutPrior::new();
        let deadline = Scenario::CheapestWithDeadline(SimDuration::from_hours(10.0));
        assert!(fresh.frontier(&mk(&deadline, false)).is_empty());
    }
}
