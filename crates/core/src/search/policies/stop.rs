//! Stopping policies: when the BO loop declares convergence.

use crate::observation::StopReason;

/// CI-stop significance: stop when P(improvement > threshold) < this for
/// every candidate.
pub const CI_ALPHA: f64 = 0.05;

/// What the stop decision may look at, computed by the kernel each step.
/// `max_poi` is lazy — scanning every candidate's improvement probability
/// is only paid when a CI-aware policy actually asks for it.
pub struct StopContext<'a> {
    /// Observations collected so far (init + loop).
    pub n_obs: usize,
    /// This step's absolute EI stop threshold (relative threshold × the
    /// incumbent's utility magnitude).
    pub threshold: f64,
    /// The best candidate's EI this step.
    pub best_ei: f64,
    /// The largest frontier bonus still on the table — convergence must
    /// not fire while a promising scale-out step remains unexplored.
    pub max_frontier_bonus: f64,
    /// Maximum over candidates of P(utility improvement > threshold).
    pub max_poi: &'a dyn Fn() -> f64,
}

/// Decides when the loop stops probing.
pub trait StopPolicy {
    /// Cap on BO-loop probes *after* initialisation (the init sweep is
    /// budgeted separately — a 19-type sweep must not starve the loop).
    fn max_steps(&self) -> usize;

    /// Minimum observations before a convergence-based stop may fire —
    /// guards against declaring victory off a 2-point surrogate.
    fn min_obs_before_stop(&self) -> usize;

    /// This step's absolute EI stop threshold, from the incumbent's
    /// utility.
    fn ei_threshold(&self, incumbent_utility: f64) -> f64;

    /// Whether to stop now, and why. `None` keeps probing.
    fn should_stop(&self, ctx: &StopContext<'_>) -> Option<StopReason>;
}

/// The EI-threshold stop used by all three searchers, with HeterBO's
/// confidence-aware variant behind `ci_stop`: stop only when *no*
/// candidate has ≥5 % probability of improving by more than the threshold
/// (the paper's "95 % confidence interval of the expected improvement").
#[derive(Debug, Clone, Copy)]
pub struct ConvergenceStop {
    /// Relative expected-improvement stop threshold (fraction of the
    /// incumbent's utility).
    pub ei_rel_threshold: f64,
    /// Use the CI-aware probability test instead of the plain EI test.
    pub ci_stop: bool,
    /// Cap on BO-loop probes after initialisation.
    pub max_steps: usize,
    /// Minimum observations before convergence may fire.
    pub min_obs_before_stop: usize,
}

impl StopPolicy for ConvergenceStop {
    fn max_steps(&self) -> usize {
        self.max_steps
    }

    fn min_obs_before_stop(&self) -> usize {
        self.min_obs_before_stop
    }

    fn ei_threshold(&self, incumbent_utility: f64) -> f64 {
        self.ei_rel_threshold * incumbent_utility.abs().max(1e-9)
    }

    fn should_stop(&self, ctx: &StopContext<'_>) -> Option<StopReason> {
        // Only once the surrogate rests on enough data to be trusted about
        // "nothing left to gain", and never while a promising frontier
        // step remains unexplored.
        let may_converge =
            ctx.n_obs >= self.min_obs_before_stop && ctx.max_frontier_bonus < ctx.threshold;
        if !may_converge {
            return None;
        }
        if self.ci_stop {
            // Stop when no candidate retains a real chance of a
            // meaningful improvement.
            if (ctx.max_poi)() < CI_ALPHA {
                return Some(StopReason::Converged);
            }
        } else if ctx.best_ei < ctx.threshold {
            return Some(StopReason::Converged);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stop(ci: bool) -> ConvergenceStop {
        ConvergenceStop {
            ei_rel_threshold: 0.10,
            ci_stop: ci,
            max_steps: 8,
            min_obs_before_stop: 4,
        }
    }

    fn ctx<'a>(
        n_obs: usize,
        best_ei: f64,
        max_frontier_bonus: f64,
        max_poi: &'a dyn Fn() -> f64,
    ) -> StopContext<'a> {
        StopContext { n_obs, threshold: 10.0, best_ei, max_frontier_bonus, max_poi }
    }

    #[test]
    fn plain_ei_stop_fires_below_threshold_after_min_obs() {
        let s = stop(false);
        let poi = || panic!("plain EI stop must not evaluate POI");
        assert_eq!(s.should_stop(&ctx(6, 5.0, 0.0, &poi)), Some(StopReason::Converged));
        assert_eq!(s.should_stop(&ctx(6, 50.0, 0.0, &poi)), None);
        // Too few observations: never converge.
        assert_eq!(s.should_stop(&ctx(2, 5.0, 0.0, &poi)), None);
        // A live frontier bonus blocks convergence.
        assert_eq!(s.should_stop(&ctx(6, 5.0, 99.0, &poi)), None);
    }

    #[test]
    fn ci_stop_uses_the_lazy_poi_scan() {
        let s = stop(true);
        let low = || 0.01;
        assert_eq!(s.should_stop(&ctx(6, 5.0, 0.0, &low)), Some(StopReason::Converged));
        let high = || 0.5;
        assert_eq!(s.should_stop(&ctx(6, 5.0, 0.0, &high)), None);
    }

    #[test]
    fn threshold_is_relative_to_utility_magnitude() {
        let s = stop(false);
        assert_eq!(s.ei_threshold(100.0), 10.0);
        assert_eq!(s.ei_threshold(-100.0), 10.0);
        // Degenerate zero utility keeps a tiny positive floor.
        assert!(s.ei_threshold(0.0) > 0.0);
    }
}
