//! Searchers.
//!
//! All three BO-family searchers (HeterBO, ConvBO, CherryPick) share one
//! correct core loop — the policy-driven [`kernel::SearchKernel`], whose
//! five stages ([`policies::InitPolicy`], [`policies::CandidatePruner`],
//! [`policies::FeasibilityGate`], [`policies::AcquisitionPolicy`],
//! [`policies::StopPolicy`]) are composed per searcher by
//! [`bo::BoCore::kernel`] from the [`bo::BoConfig`] mechanism switches —
//! which is also exactly what the ablation benchmarks toggle:
//!
//! | mechanism (paper §III-C)        | HeterBO | ConvBO | CherryPick |
//! |---------------------------------|---------|--------|------------|
//! | init: one node per type         | ✔       | random | random     |
//! | cost-penalised acquisition      | ✔       | ✘      | ✘          |
//! | constraint-aware TEI filter     | ✔       | ✘      | ✘          |
//! | protective budget reserve       | ✔       | ✘¹     | ✘¹         |
//! | concave scale-out prior         | ✔       | ✘      | ✘          |
//! | experience-trimmed space        | ✘       | ✘      | ✔          |
//! | EI stop threshold               | 5 % CI  | 1 %    | 10 %       |
//!
//! ¹ the Fig 18 "improved" variants (`ConvBo::budget_aware`,
//! `CherryPick::budget_aware`) switch the reserve on.

pub mod bo;
pub mod exhaustive;
pub mod kernel;
pub mod policies;
pub mod random;
pub mod surrogate;
pub mod trace;

pub use bo::{BoConfig, BoConfigBuilder, CherryPick, ConvBo, HeterBo, InitStrategy};
pub use exhaustive::ExhaustiveSearch;
pub use kernel::SearchKernel;
pub use random::RandomSearch;
pub use surrogate::{RefitPolicy, Surrogate};
pub use trace::{NullSink, PruneReason, SearchTrace, TraceEvent, TraceSink};

use crate::env::ProfilingEnv;
use crate::observation::{Observation, SearchOutcome};
use crate::scenario::Scenario;
use mlcd_cloudsim::Money;

/// The CLI/service searcher names [`searcher_by_name`] resolves, in the
/// order help text lists them. `paleo` is absent: it is an analytical
/// baseline with no search loop, handled by
/// [`crate::experiment::ExperimentRunner::run_paleo`].
pub const SEARCHER_NAMES: [&str; 6] =
    ["heterbo", "heterbo-parallel", "convbo", "cherrypick", "random", "exhaustive"];

/// Construct a searcher from its CLI/service name, seeded. Returns `None`
/// for unknown names. The boxed searcher is `Send + Sync`: searchers are
/// plain configuration structs, so service sessions can build and run
/// them on worker threads.
pub fn searcher_by_name(name: &str, seed: u64) -> Option<Box<dyn Searcher + Send + Sync>> {
    Some(match name {
        "heterbo" => Box::new(HeterBo::seeded(seed)),
        "heterbo-parallel" => Box::new(HeterBo::with_parallel_init(seed)),
        "convbo" => Box::new(ConvBo::seeded(seed)),
        "cherrypick" => Box::new(CherryPick::seeded(seed)),
        "random" => Box::new(RandomSearch::new(9, seed)),
        "exhaustive" => Box::new(ExhaustiveSearch::strided(10)),
        _ => return None,
    })
}

/// A deployment search strategy.
pub trait Searcher {
    /// Short identifier used in figures and reports.
    fn name(&self) -> &'static str;

    /// Run the search against `env`, honouring (or, for the baselines,
    /// ignoring) the scenario's constraints.
    fn search(&self, env: &mut dyn ProfilingEnv, scenario: &Scenario) -> SearchOutcome;

    /// Run the search while narrating structured [`TraceEvent`]s into
    /// `sink`. Tracing is pure observation: the outcome is bit-identical
    /// to [`Searcher::search`]. The default ignores the sink — searchers
    /// without an instrumented loop simply produce an empty trace.
    fn search_traced(
        &self,
        env: &mut dyn ProfilingEnv,
        scenario: &Scenario,
        sink: &mut dyn TraceSink,
    ) -> SearchOutcome {
        let _ = sink;
        self.search(env, scenario)
    }
}

/// Pick the best observation under the scenario's objective and
/// constraints.
///
/// * Scenario-1: fastest.
/// * Scenario-2: cheapest-to-train among those that can still finish
///   before the deadline (given profiling time already `elapsed`);
///   falls back to the fastest when none can.
/// * Scenario-3: fastest among those whose training would still fit the
///   remaining budget; falls back to the cheapest when none fit.
///
/// `constraint_aware = false` (the ConvBO/CherryPick behaviour) ranks by
/// objective only and never checks feasibility — which is how those
/// baselines end up violating deadlines/budgets.
pub fn pick_incumbent<'a>(
    observations: &'a [Observation],
    scenario: &Scenario,
    total_samples: f64,
    elapsed: mlcd_cloudsim::SimDuration,
    spent: Money,
    constraint_aware: bool,
) -> Option<&'a Observation> {
    if observations.is_empty() {
        return None;
    }
    let by_utility =
        |obs: &&Observation| scenario.utility(&obs.deployment, total_samples, obs.speed);
    if !constraint_aware {
        return observations.iter().max_by(|a, b| by_utility(a).total_cmp(&by_utility(b)));
    }
    let feasible: Vec<&Observation> = observations
        .iter()
        .filter(|obs| {
            let m = crate::scenario::projection_margin(obs.deployment.n);
            let train_t = Scenario::training_time(total_samples, obs.speed) * m;
            let train_c =
                Scenario::training_cost(&obs.deployment, total_samples, obs.speed).scale(m);
            match scenario {
                Scenario::FastestUnlimited => true,
                Scenario::CheapestWithDeadline(tmax) => {
                    (elapsed + train_t).as_secs() <= tmax.as_secs()
                }
                Scenario::FastestWithBudget(cmax) => (spent + train_c).dollars() <= cmax.dollars(),
            }
        })
        .collect();
    if let Some(best) = feasible.iter().max_by(|a, b| by_utility(a).total_cmp(&by_utility(b))) {
        return Some(best);
    }
    // Nothing satisfies the constraint any more: least-bad fallback —
    // fastest for a deadline (minimises the overrun), cheapest for a
    // budget (minimises the overspend).
    match scenario {
        Scenario::CheapestWithDeadline(_) => {
            observations.iter().max_by(|a, b| a.speed.total_cmp(&b.speed))
        }
        _ => observations.iter().min_by(|a, b| {
            Scenario::training_cost(&a.deployment, total_samples, a.speed).dollars().total_cmp(
                &Scenario::training_cost(&b.deployment, total_samples, b.speed).dollars(),
            )
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;
    use mlcd_cloudsim::{InstanceType, SimDuration};

    fn obs(itype: InstanceType, n: u32, speed: f64) -> Observation {
        Observation {
            deployment: Deployment::new(itype, n),
            speed,
            profile_time: SimDuration::from_mins(10.0),
            profile_cost: Money::from_dollars(0.1),
        }
    }

    #[test]
    fn scenario1_picks_fastest() {
        let observations = vec![
            obs(InstanceType::C5Xlarge, 1, 100.0),
            obs(InstanceType::C5Xlarge, 10, 500.0),
            obs(InstanceType::P2Xlarge, 2, 300.0),
        ];
        let best = pick_incumbent(
            &observations,
            &Scenario::FastestUnlimited,
            1e6,
            SimDuration::ZERO,
            Money::ZERO,
            true,
        )
        .unwrap();
        assert_eq!(best.speed, 500.0);
    }

    #[test]
    fn scenario2_prefers_cheap_feasible() {
        // 1e6 samples. Fast-but-pricey: 10×p2 at 500/s → 0.56 h × $9/h = $5.
        // Slow-but-cheap: 2×c5.xlarge at 100/s → 2.78 h × $0.34/h = $0.94.
        let observations =
            vec![obs(InstanceType::P2Xlarge, 10, 500.0), obs(InstanceType::C5Xlarge, 2, 100.0)];
        let deadline = Scenario::CheapestWithDeadline(SimDuration::from_hours(4.0));
        let best =
            pick_incumbent(&observations, &deadline, 1e6, SimDuration::ZERO, Money::ZERO, true)
                .unwrap();
        assert_eq!(best.deployment.itype, InstanceType::C5Xlarge);
        // Tighten the deadline below 2.78 h: only the GPU option finishes.
        let tight = Scenario::CheapestWithDeadline(SimDuration::from_hours(1.0));
        let best = pick_incumbent(&observations, &tight, 1e6, SimDuration::ZERO, Money::ZERO, true)
            .unwrap();
        assert_eq!(best.deployment.itype, InstanceType::P2Xlarge);
    }

    #[test]
    fn scenario2_accounts_for_elapsed_profiling() {
        let observations = vec![obs(InstanceType::C5Xlarge, 2, 100.0)]; // 2.78 h to train
        let deadline = Scenario::CheapestWithDeadline(SimDuration::from_hours(3.0));
        // 0 h used: feasible.
        assert!(pick_incumbent(
            &observations,
            &deadline,
            1e6,
            SimDuration::ZERO,
            Money::ZERO,
            true
        )
        .is_some());
        // 2.5 h of profiling used: 2.78 h no longer fits; falls back to the
        // fastest (same single observation) — still Some, but the caller can
        // see the constraint is blown via the experiment runner.
        let fallback = pick_incumbent(
            &observations,
            &deadline,
            1e6,
            SimDuration::from_hours(2.5),
            Money::ZERO,
            true,
        );
        assert!(fallback.is_some());
    }

    #[test]
    fn scenario3_budget_filter() {
        // Training costs at 1e6 samples: 10×p2 (500/s): $5.0; 2×c5 (100/s): $0.94.
        let observations =
            vec![obs(InstanceType::P2Xlarge, 10, 500.0), obs(InstanceType::C5Xlarge, 2, 100.0)];
        let budget = Scenario::FastestWithBudget(Money::from_dollars(2.0));
        let best =
            pick_incumbent(&observations, &budget, 1e6, SimDuration::ZERO, Money::ZERO, true)
                .unwrap();
        assert_eq!(best.deployment.itype, InstanceType::C5Xlarge);
        let rich = Scenario::FastestWithBudget(Money::from_dollars(50.0));
        let best = pick_incumbent(&observations, &rich, 1e6, SimDuration::ZERO, Money::ZERO, true)
            .unwrap();
        assert_eq!(best.deployment.itype, InstanceType::P2Xlarge);
    }

    #[test]
    fn oblivious_ranking_ignores_constraints() {
        let observations =
            vec![obs(InstanceType::P2Xlarge, 10, 500.0), obs(InstanceType::C5Xlarge, 2, 100.0)];
        let budget = Scenario::FastestWithBudget(Money::from_dollars(2.0));
        // Constraint-oblivious: picks the fast GPU even though it blows the
        // budget — the ConvBO failure mode.
        let best =
            pick_incumbent(&observations, &budget, 1e6, SimDuration::ZERO, Money::ZERO, false)
                .unwrap();
        assert_eq!(best.deployment.itype, InstanceType::P2Xlarge);
    }

    #[test]
    fn empty_observations_give_none() {
        assert!(pick_incumbent(
            &[],
            &Scenario::FastestUnlimited,
            1e6,
            SimDuration::ZERO,
            Money::ZERO,
            true
        )
        .is_none());
    }
}
