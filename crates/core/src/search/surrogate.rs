//! The GP surrogate over the deployment space.
//!
//! Wraps `mlcd-gp` with the deployment→feature mapping, input scaling, and
//! refitting policy. Observations are modelled in *speed* space; scenario
//! objectives that need cost beliefs derive them via the delta method in
//! [`crate::acquisition::cost_belief`].

use crate::deployment::{Deployment, SearchSpace};
use crate::observation::Observation;
use mlcd_gp::fit::fit_hyperparams_with_scratch;
use mlcd_gp::{
    FitOptions, FitScratch, GpModel, InputScaler, KernelFamily, Prediction, ScoreWorkspace,
};

/// How [`Surrogate::update`] refreshes hyperparameters across BO steps.
#[derive(Debug, Clone)]
pub struct RefitPolicy {
    /// Refit hyperparameters every k-th observation, extending the
    /// posterior incrementally (`O(n²)`, fixed hyperparameters) in
    /// between. 1 = refit every step. Values are clamped to ≥ 1.
    pub refit_every: usize,
    /// Seed each refit's optimiser with the previous optimum (an extra
    /// Nelder–Mead start). The surface moves little between consecutive
    /// refits, so the carried-over θ is usually at or near the basin of
    /// the new optimum.
    pub warm_start: bool,
    /// Observation count from which a warm-started refit also *shrinks*
    /// the restart budget (see [`FitOptions::warm_burnin`]).
    pub warm_burnin: usize,
    /// Latin-hypercube restarts kept past the burn-in (see
    /// [`FitOptions::warm_restarts`]).
    pub warm_restarts: usize,
}

impl Default for RefitPolicy {
    fn default() -> Self {
        let fit = FitOptions::default();
        RefitPolicy {
            refit_every: 1,
            warm_start: true,
            warm_burnin: fit.warm_burnin,
            warm_restarts: fit.warm_restarts,
        }
    }
}

/// A fitted surrogate.
pub struct Surrogate {
    gp: GpModel,
    scaler: InputScaler,
    /// Log-space optimum of the last full hyperparameter fit; carried
    /// through incremental extensions so the next refit can warm-start.
    theta: Vec<f64>,
    /// Distance-plane buffers carried across refits so a warm-started
    /// refit reuses the previous allocation instead of growing a fresh
    /// [`mlcd_gp::DistanceWorkspace`] each step.
    scratch: FitScratch,
}

impl Surrogate {
    /// Fit to the observations from scratch (no warm start). Returns
    /// `None` with fewer than two observations or if the GP fit fails
    /// (both are handled by the caller falling back to pure exploration).
    pub fn fit(space: &SearchSpace, observations: &[Observation], seed: u64) -> Option<Surrogate> {
        Self::fit_warm(space, observations, seed, None, &RefitPolicy::default(), FitScratch::new())
    }

    /// Refresh an existing surrogate with the observation list grown by
    /// exactly one: extends the posterior incrementally in `O(n²)` (fixed
    /// hyperparameters) between refits and pays the full `O(n³)`
    /// marginal-likelihood refit only every `refit_every`-th observation —
    /// the standard BO cadence. Any mismatch in counts, or a numerically
    /// unextendable point, falls back to a full refit. Refits are
    /// warm-started from the previous surrogate's optimum when the policy
    /// asks for it.
    pub fn update(
        prev: Option<Surrogate>,
        space: &SearchSpace,
        observations: &[Observation],
        seed: u64,
        policy: &RefitPolicy,
    ) -> Option<Surrogate> {
        let refit_every = policy.refit_every.max(1);
        let mut warm = None;
        let mut scratch = FitScratch::new();
        if let Some(prev) = prev {
            let is_increment = observations.len() == prev.gp.n_obs() + 1;
            let due_refit = observations.len().is_multiple_of(refit_every);
            if is_increment && !due_refit {
                let newest = observations.last().expect("non-empty");
                let x = prev.scaler.scale(&space.features(&newest.deployment));
                if let Ok(gp) = prev.gp.extend(x, newest.speed) {
                    return Some(Surrogate {
                        gp,
                        scaler: prev.scaler,
                        theta: prev.theta,
                        scratch: prev.scratch,
                    });
                }
            }
            if policy.warm_start {
                warm = Some(prev.theta);
            }
            scratch = prev.scratch;
        }
        Self::fit_warm(space, observations, seed, warm, policy, scratch)
    }

    fn fit_warm(
        space: &SearchSpace,
        observations: &[Observation],
        seed: u64,
        warm: Option<Vec<f64>>,
        policy: &RefitPolicy,
        mut scratch: FitScratch,
    ) -> Option<Surrogate> {
        if observations.len() < 2 {
            return None;
        }
        let scaler = InputScaler::from_bounds(&space.feature_bounds());
        let xs: Vec<Vec<f64>> =
            observations.iter().map(|o| scaler.scale(&space.features(&o.deployment))).collect();
        let ys: Vec<f64> = observations.iter().map(|o| o.speed).collect();
        // Tighter hyperparameter bounds than the generic defaults: a BO
        // surrogate is fitted on very few points, where an unconstrained
        // marginal-likelihood fit happily picks a near-infinite lengthscale
        // for a dimension with no variation yet (e.g. n when only single
        // nodes were probed) and then extrapolates with absurd confidence.
        // Capping the lengthscale at ~the feature-cube width keeps honest
        // uncertainty over unexplored regions.
        let opts = FitOptions {
            seed,
            log_lengthscale: ((0.05f64).ln(), (1.5f64).ln()),
            log_signal_var: ((0.1f64).ln(), (10.0f64).ln()),
            log_noise_var: ((1e-6f64).ln(), (0.05f64).ln()),
            warm_start: warm,
            warm_burnin: policy.warm_burnin,
            warm_restarts: policy.warm_restarts,
            ..FitOptions::default()
        };
        let hp =
            fit_hyperparams_with_scratch(&xs, &ys, KernelFamily::Matern52, &opts, &mut scratch)
                .ok()?;
        let gp = GpModel::with_hyperparams(&xs, &ys, hp.kernel, hp.noise_var).ok()?;
        Some(Surrogate { gp, scaler, theta: hp.theta, scratch })
    }

    /// Posterior belief about the speed of a deployment.
    pub fn predict(&self, space: &SearchSpace, d: &Deployment) -> Prediction {
        self.gp.predict(&self.scaler.scale(&space.features(d)))
    }

    /// Posterior beliefs about every deployment in `ds`, in order, through
    /// one blocked solve against the cached Cholesky factor. Bit-identical
    /// to calling [`predict`](Self::predict) per deployment (see
    /// [`GpModel::predict_batch`]), but a whole candidate pool costs one
    /// traversal of the factor instead of one per candidate.
    pub fn predict_batch(&self, space: &SearchSpace, ds: &[Deployment]) -> Vec<Prediction> {
        let xs: Vec<Vec<f64>> = ds.iter().map(|d| self.scaler.scale(&space.features(d))).collect();
        self.gp.predict_batch(&xs)
    }

    /// [`predict_batch`](Self::predict_batch) into a caller-owned
    /// [`ScoreWorkspace`]: features are staged and scaled in the
    /// workspace's query buffer and the posterior lands in
    /// `ws.predictions()`, so a warm workspace makes the whole scoring
    /// pass allocation-free. Bit-identical to `predict_batch` (pinned by
    /// tests here and at the GP layer).
    pub fn predict_batch_into(
        &self,
        space: &SearchSpace,
        ds: &[Deployment],
        ws: &mut ScoreWorkspace,
    ) {
        ws.begin_queries(self.scaler.dim());
        for d in ds {
            let slot = ws.push_query();
            space.features_into(d, slot);
            self.scaler.scale_in_place(slot);
        }
        self.gp.predict_batch_into(ws);
    }

    /// Number of observations the surrogate was fitted on.
    pub fn n_obs(&self) -> usize {
        self.gp.n_obs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcd_cloudsim::{InstanceType, Money, SimDuration};
    use mlcd_perfmodel::{ThroughputModel, TrainingJob};

    fn space() -> SearchSpace {
        SearchSpace::new(
            &[InstanceType::C54xlarge],
            50,
            &TrainingJob::resnet_cifar10(),
            &ThroughputModel::default(),
        )
    }

    fn obs(n: u32, speed: f64) -> Observation {
        Observation {
            deployment: Deployment::new(InstanceType::C54xlarge, n),
            speed,
            profile_time: SimDuration::from_mins(10.0),
            profile_cost: Money::from_dollars(0.1),
        }
    }

    #[test]
    fn needs_two_observations() {
        let s = space();
        assert!(Surrogate::fit(&s, &[], 0).is_none());
        assert!(Surrogate::fit(&s, &[obs(1, 100.0)], 0).is_none());
        assert!(Surrogate::fit(&s, &[obs(1, 100.0), obs(10, 300.0)], 0).is_some());
    }

    #[test]
    fn interpolates_concave_curve() {
        let s = space();
        // A concave speed curve peaking at n≈25.
        let f = |n: u32| 400.0 - 0.6 * (n as f64 - 25.0).powi(2);
        let observations: Vec<Observation> =
            [1u32, 5, 10, 20, 30, 40, 50].iter().map(|&n| obs(n, f(n))).collect();
        let sur = Surrogate::fit(&s, &observations, 7).unwrap();
        // Mean near the held-out point n=25 should be near the true peak.
        let p = sur.predict(&s, &Deployment::new(InstanceType::C54xlarge, 25));
        assert!((p.mean - 400.0).abs() < 60.0, "predicted {}", p.mean);
        // Variance at an observed point is smaller than midway between
        // observations.
        let at_obs = sur.predict(&s, &Deployment::new(InstanceType::C54xlarge, 10));
        let midway = sur.predict(&s, &Deployment::new(InstanceType::C54xlarge, 45));
        assert!(at_obs.var <= midway.var * 1.5 + 1e-9);
    }

    #[test]
    fn predict_batch_matches_per_point() {
        let s = space();
        let observations: Vec<Observation> =
            [1u32, 8, 17, 29, 44].iter().map(|&n| obs(n, 50.0 + 4.0 * n as f64)).collect();
        let sur = Surrogate::fit(&s, &observations, 11).unwrap();
        let ds: Vec<Deployment> =
            (1..=50).map(|n| Deployment::new(InstanceType::C54xlarge, n)).collect();
        let batch = sur.predict_batch(&s, &ds);
        assert_eq!(batch.len(), ds.len());
        for (d, p) in ds.iter().zip(&batch) {
            let single = sur.predict(&s, d);
            assert_eq!(p.mean, single.mean, "at {d}");
            assert_eq!(p.var, single.var, "at {d}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let s = space();
        let observations: Vec<Observation> =
            [1u32, 10, 20, 40].iter().map(|&n| obs(n, 100.0 + n as f64)).collect();
        let a = Surrogate::fit(&s, &observations, 3).unwrap();
        let b = Surrogate::fit(&s, &observations, 3).unwrap();
        let d = Deployment::new(InstanceType::C54xlarge, 33);
        assert_eq!(a.predict(&s, &d).mean, b.predict(&s, &d).mean);
    }

    #[test]
    fn incremental_update_tracks_full_refit() {
        let s = space();
        let mut observations: Vec<Observation> =
            [1u32, 10, 20].iter().map(|&n| obs(n, 100.0 + 3.0 * n as f64)).collect();
        // Start from a full fit (3 obs), extend one at a time with a long
        // refit cadence so the incremental path is exercised.
        let mut sur = Surrogate::fit(&s, &observations, 5);
        let policy = RefitPolicy { refit_every: 1000, ..RefitPolicy::default() };
        for &n in &[30u32, 40, 45] {
            observations.push(obs(n, 100.0 + 3.0 * n as f64));
            sur = Surrogate::update(sur, &s, &observations, 5, &policy);
        }
        let sur = sur.unwrap();
        assert_eq!(sur.n_obs(), 6);
        // Predictions stay close to a from-scratch fit with the same data
        // (hyperparameters differ — stale vs refit — so compare loosely,
        // at a point inside the data).
        let fresh = Surrogate::fit(&s, &observations, 5).unwrap();
        let d = Deployment::new(InstanceType::C54xlarge, 25);
        let a = sur.predict(&s, &d).mean;
        let b = fresh.predict(&s, &d).mean;
        assert!((a - b).abs() < 0.15 * b.abs().max(1.0), "incremental {a} vs fresh {b}");
        // And the incremental posterior interpolates the newest point.
        let p = sur.predict(&s, &Deployment::new(InstanceType::C54xlarge, 45));
        assert!((p.mean - (100.0 + 3.0 * 45.0)).abs() < 10.0, "got {}", p.mean);
    }

    #[test]
    fn predict_batch_into_reused_workspace_matches_fresh_across_steps() {
        let s = space();
        let mut observations: Vec<Observation> =
            [1u32, 9, 22, 37].iter().map(|&n| obs(n, 60.0 + 5.0 * n as f64)).collect();
        let ds: Vec<Deployment> =
            (1..=50).map(|n| Deployment::new(InstanceType::C54xlarge, n)).collect();
        let mut sur = Surrogate::update(None, &s, &observations, 13, &RefitPolicy::default());
        let mut ws = ScoreWorkspace::new();
        // Three consecutive BO steps: extend the model between scoring
        // passes and keep reusing the same workspace throughout.
        for &n in &[42u32, 6, 31] {
            let sur_ref = sur.as_ref().unwrap();
            sur_ref.predict_batch_into(&s, &ds, &mut ws);
            let fresh = sur_ref.predict_batch(&s, &ds);
            assert_eq!(ws.predictions(), &fresh[..]);
            observations.push(obs(n, 60.0 + 5.0 * n as f64));
            sur = Surrogate::update(sur, &s, &observations, 13, &RefitPolicy::default());
        }
    }

    #[test]
    fn update_refits_on_cadence_and_on_mismatch() {
        let s = space();
        let observations: Vec<Observation> =
            [1u32, 10, 20, 30].iter().map(|&n| obs(n, 50.0 + n as f64)).collect();
        // refit_every = 1: always a fresh fit, identical to Surrogate::fit.
        let via_update =
            Surrogate::update(None, &s, &observations, 7, &RefitPolicy::default()).unwrap();
        let via_fit = Surrogate::fit(&s, &observations, 7).unwrap();
        let d = Deployment::new(InstanceType::C54xlarge, 15);
        assert_eq!(via_update.predict(&s, &d).mean, via_fit.predict(&s, &d).mean);
        // A count jump of +2 cannot extend → falls back to a full fit.
        let short: Vec<Observation> = observations[..2].to_vec();
        let prev = Surrogate::fit(&s, &short, 7);
        let policy = RefitPolicy { refit_every: 1000, ..RefitPolicy::default() };
        let jumped = Surrogate::update(prev, &s, &observations, 7, &policy).unwrap();
        assert_eq!(jumped.n_obs(), 4);
    }
}
