//! Random profiling baseline (paper Fig 12).
//!
//! Probes `k` uniformly random deployments, then recommends the best
//! observed one. The paper uses this to show HeterBO's statistical
//! significance: random needs many probes to be reliable, and its probing
//! cost then dwarfs the savings.

use crate::env::ProfilingEnv;
use crate::observation::{SearchOutcome, SearchStep, StopReason};
use crate::scenario::Scenario;
use crate::search::trace::{NullSink, TraceEvent, TraceSink};
use crate::search::{pick_incumbent, Searcher};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Uniform random search with a fixed probe count.
pub struct RandomSearch {
    /// Number of probes.
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RandomSearch {
    /// `k` probes with the given seed.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 1, "RandomSearch: need at least one probe");
        RandomSearch { k, seed }
    }
}

impl Searcher for RandomSearch {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn search(&self, env: &mut dyn ProfilingEnv, scenario: &Scenario) -> SearchOutcome {
        self.search_traced(env, scenario, &mut NullSink)
    }

    fn search_traced(
        &self,
        env: &mut dyn ProfilingEnv,
        scenario: &Scenario,
        sink: &mut dyn TraceSink,
    ) -> SearchOutcome {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut pool = env.space().candidates().to_vec();
        pool.shuffle(&mut rng);
        let mut observations = Vec::new();
        let mut steps = Vec::new();
        for d in pool.into_iter().take(self.k) {
            match env.profile(&d) {
                Ok(obs) => {
                    observations.push(obs);
                    steps.push(SearchStep {
                        index: steps.len() + 1,
                        observation: obs,
                        cum_profile_time: env.elapsed(),
                        cum_profile_cost: env.spent(),
                    });
                    sink.record(TraceEvent::Probe {
                        observation: obs,
                        cum_profile_time: env.elapsed(),
                        cum_profile_cost: env.spent(),
                    });
                }
                Err(e) => {
                    sink.record(TraceEvent::ProbeFailed { deployment: d, error: e.to_string() })
                }
            }
        }
        let best = pick_incumbent(
            &observations,
            scenario,
            env.total_samples(),
            env.elapsed(),
            env.spent(),
            true,
        )
        .copied();
        let stop_reason =
            if best.is_none() { StopReason::NothingFeasible } else { StopReason::MaxSteps };
        sink.record(TraceEvent::Stopped { reason: stop_reason });
        SearchOutcome {
            best,
            steps,
            profile_time: env.elapsed(),
            profile_cost: env.spent(),
            stop_reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{Deployment, SearchSpace};
    use crate::env::SyntheticEnv;
    use mlcd_cloudsim::InstanceType;
    use mlcd_perfmodel::{ThroughputModel, TrainingJob};

    fn make_env() -> SyntheticEnv<fn(&Deployment) -> f64> {
        let job = TrainingJob::resnet_cifar10();
        let space = SearchSpace::new(
            &[InstanceType::C5Xlarge, InstanceType::C54xlarge],
            30,
            &job,
            &ThroughputModel::default(),
        );
        fn f(d: &Deployment) -> f64 {
            d.n as f64 * 10.0
        }
        SyntheticEnv::new(space, 1e6, f)
    }

    #[test]
    fn probes_exactly_k() {
        let mut env = make_env();
        let out = RandomSearch::new(7, 1).search(&mut env, &Scenario::FastestUnlimited);
        assert_eq!(out.n_probes(), 7);
        assert!(out.best.is_some());
    }

    #[test]
    fn best_is_max_of_probed() {
        let mut env = make_env();
        let out = RandomSearch::new(10, 2).search(&mut env, &Scenario::FastestUnlimited);
        let max_probed =
            out.steps.iter().map(|s| s.observation.speed).fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(out.best.unwrap().speed, max_probed);
    }

    #[test]
    fn different_seeds_probe_differently() {
        let run = |seed| {
            let mut env = make_env();
            let out = RandomSearch::new(5, seed).search(&mut env, &Scenario::FastestUnlimited);
            out.steps.iter().map(|s| s.observation.deployment).collect::<Vec<_>>()
        };
        assert_ne!(run(1), run(2));
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn variance_shrinks_with_more_probes() {
        // Across seeds, the best-found speed varies much more at k=2 than
        // at k=30 (the paper's Fig 12 point).
        let best_at = |k: usize, seed: u64| {
            let mut env = make_env();
            RandomSearch::new(k, seed)
                .search(&mut env, &Scenario::FastestUnlimited)
                .best
                .unwrap()
                .speed
        };
        let spread = |k: usize| {
            let xs: Vec<f64> = (0..20).map(|s| best_at(k, s)).collect();
            let lo = xs.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            let hi = xs.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            hi - lo
        };
        assert!(spread(2) > spread(30), "spread(2)={} spread(30)={}", spread(2), spread(30));
    }
}
