//! End-to-end experiment harness.
//!
//! Every figure in the paper reports some slice of the same experiment:
//! *run a searcher under a scenario, then train on what it picked, and
//! break total time/cost into profiling + training*. This module is that
//! experiment, plus the ground-truth optimum ("Opt" in Figs 13, 14, 18)
//! computed directly from the performance model with zero profiling cost.

use crate::deployment::{Deployment, SearchSpace};
use crate::observation::SearchOutcome;
use crate::scenario::Scenario;
use crate::search::Searcher;
use crate::system::engine::{DeploymentEngine, DeploymentPlan};
use crate::system::interfaces::{CloudInterface, MlPlatformInterface, SimMlPlatform};
use crate::system::profiler::{Profiler, ProfilerConfig};
use mlcd_cloudsim::{InstanceType, Money, SimCloud, SimDuration};
use mlcd_perfmodel::{NoiseModel, ThroughputModel, TrainingJob};
use serde::Serialize;

/// The ground-truth optimum for a scenario (no profiling spend at all).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Optimum {
    /// The truly best deployment.
    pub deployment: Deployment,
    /// Its true speed.
    pub speed: f64,
    /// Training time on it.
    pub train_time: SimDuration,
    /// Training cost on it.
    pub train_cost: Money,
}

/// One completed experiment.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentOutcome {
    /// Searcher that produced it.
    pub searcher: &'static str,
    /// The scenario it ran under.
    pub scenario: Scenario,
    /// The plan, if a deployment was found.
    pub plan: Option<DeploymentPlan>,
    /// Full search outcome (trace, stop reason, profiling totals).
    pub search: SearchOutcome,
    /// Wall-clock of the training run (zero if nothing was trained).
    pub train_time: SimDuration,
    /// Billed cost of the training run.
    pub train_cost: Money,
    /// Profiling + training wall-clock.
    pub total_time: SimDuration,
    /// Profiling + training spend.
    pub total_cost: Money,
    /// Whether the completed run satisfied the scenario's constraints.
    pub satisfied: bool,
}

impl ExperimentOutcome {
    /// Convenience: hours of total time.
    pub fn total_hours(&self) -> f64 {
        self.total_time.as_hours()
    }
}

/// Configurable experiment runner. Seeds make runs reproducible; the
/// replication benchmarks vary the seed.
pub struct ExperimentRunner {
    seed: u64,
    truth: ThroughputModel,
    noise: NoiseModel,
    types: Option<Vec<InstanceType>>,
    max_nodes: u32,
    profiler_cfg: ProfilerConfig,
}

impl ExperimentRunner {
    /// Runner with default physics and noise.
    pub fn new(seed: u64) -> Self {
        ExperimentRunner {
            seed,
            truth: ThroughputModel::default(),
            noise: NoiseModel::default(),
            types: None,
            max_nodes: 50,
            profiler_cfg: ProfilerConfig::default(),
        }
    }

    /// Restrict the search space to specific types (as the paper's
    /// per-figure setups do).
    pub fn with_types(mut self, types: Vec<InstanceType>) -> Self {
        self.types = Some(types);
        self
    }

    /// Cap the scale-out dimension.
    pub fn with_max_nodes(mut self, n: u32) -> Self {
        self.max_nodes = n;
        self
    }

    /// Override the observation-noise model.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Override the ground-truth physics (for what-if experiments).
    pub fn with_truth(mut self, truth: ThroughputModel) -> Self {
        self.truth = truth;
        self
    }

    /// Override the profiler configuration (measurement windows, stability
    /// thresholds, spot-market probing).
    pub fn with_profiler(mut self, cfg: ProfilerConfig) -> Self {
        self.profiler_cfg = cfg;
        self
    }

    /// The search space this runner would use for a job.
    pub fn space(&self, job: &TrainingJob) -> SearchSpace {
        match &self.types {
            Some(t) => SearchSpace::new(t, self.max_nodes, job, &self.truth),
            None => {
                let all: Vec<InstanceType> = InstanceType::all().collect();
                SearchSpace::new(&all, self.max_nodes, job, &self.truth)
            }
        }
    }

    /// Run one full experiment: search, then train on the pick.
    pub fn run(
        &self,
        searcher: &dyn Searcher,
        job: &TrainingJob,
        scenario: &Scenario,
    ) -> ExperimentOutcome {
        self.run_with_sink(searcher, job, scenario, &mut crate::search::NullSink)
    }

    /// Run one full experiment and collect the searcher's structured
    /// trace alongside the outcome. Tracing never perturbs the search —
    /// the outcome is bit-identical to [`ExperimentRunner::run`].
    pub fn run_traced(
        &self,
        searcher: &dyn Searcher,
        job: &TrainingJob,
        scenario: &Scenario,
    ) -> (ExperimentOutcome, crate::search::SearchTrace) {
        let mut trace = crate::search::SearchTrace::default();
        let outcome = self.run_with_sink(searcher, job, scenario, &mut trace);
        (outcome, trace)
    }

    /// Run one full experiment, narrating the search into `sink`.
    pub fn run_with_sink(
        &self,
        searcher: &dyn Searcher,
        job: &TrainingJob,
        scenario: &Scenario,
        sink: &mut dyn crate::search::TraceSink,
    ) -> ExperimentOutcome {
        let mut profiler = self.profiler_for(job);
        let outcome = searcher.search_traced(&mut profiler, scenario, sink);
        self.complete(profiler, outcome, searcher.name(), scenario)
    }

    /// The profiling environment one search session runs against: a fresh
    /// simulated cloud and ML platform, seeded from this runner — each
    /// session owns its own ledger. Callers that need to interpose on the
    /// environment (the service layer's shared probe cache wraps it) can
    /// drive the search themselves and then hand the profiler back to
    /// [`ExperimentRunner::complete`]; [`ExperimentRunner::run_with_sink`]
    /// is exactly that sequence with no wrapper.
    pub fn profiler_for(&self, job: &TrainingJob) -> Profiler<SimCloud, SimMlPlatform> {
        self.profiler_with_space(job, self.space(job))
    }

    /// [`profiler_for`](Self::profiler_for) with a caller-supplied search
    /// space. The space must equal what [`space`](Self::space) would build
    /// for `job` — the point is to let callers that already hold such a
    /// space (the service layer's shared grid cache) skip re-enumerating
    /// the candidate grid per session.
    pub fn profiler_with_space(
        &self,
        job: &TrainingJob,
        space: SearchSpace,
    ) -> Profiler<SimCloud, SimMlPlatform> {
        let mut cloud = SimCloud::new(self.seed);
        // Keep the provider's quotas at least as large as the space we are
        // searching (the paper's Fig 19 simulates beyond the default 50-GPU
        // quota for the ZeRO-scale models, as do we).
        if self.max_nodes > 50 {
            cloud.set_quotas(self.max_nodes.max(100), self.max_nodes);
        }
        self.profiler_on_cloud(job, space, cloud)
    }

    /// [`profiler_with_space`](Self::profiler_with_space) against a
    /// caller-supplied cloud instead of a fresh one. This is the seam the
    /// fleet layers use: N sessions each get their own profiler (own
    /// platform RNG, own search space) over *one* shared provider, so they
    /// contend for its capacity ledger and bill to its clock.
    pub fn profiler_on_cloud<C: CloudInterface>(
        &self,
        job: &TrainingJob,
        space: SearchSpace,
        cloud: C,
    ) -> Profiler<C, SimMlPlatform> {
        let platform = SimMlPlatform::new(job.clone(), self.truth, self.noise, self.seed ^ 0x4D4C);
        Profiler::new(cloud, platform, space, self.profiler_cfg.clone())
    }

    /// Finish an experiment whose search already ran against a profiler
    /// from [`ExperimentRunner::profiler_for`] (or any cloud/platform pair
    /// wired through [`ExperimentRunner::profiler_on_cloud`] — the fleet's
    /// tenant clouds complete through here too): train on the pick and
    /// assemble the time/cost breakdown.
    pub fn complete<C: CloudInterface, P: MlPlatformInterface>(
        &self,
        profiler: Profiler<C, P>,
        outcome: SearchOutcome,
        searcher_name: &'static str,
        scenario: &Scenario,
    ) -> ExperimentOutcome {
        let plan = outcome
            .best
            .map(|obs| DeploymentPlan { deployment: obs.deployment, observed_speed: obs.speed });

        let (cloud, platform) = profiler.into_parts();
        let (train_time, train_cost) = match &plan {
            Some(p) => {
                let engine = DeploymentEngine::new(NullSearcher);
                match engine.execute(&cloud, &platform, p) {
                    Ok(r) => (r.train_time, r.train_cost),
                    Err(_) => (SimDuration::ZERO, Money::ZERO),
                }
            }
            None => (SimDuration::ZERO, Money::ZERO),
        };

        let total_time = outcome.profile_time + train_time;
        let total_cost = outcome.profile_cost + train_cost;
        ExperimentOutcome {
            searcher: searcher_name,
            scenario: *scenario,
            plan,
            satisfied: plan.is_some() && scenario.satisfied_by(total_time, total_cost),
            search: outcome,
            train_time,
            train_cost,
            total_time,
            total_cost,
        }
    }

    /// Run the Paleo analytical baseline: no profiling at all — pick the
    /// deployment Paleo's model predicts is best for the scenario, then
    /// train on it at the *true* speed. Mispredictions at scale become
    /// real overruns (the paper's Fig 13).
    pub fn run_paleo(&self, job: &TrainingJob, scenario: &Scenario) -> ExperimentOutcome {
        use mlcd_perfmodel::PaleoEstimator;
        let space = self.space(job);
        let paleo = PaleoEstimator::default();
        let samples = job.total_samples();

        let mut pick: Option<(Deployment, f64 /*predicted speed*/)> = None;
        for d in space.candidates() {
            let Ok(pred_speed) = paleo.predicted_throughput(job, d.itype, d.n) else { continue };
            let pred_time = Scenario::training_time(samples, pred_speed);
            let pred_cost = d.cost_for(pred_time);
            let feasible = match scenario {
                Scenario::FastestUnlimited => true,
                Scenario::CheapestWithDeadline(tmax) => pred_time.as_secs() <= tmax.as_secs(),
                Scenario::FastestWithBudget(cmax) => pred_cost.dollars() <= cmax.dollars(),
            };
            if !feasible {
                continue;
            }
            let better = match (&pick, scenario) {
                (None, _) => true,
                (Some((prev, prev_speed)), Scenario::CheapestWithDeadline(_)) => {
                    let prev_cost = prev.cost_for(Scenario::training_time(samples, *prev_speed));
                    pred_cost.dollars() < prev_cost.dollars()
                }
                (Some((_, prev_speed)), _) => pred_speed > *prev_speed,
            };
            if better {
                pick = Some((*d, pred_speed));
            }
        }

        let cloud = SimCloud::new(self.seed);
        let platform = SimMlPlatform::new(job.clone(), self.truth, self.noise, self.seed ^ 0x50);
        let plan = pick.map(|(d, pred)| DeploymentPlan { deployment: d, observed_speed: pred });
        let (train_time, train_cost) = match &plan {
            Some(p) => {
                let engine = DeploymentEngine::new(NullSearcher);
                match engine.execute(&cloud, &platform, p) {
                    Ok(r) => (r.train_time, r.train_cost),
                    Err(_) => (SimDuration::ZERO, Money::ZERO),
                }
            }
            None => (SimDuration::ZERO, Money::ZERO),
        };
        ExperimentOutcome {
            searcher: "Paleo",
            scenario: *scenario,
            satisfied: plan.is_some() && scenario.satisfied_by(train_time, train_cost),
            plan,
            search: SearchOutcome::empty(crate::observation::StopReason::Converged),
            train_time,
            train_cost,
            total_time: train_time,
            total_cost: train_cost,
        }
    }

    /// Ground-truth optimum under the scenario: the deployment an oracle
    /// with free, perfect knowledge would pick. "Opt" in the figures.
    pub fn optimum(&self, job: &TrainingJob, scenario: &Scenario) -> Option<Optimum> {
        let space = self.space(job);
        let mut best: Option<Optimum> = None;
        for d in space.candidates() {
            let Ok(speed) = self.truth.throughput(job, d.itype, d.n) else { continue };
            let train_time = Scenario::training_time(job.total_samples(), speed);
            let train_cost = d.cost_for(train_time);
            let feasible = match scenario {
                Scenario::FastestUnlimited => true,
                Scenario::CheapestWithDeadline(tmax) => train_time.as_secs() <= tmax.as_secs(),
                Scenario::FastestWithBudget(cmax) => train_cost.dollars() <= cmax.dollars(),
            };
            if !feasible {
                continue;
            }
            let better = match (&best, scenario) {
                (None, _) => true,
                (Some(b), Scenario::CheapestWithDeadline(_)) => {
                    train_cost.dollars() < b.train_cost.dollars()
                }
                (Some(b), _) => speed > b.speed,
            };
            if better {
                best = Some(Optimum { deployment: *d, speed, train_time, train_cost });
            }
        }
        best
    }
}

/// Placeholder searcher for engine construction in `run` (the engine's
/// search phase is not used there — only `execute`).
struct NullSearcher;
impl Searcher for NullSearcher {
    fn name(&self) -> &'static str {
        "null"
    }
    fn search(
        &self,
        _env: &mut dyn crate::env::ProfilingEnv,
        _scenario: &Scenario,
    ) -> SearchOutcome {
        SearchOutcome::empty(crate::observation::StopReason::NothingFeasible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{ConvBo, HeterBo};

    fn runner() -> ExperimentRunner {
        ExperimentRunner::new(7)
            .with_types(vec![
                InstanceType::C5Xlarge,
                InstanceType::C54xlarge,
                InstanceType::P2Xlarge,
            ])
            .with_noise(NoiseModel::noiseless())
    }

    #[test]
    fn heterbo_budget_experiment_stays_under_budget() {
        let job = TrainingJob::resnet_cifar10();
        let scenario = Scenario::FastestWithBudget(Money::from_dollars(100.0));
        let out = runner().run(&HeterBo::seeded(1), &job, &scenario);
        assert!(out.plan.is_some());
        assert!(
            out.satisfied,
            "HeterBO must satisfy the budget: total {} (profile {} + train {})",
            out.total_cost, out.search.profile_cost, out.train_cost
        );
    }

    #[test]
    fn breakdown_adds_up() {
        let job = TrainingJob::resnet_cifar10();
        let out = runner().run(&HeterBo::seeded(2), &job, &Scenario::FastestUnlimited);
        assert!(
            (out.total_cost.dollars()
                - (out.search.profile_cost.dollars() + out.train_cost.dollars()))
            .abs()
                < 1e-9
        );
        assert!(
            (out.total_time.as_secs()
                - (out.search.profile_time.as_secs() + out.train_time.as_secs()))
            .abs()
                < 1e-6
        );
    }

    #[test]
    fn optimum_unconstrained_is_fastest() {
        let r = runner();
        let job = TrainingJob::resnet_cifar10();
        let opt = r.optimum(&job, &Scenario::FastestUnlimited).unwrap();
        // Nothing in the space is truly faster.
        for d in r.space(&job).candidates() {
            if let Ok(s) = r.truth.throughput(&job, d.itype, d.n) {
                assert!(s <= opt.speed + 1e-9, "{d} at {s} beats 'optimum' {}", opt.speed);
            }
        }
    }

    #[test]
    fn optimum_with_deadline_is_cheapest_feasible() {
        let r = runner();
        let job = TrainingJob::resnet_cifar10();
        let deadline = SimDuration::from_hours(6.0);
        let opt = r.optimum(&job, &Scenario::CheapestWithDeadline(deadline)).unwrap();
        assert!(opt.train_time.as_hours() <= 6.0);
        for d in r.space(&job).candidates() {
            if let Ok(s) = r.truth.throughput(&job, d.itype, d.n) {
                let t = Scenario::training_time(job.total_samples(), s);
                let c = d.cost_for(t);
                if t.as_secs() <= deadline.as_secs() {
                    assert!(c.dollars() >= opt.train_cost.dollars() - 1e-9);
                }
            }
        }
    }

    #[test]
    fn impossible_budget_has_no_optimum() {
        let r = runner();
        let job = TrainingJob::resnet_cifar10();
        assert!(r.optimum(&job, &Scenario::FastestWithBudget(Money::from_dollars(0.01))).is_none());
    }

    #[test]
    fn paleo_runner_pays_no_profiling_and_reports_actuals() {
        let r = runner();
        let job = TrainingJob::resnet_cifar10();
        let out = r.run_paleo(&job, &Scenario::FastestUnlimited);
        assert_eq!(out.searcher, "Paleo");
        assert_eq!(out.search.n_probes(), 0);
        assert_eq!(out.search.profile_cost.dollars(), 0.0);
        let plan = out.plan.expect("Paleo always picks something feasible");
        // The plan's observed_speed is Paleo's *prediction*; the train
        // time reflects the true speed — for ResNet/CIFAR they differ
        // (that's the whole point of Fig 13).
        let truth = ThroughputModel::default()
            .throughput(&job, plan.deployment.itype, plan.deployment.n)
            .unwrap();
        assert!(plan.observed_speed >= truth * 0.99, "Paleo must be optimistic");
        assert!(out.train_time.as_hours() > 0.0);
        assert_eq!(out.total_cost, out.train_cost);
    }

    #[test]
    fn paleo_respects_scenario_in_its_own_beliefs() {
        let r = runner();
        let job = TrainingJob::resnet_cifar10();
        let budget = Money::from_dollars(60.0);
        let out = r.run_paleo(&job, &Scenario::FastestWithBudget(budget));
        let plan = out.plan.expect("some prediction fits $60");
        // Paleo *believed* the pick fits the budget (prediction-based)…
        let pred_time = Scenario::training_time(job.total_samples(), plan.observed_speed);
        let pred_cost = plan.deployment.cost_for(pred_time);
        assert!(pred_cost.dollars() <= budget.dollars() * 1.001);
        // …whether reality agrees is exactly what `satisfied` records.
    }

    #[test]
    fn profiler_config_passthrough() {
        use crate::system::ProfilerConfig;
        let job = TrainingJob::resnet_cifar10();
        // With an absurdly low CV threshold every probe gets extended, so
        // probes run measurably longer than with the permissive default.
        let strict = ExperimentRunner::new(4)
            .with_types(vec![InstanceType::C54xlarge])
            .with_profiler(ProfilerConfig { cv_threshold: 1e-9, ..Default::default() });
        let loose = ExperimentRunner::new(4)
            .with_types(vec![InstanceType::C54xlarge])
            .with_profiler(ProfilerConfig { cv_threshold: 1e9, ..Default::default() });
        let a =
            strict.run(&crate::search::RandomSearch::new(4, 4), &job, &Scenario::FastestUnlimited);
        let b =
            loose.run(&crate::search::RandomSearch::new(4, 4), &job, &Scenario::FastestUnlimited);
        // The extension lengthens only the measurement segment (setup and
        // warm-up are fixed), so expect a modest but clear increase.
        assert!(
            a.search.profile_time.as_secs() > b.search.profile_time.as_secs() * 1.1,
            "extensions should lengthen probes: {:.1} vs {:.1} min",
            a.search.profile_time.as_mins(),
            b.search.profile_time.as_mins()
        );
    }

    #[test]
    fn traced_run_matches_untraced_and_collects_events() {
        let job = TrainingJob::resnet_cifar10();
        let scenario = Scenario::FastestUnlimited;
        let plain = runner().run(&HeterBo::seeded(5), &job, &scenario);
        let (traced, trace) = runner().run_traced(&HeterBo::seeded(5), &job, &scenario);
        assert_eq!(plain.total_cost, traced.total_cost);
        assert_eq!(plain.search.steps.len(), traced.search.steps.len());
        assert_eq!(trace.probes().count(), traced.search.steps.len());
        assert_eq!(trace.stop_reason(), Some(traced.search.stop_reason));
    }

    #[test]
    fn experiments_reproducible_per_seed() {
        let job = TrainingJob::resnet_cifar10();
        let run = || {
            runner().run(&ConvBo::seeded(3), &job, &Scenario::FastestUnlimited).total_cost.dollars()
        };
        assert_eq!(run(), run());
    }
}
