//! `mlcd` — command-line front end for the MLCD deployment system.
//!
//! Local commands:
//!
//! ```text
//! mlcd catalog                                   # the instance catalog
//! mlcd jobs                                      # preset training jobs
//! mlcd curves --job char-rnn --type c5.4xlarge   # ground-truth speed curve
//! mlcd optimum --job resnet-cifar10 --budget 100 # the oracle's answer
//! mlcd search --job resnet-cifar10 --budget 100 \
//!      --searcher heterbo --seed 7 [--types c5.xlarge,c5.4xlarge] [--json] \
//!      [--trace trace.jsonl]
//! ```
//!
//! Client commands against a running `mlcd-serve` (newline-delimited JSON
//! over TCP; `--addr` defaults to `127.0.0.1:7070`):
//!
//! ```text
//! mlcd submit --job resnet-cifar10 --budget 150 [--priority 3]
//! mlcd status [--id 1]
//! mlcd result --id 1 [--wait] [--json]
//! mlcd watch  --id 1
//! mlcd cancel --id 1
//! mlcd stats
//! mlcd shutdown
//! ```

use mlcd::prelude::*;
use mlcd::search::{searcher_by_name, SEARCHER_NAMES};
use serde_json::{json, Value};
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else { usage("missing command") };
    let opts = match Opts::parse(rest) {
        Ok(o) => o,
        Err(e) => usage(&e),
    };
    match cmd.as_str() {
        "catalog" => catalog(),
        "jobs" => jobs(),
        "curves" => curves(&opts),
        "optimum" => optimum(&opts),
        "search" => search(&opts),
        "submit" => submit(&opts),
        "status" => status(&opts),
        "result" => result(&opts),
        "watch" => watch(&opts),
        "cancel" => cancel(&opts),
        "stats" => stats(&opts),
        "shutdown" => shutdown(&opts),
        "help" | "--help" | "-h" => usage(""),
        other => usage(&format!("unknown command `{other}`")),
    }
}

/// Parsed command-line options.
#[derive(Default)]
struct Opts {
    job: Option<String>,
    itype: Option<String>,
    types: Option<Vec<String>>,
    budget: Option<f64>,
    deadline: Option<f64>,
    searcher: Option<String>,
    seed: u64,
    max_nodes: u32,
    json: bool,
    trace: Option<String>,
    addr: String,
    id: Option<u64>,
    wait: bool,
    priority: u8,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut o = Opts {
            seed: 2020,
            max_nodes: 50,
            addr: "127.0.0.1:7070".to_string(),
            ..Default::default()
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut take = || -> Result<&String, String> {
                it.next().ok_or_else(|| format!("missing value after {a}"))
            };
            match a.as_str() {
                "--job" => o.job = Some(take()?.clone()),
                "--type" => o.itype = Some(take()?.clone()),
                "--types" => {
                    o.types = Some(take()?.split(',').map(|s| s.trim().to_string()).collect())
                }
                "--budget" => {
                    o.budget = Some(take()?.parse().map_err(|_| "--budget takes dollars")?)
                }
                "--deadline" => {
                    o.deadline = Some(take()?.parse().map_err(|_| "--deadline takes hours")?)
                }
                "--searcher" => o.searcher = Some(take()?.to_lowercase()),
                "--seed" => o.seed = take()?.parse().map_err(|_| "--seed takes an integer")?,
                "--max-nodes" => {
                    o.max_nodes = take()?.parse().map_err(|_| "--max-nodes takes an integer")?
                }
                "--json" => o.json = true,
                "--trace" => o.trace = Some(take()?.clone()),
                "--addr" => o.addr = take()?.clone(),
                "--id" => o.id = Some(take()?.parse().map_err(|_| "--id takes a session id")?),
                "--wait" => o.wait = true,
                "--priority" => {
                    o.priority = take()?.parse().map_err(|_| "--priority takes 0–255")?
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(o)
    }

    fn scenario(&self) -> Result<Scenario, String> {
        match (self.deadline, self.budget) {
            (Some(_), Some(_)) => Err("give --deadline or --budget, not both".into()),
            (Some(h), None) => Ok(Scenario::CheapestWithDeadline(SimDuration::from_hours(h))),
            (None, Some(d)) => Ok(Scenario::FastestWithBudget(Money::from_dollars(d))),
            (None, None) => Ok(Scenario::FastestUnlimited),
        }
    }

    fn training_job(&self) -> Result<TrainingJob, String> {
        let name = self.job.as_deref().ok_or("--job is required")?;
        job_by_name(name)
            .ok_or_else(|| format!("unknown job `{name}`; run `mlcd jobs` for the presets"))
    }

    fn runner(&self) -> Result<ExperimentRunner, String> {
        let mut r = ExperimentRunner::new(self.seed).with_max_nodes(self.max_nodes);
        if let Some(ts) = &self.types {
            let mut parsed = Vec::new();
            for t in ts {
                parsed
                    .push(InstanceType::from_name(t).ok_or_else(|| format!("unknown type `{t}`"))?);
            }
            r = r.with_types(parsed);
        }
        Ok(r)
    }
}

/// Preset jobs by CLI name (the canonical mapping lives with the models).
fn job_by_name(name: &str) -> Option<TrainingJob> {
    TrainingJob::by_name(name)
}

fn catalog() {
    println!(
        "{:<14} {:>6} {:>8} {:>6} {:>9} {:>9} {:>8}",
        "type", "vcpus", "mem GiB", "gpus", "net Gbps", "$/hour", "vs c5.xl"
    );
    for t in InstanceType::all() {
        let s = t.spec();
        println!(
            "{:<14} {:>6} {:>8.1} {:>6} {:>9.2} {:>9.3} {:>7.2}×",
            s.name,
            s.vcpus,
            s.memory_gib,
            s.accelerators.map_or(0, |(_, c)| c),
            s.network_gbps,
            s.hourly_usd,
            t.normalized_cost()
        );
    }
}

fn jobs() {
    println!("{:<20} {:>12} {:>14} {:>10} platform/topology", "name", "params", "samples", "batch");
    for name in TrainingJob::preset_names() {
        let j = job_by_name(name).expect("preset exists");
        println!(
            "{:<20} {:>12} {:>14} {:>10} {} / {}",
            name,
            format_params(j.model.params),
            j.total_samples() as u64,
            j.global_batch,
            j.platform,
            j.topology
        );
    }
}

fn format_params(p: f64) -> String {
    if p >= 1e9 {
        format!("{:.1}B", p / 1e9)
    } else {
        format!("{:.1}M", p / 1e6)
    }
}

fn curves(opts: &Opts) {
    let job = opts.training_job().unwrap_or_else(|e| usage(&e));
    let tname = opts.itype.as_deref().unwrap_or_else(|| usage("--type is required for curves"));
    let itype =
        InstanceType::from_name(tname).unwrap_or_else(|| usage(&format!("unknown type `{tname}`")));
    let truth = ThroughputModel::default();
    println!("# {} on {} — true training speed", job.model.name, itype);
    println!("{:>5} {:>12} {:>12} {:>12}", "n", "samples/s", "train h", "train $");
    for n in 1..=opts.max_nodes {
        match truth.throughput(&job, itype, n) {
            Ok(s) => {
                let h = job.total_samples() / s / 3600.0;
                println!("{n:>5} {s:>12.1} {h:>12.2} {:>12.2}", h * itype.hourly_usd() * n as f64);
            }
            Err(e) => println!("{n:>5} {:>12}", format!("({e})")),
        }
    }
}

fn optimum(opts: &Opts) {
    let job = opts.training_job().unwrap_or_else(|e| usage(&e));
    let scenario = opts.scenario().unwrap_or_else(|e| usage(&e));
    let runner = opts.runner().unwrap_or_else(|e| usage(&e));
    match runner.optimum(&job, &scenario) {
        Some(opt) => {
            println!("scenario : {scenario}");
            println!("optimum  : {}", opt.deployment);
            println!("speed    : {:.1} samples/s", opt.speed);
            println!(
                "training : {:.2} h, ${:.2}",
                opt.train_time.as_hours(),
                opt.train_cost.dollars()
            );
        }
        None => {
            eprintln!("no deployment can satisfy {scenario}");
            std::process::exit(1);
        }
    }
}

fn search(opts: &Opts) {
    let job = opts.training_job().unwrap_or_else(|e| usage(&e));
    let scenario = opts.scenario().unwrap_or_else(|e| usage(&e));
    let runner = opts.runner().unwrap_or_else(|e| usage(&e));
    let seed = opts.seed;
    let name = opts.searcher.as_deref().unwrap_or("heterbo");
    let searcher = match name {
        "paleo" => None,
        other => match searcher_by_name(other, seed) {
            Some(s) => Some(s),
            None => {
                usage(&format!("unknown searcher `{other}` ({}, paleo)", SEARCHER_NAMES.join(", ")))
            }
        },
    };
    let outcome = match searcher {
        Some(s) => match &opts.trace {
            Some(path) => {
                let (outcome, trace) = runner.run_traced(s.as_ref(), &job, &scenario);
                let jsonl = trace.to_jsonl().unwrap_or_else(|e| {
                    eprintln!("error: cannot serialise trace: {e}");
                    std::process::exit(2);
                });
                if let Err(e) = std::fs::write(path, jsonl) {
                    eprintln!("error: cannot write trace to `{path}`: {e}");
                    std::process::exit(2);
                }
                outcome
            }
            None => runner.run(s.as_ref(), &job, &scenario),
        },
        None => {
            if opts.trace.is_some() {
                usage("--trace is not supported with --searcher paleo (it runs no search loop)");
            }
            runner.run_paleo(&job, &scenario)
        }
    };

    if opts.json {
        println!("{}", serde_json::to_string_pretty(&outcome).expect("serialisable"));
        return;
    }
    println!("job      : {} on {}", job.model.name, job.dataset.name);
    println!("scenario : {scenario}");
    println!("searcher : {}", outcome.searcher);
    println!();
    for step in &outcome.search.steps {
        println!(
            "  probe {:>2}: {:>16} → {:>8.1} samples/s  ({:>7}, {:>5.1} min)",
            step.index,
            step.observation.deployment.to_string(),
            step.observation.speed,
            step.observation.profile_cost.to_string(),
            step.observation.profile_time.as_mins()
        );
    }
    println!();
    match outcome.plan {
        Some(p) => println!("deployment : {}", p.deployment),
        None => println!("deployment : none found"),
    }
    println!(
        "profiling  : {:>8.2} h  ${:>9.2}",
        outcome.search.profile_time.as_hours(),
        outcome.search.profile_cost.dollars()
    );
    println!(
        "training   : {:>8.2} h  ${:>9.2}",
        outcome.train_time.as_hours(),
        outcome.train_cost.dollars()
    );
    println!(
        "total      : {:>8.2} h  ${:>9.2}",
        outcome.total_hours(),
        outcome.total_cost.dollars()
    );
    println!("compliant  : {}", if outcome.satisfied { "yes" } else { "NO" });
    if !outcome.satisfied {
        std::process::exit(1);
    }
}

// ---- service client commands (NDJSON over TCP) ----------------------
//
// These speak the mlcd-service wire protocol by hand — requests are
// externally tagged JSON values, one per line — so the CLI stays free of
// a dependency on the service crate (which depends on this one).

/// One request out, one response line back.
fn roundtrip(addr: &str, request: &Value) -> Result<(BufReader<TcpStream>, Value), String> {
    let stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot reach mlcd-serve at {addr}: {e}"))?;
    let mut reader =
        BufReader::new(stream.try_clone().map_err(|e| format!("connection error: {e}"))?);
    let mut out = stream;
    let line = serde_json::to_string(request).map_err(|e| format!("bad request: {e}"))?;
    out.write_all(line.as_bytes())
        .and_then(|()| out.write_all(b"\n"))
        .and_then(|()| out.flush())
        .map_err(|e| format!("send failed: {e}"))?;
    let first = read_response(&mut reader)?;
    Ok((reader, first))
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Result<Value, String> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => Err("server closed the connection".to_string()),
        Ok(_) => serde_json::from_str(line.trim()).map_err(|e| format!("bad response: {e}")),
        Err(e) => Err(format!("receive failed: {e}")),
    }
}

fn client_fail(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

/// Print the status rows of a `StatusReport` response.
fn print_status_rows(report: &Value) {
    let Some(rows) = report.get("sessions").and_then(Value::as_array) else {
        client_fail("malformed status report");
    };
    println!(
        "{:>4} {:<20} {:<10} {:>6} {:>4} {:<10}",
        "id", "job", "searcher", "seed", "pri", "state"
    );
    for row in rows {
        println!(
            "{:>4} {:<20} {:<10} {:>6} {:>4} {:<10}",
            row["id"].as_u64().unwrap_or(0),
            row["job"].as_str().unwrap_or("?"),
            row["searcher"].as_str().unwrap_or("?"),
            row["seed"].as_u64().unwrap_or(0),
            row["priority"].as_u64().unwrap_or(0),
            row["state"].as_str().unwrap_or("?"),
        );
    }
}

fn submit(opts: &Opts) {
    let job = opts.job.as_deref().unwrap_or_else(|| usage("--job is required for submit"));
    // Optional constraint fields ride as null — the server treats null
    // and absent identically and fills the defaults.
    let spec = json!({
        "job": job,
        "searcher": opts.searcher.as_deref().unwrap_or("heterbo"),
        "seed": opts.seed,
        "priority": opts.priority,
        "max_nodes": opts.max_nodes,
        "budget": opts.budget,
        "deadline_hours": opts.deadline,
        "types": opts.types.clone(),
    });
    let (_, resp) =
        roundtrip(&opts.addr, &json!({"Submit": spec})).unwrap_or_else(|e| client_fail(&e));
    if let Some(id) = resp.get("Submitted").and_then(|s| s["id"].as_u64()) {
        println!("submitted session {id}");
    } else if let Some(rej) = resp.get("Rejected") {
        let reason = rej["reason"].as_str().unwrap_or("rejected");
        if rej["queue_full"].as_bool().unwrap_or(false) {
            client_fail(&format!("{reason} — retry later"));
        }
        client_fail(reason);
    } else {
        client_fail(&format!("unexpected response: {resp:?}"));
    }
}

fn status(opts: &Opts) {
    let id = match opts.id {
        Some(id) => json!(id),
        None => Value::Null,
    };
    let (_, resp) =
        roundtrip(&opts.addr, &json!({"Status": {"id": id}})).unwrap_or_else(|e| client_fail(&e));
    match resp.get("StatusReport") {
        Some(report) => print_status_rows(report),
        None => client_fail(resp["Error"]["message"].as_str().unwrap_or("unexpected response")),
    }
}

fn result(opts: &Opts) {
    let id = opts.id.unwrap_or_else(|| usage("--id is required for result"));
    let (_, resp) = roundtrip(&opts.addr, &json!({"Result": {"id": id, "wait": opts.wait}}))
        .unwrap_or_else(|e| client_fail(&e));
    if let Some(ready) = resp.get("ResultReady") {
        let r = &ready["result"];
        if opts.json {
            println!("{}", serde_json::to_string_pretty(r).expect("re-render fetched JSON"));
            return;
        }
        println!("session    : {id}");
        println!("searcher   : {}", r["searcher"].as_str().unwrap_or("?"));
        if r["plan"].is_null() {
            println!("deployment : none found");
        } else {
            println!(
                "deployment : {}×{}",
                r["plan"]["deployment"]["n"].as_u64().unwrap_or(0),
                r["plan"]["deployment"]["itype"].as_str().unwrap_or("?")
            );
        }
        println!(
            "profiling  : {:>8.2} h  ${:>9.2}",
            r["search"]["profile_time"].as_f64().unwrap_or(0.0) / 3600.0,
            r["search"]["profile_cost"].as_f64().unwrap_or(0.0)
        );
        println!(
            "training   : {:>8.2} h  ${:>9.2}",
            r["train_time"].as_f64().unwrap_or(0.0) / 3600.0,
            r["train_cost"].as_f64().unwrap_or(0.0)
        );
        println!(
            "total      : {:>8.2} h  ${:>9.2}",
            r["total_time"].as_f64().unwrap_or(0.0) / 3600.0,
            r["total_cost"].as_f64().unwrap_or(0.0)
        );
        println!(
            "compliant  : {}",
            if r["satisfied"].as_bool().unwrap_or(false) { "yes" } else { "NO" }
        );
    } else if let Some(nr) = resp.get("NotReady") {
        println!("session {id} is {} (use --wait to block)", nr["state"].as_str().unwrap_or("?"));
    } else {
        client_fail(resp["Error"]["message"].as_str().unwrap_or("unexpected response"));
    }
}

fn watch(opts: &Opts) {
    let id = opts.id.unwrap_or_else(|| usage("--id is required for watch"));
    let (mut reader, resp) =
        roundtrip(&opts.addr, &json!({"Watch": {"id": id}})).unwrap_or_else(|e| client_fail(&e));
    if resp.get("Watching").is_none() {
        client_fail(resp["Error"]["message"].as_str().unwrap_or("unexpected response"));
    }
    // Write through an explicit handle: `watch | head` closes the pipe
    // mid-stream, and that must end the tail quietly, not panic.
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    loop {
        let value = read_response(&mut reader).unwrap_or_else(|e| client_fail(&e));
        let done = value.get("WatchEnd").is_some();
        let line = if let Some(end) = value.get("WatchEnd") {
            format!("# session {id} ended: {}", end["state"].as_str().unwrap_or("?"))
        } else {
            // Everything between Watching and WatchEnd is a raw trace event.
            serde_json::to_string(&value).expect("re-render fetched JSON")
        };
        if writeln!(out, "{line}").is_err() || done {
            return;
        }
    }
}

fn cancel(opts: &Opts) {
    let id = opts.id.unwrap_or_else(|| usage("--id is required for cancel"));
    let (_, resp) =
        roundtrip(&opts.addr, &json!({"Cancel": {"id": id}})).unwrap_or_else(|e| client_fail(&e));
    if resp.get("Cancelling").is_some() {
        println!("cancellation requested for session {id}");
    } else {
        client_fail(resp["Error"]["message"].as_str().unwrap_or("unexpected response"));
    }
}

fn stats(opts: &Opts) {
    let (_, resp) = roundtrip(&opts.addr, &json!("Stats")).unwrap_or_else(|e| client_fail(&e));
    let Some(s) = resp.get("Stats").map(|v| &v["stats"]) else {
        client_fail(resp["Error"]["message"].as_str().unwrap_or("unexpected response"));
    };
    if opts.json {
        println!("{}", serde_json::to_string(s).expect("re-render fetched JSON"));
        return;
    }
    let n = |key: &str| s[key].as_u64().unwrap_or(0);
    println!("live sessions   {}", n("live_sessions"));
    println!("queued          {}", n("queued"));
    println!("evicted         {}", n("evicted"));
    println!("cache hits      {}", n("cache_hits"));
    println!("cache misses    {}", n("cache_misses"));
    println!("grid hits       {}", n("grid_hits"));
    println!("grid misses     {}", n("grid_misses"));
    let gc = s["group_commit"].as_bool().unwrap_or(false);
    println!("group commit    {}", if gc { "on" } else { "off" });
    if gc {
        println!("journal groups  {}", n("journal_groups"));
        println!("journal records {}", n("journal_records"));
        println!("checkpoints     {}", n("journal_checkpoints"));
    }
    if let Some(rows) = s["sim_events"].as_array() {
        println!("sim events      kind                 sched    disp  cancel");
        for row in rows {
            let c = |key: &str| row[key].as_u64().unwrap_or(0);
            println!(
                "                {:<18} {:>7} {:>7} {:>7}",
                row["kind"].as_str().unwrap_or("?"),
                c("scheduled"),
                c("dispatched"),
                c("cancelled")
            );
        }
    }
    let f = &s["fleet"];
    if !matches!(f, Value::Null) {
        let c = |key: &str| f[key].as_u64().unwrap_or(0);
        println!("fleet policy    {}", f["policy"].as_str().unwrap_or("?"));
        println!("  admitted      {}", c("admitted"));
        println!("  deferred      {}", c("deferred"));
        println!("  denied        {}", c("denied"));
        println!("  preempted     {}", c("preempted"));
        println!("  queue depth   {}", c("queue_depth"));
    }
}

fn shutdown(opts: &Opts) {
    let (_, resp) = roundtrip(&opts.addr, &json!("Shutdown")).unwrap_or_else(|e| client_fail(&e));
    if resp.get("ShuttingDown").is_some() || matches!(&resp, Value::Str(s) if s == "ShuttingDown") {
        println!("server at {} is shutting down", opts.addr);
    } else {
        client_fail(&format!("unexpected response: {resp:?}"));
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!(
        "mlcd — MLaaS training Cloud Deployment\n\
         \n\
         USAGE:\n\
         \u{20}  mlcd catalog\n\
         \u{20}  mlcd jobs\n\
         \u{20}  mlcd curves  --job <name> --type <instance> [--max-nodes N]\n\
         \u{20}  mlcd optimum --job <name> [--budget $ | --deadline h] [--types a,b] [--max-nodes N]\n\
         \u{20}  mlcd search  --job <name> [--budget $ | --deadline h] [--searcher S]\n\
         \u{20}               [--seed N] [--types a,b] [--max-nodes N] [--json]\n\
         \u{20}               [--trace FILE]   # structured search events as JSON Lines\n\
         \n\
         \u{20}  # against a running `mlcd-serve` (--addr HOST:PORT, default 127.0.0.1:7070):\n\
         \u{20}  mlcd submit  --job <name> [--budget $ | --deadline h] [--searcher S]\n\
         \u{20}               [--seed N] [--priority P] [--types a,b] [--max-nodes N]\n\
         \u{20}  mlcd status  [--id N]\n\
         \u{20}  mlcd result  --id N [--wait] [--json]\n\
         \u{20}  mlcd watch   --id N\n\
         \u{20}  mlcd cancel  --id N\n\
         \u{20}  mlcd stats   [--json]\n\
         \u{20}  mlcd shutdown\n\
         \n\
         jobs: {}\n\
         searchers: {} (default heterbo; `search` also accepts paleo)",
        TrainingJob::preset_names().join(", "),
        SEARCHER_NAMES.join(", ")
    );
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Opts::parse(&owned)
    }

    #[test]
    fn parses_full_flag_set() {
        let o = parse(&[
            "--job",
            "char-rnn",
            "--budget",
            "120",
            "--searcher",
            "HeterBO",
            "--seed",
            "7",
            "--types",
            "c5.xlarge, c5.4xlarge",
            "--max-nodes",
            "30",
            "--json",
            "--trace",
            "out.jsonl",
        ])
        .unwrap();
        assert_eq!(o.job.as_deref(), Some("char-rnn"));
        assert_eq!(o.budget, Some(120.0));
        assert_eq!(o.searcher.as_deref(), Some("heterbo"));
        assert_eq!(o.seed, 7);
        assert_eq!(o.max_nodes, 30);
        assert!(o.json);
        assert_eq!(o.trace.as_deref(), Some("out.jsonl"));
        assert_eq!(o.types, Some(vec!["c5.xlarge".to_string(), "c5.4xlarge".to_string()]));
    }

    #[test]
    fn rejects_bad_flags_and_values() {
        assert!(parse(&["--unknown"]).is_err());
        assert!(parse(&["--budget"]).is_err());
        assert!(parse(&["--budget", "lots"]).is_err());
        assert!(parse(&["--seed", "x"]).is_err());
    }

    #[test]
    fn scenario_mapping() {
        let o = parse(&["--budget", "50"]).unwrap();
        assert!(matches!(o.scenario(), Ok(Scenario::FastestWithBudget(_))));
        let o = parse(&["--deadline", "6"]).unwrap();
        assert!(matches!(o.scenario(), Ok(Scenario::CheapestWithDeadline(_))));
        let o = parse(&[]).unwrap();
        assert!(matches!(o.scenario(), Ok(Scenario::FastestUnlimited)));
        let o = parse(&["--budget", "50", "--deadline", "6"]).unwrap();
        assert!(o.scenario().is_err());
    }

    #[test]
    fn every_preset_job_resolves() {
        for name in TrainingJob::preset_names() {
            assert!(job_by_name(name).is_some(), "{name}");
        }
        assert!(job_by_name("nope").is_none());
    }

    #[test]
    fn parses_client_flags() {
        let o =
            parse(&["--addr", "127.0.0.1:9999", "--id", "4", "--wait", "--priority", "7"]).unwrap();
        assert_eq!(o.addr, "127.0.0.1:9999");
        assert_eq!(o.id, Some(4));
        assert!(o.wait);
        assert_eq!(o.priority, 7);
        let o = parse(&[]).unwrap();
        assert_eq!(o.addr, "127.0.0.1:7070");
        assert_eq!(o.priority, 0);
        assert!(parse(&["--id", "x"]).is_err());
        assert!(parse(&["--priority", "300"]).is_err());
    }

    #[test]
    fn runner_rejects_unknown_type() {
        let o = parse(&["--types", "m5.humongous"]).unwrap();
        assert!(o.runner().is_err());
    }

    #[test]
    fn params_formatting() {
        assert_eq!(format_params(6.4e6), "6.4M");
        assert_eq!(format_params(20e9), "20.0B");
    }
}
