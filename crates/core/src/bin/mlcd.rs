//! `mlcd` — command-line front end for the MLCD deployment system.
//!
//! ```text
//! mlcd catalog                                   # the instance catalog
//! mlcd jobs                                      # preset training jobs
//! mlcd curves --job char-rnn --type c5.4xlarge   # ground-truth speed curve
//! mlcd optimum --job resnet-cifar10 --budget 100 # the oracle's answer
//! mlcd search --job resnet-cifar10 --budget 100 \
//!      --searcher heterbo --seed 7 [--types c5.xlarge,c5.4xlarge] [--json] \
//!      [--trace trace.jsonl]
//! ```

use mlcd::prelude::*;
use mlcd::search::{CherryPick, ConvBo};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else { usage("missing command") };
    let opts = match Opts::parse(rest) {
        Ok(o) => o,
        Err(e) => usage(&e),
    };
    match cmd.as_str() {
        "catalog" => catalog(),
        "jobs" => jobs(),
        "curves" => curves(&opts),
        "optimum" => optimum(&opts),
        "search" => search(&opts),
        "help" | "--help" | "-h" => usage(""),
        other => usage(&format!("unknown command `{other}`")),
    }
}

/// Parsed command-line options.
#[derive(Default)]
struct Opts {
    job: Option<String>,
    itype: Option<String>,
    types: Option<Vec<String>>,
    budget: Option<f64>,
    deadline: Option<f64>,
    searcher: Option<String>,
    seed: u64,
    max_nodes: u32,
    json: bool,
    trace: Option<String>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut o = Opts { seed: 2020, max_nodes: 50, ..Default::default() };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut take = || -> Result<&String, String> {
                it.next().ok_or_else(|| format!("missing value after {a}"))
            };
            match a.as_str() {
                "--job" => o.job = Some(take()?.clone()),
                "--type" => o.itype = Some(take()?.clone()),
                "--types" => {
                    o.types = Some(take()?.split(',').map(|s| s.trim().to_string()).collect())
                }
                "--budget" => {
                    o.budget = Some(take()?.parse().map_err(|_| "--budget takes dollars")?)
                }
                "--deadline" => {
                    o.deadline = Some(take()?.parse().map_err(|_| "--deadline takes hours")?)
                }
                "--searcher" => o.searcher = Some(take()?.to_lowercase()),
                "--seed" => o.seed = take()?.parse().map_err(|_| "--seed takes an integer")?,
                "--max-nodes" => {
                    o.max_nodes = take()?.parse().map_err(|_| "--max-nodes takes an integer")?
                }
                "--json" => o.json = true,
                "--trace" => o.trace = Some(take()?.clone()),
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(o)
    }

    fn scenario(&self) -> Result<Scenario, String> {
        match (self.deadline, self.budget) {
            (Some(_), Some(_)) => Err("give --deadline or --budget, not both".into()),
            (Some(h), None) => Ok(Scenario::CheapestWithDeadline(SimDuration::from_hours(h))),
            (None, Some(d)) => Ok(Scenario::FastestWithBudget(Money::from_dollars(d))),
            (None, None) => Ok(Scenario::FastestUnlimited),
        }
    }

    fn training_job(&self) -> Result<TrainingJob, String> {
        let name = self.job.as_deref().ok_or("--job is required")?;
        job_by_name(name)
            .ok_or_else(|| format!("unknown job `{name}`; run `mlcd jobs` for the presets"))
    }

    fn runner(&self) -> Result<ExperimentRunner, String> {
        let mut r = ExperimentRunner::new(self.seed).with_max_nodes(self.max_nodes);
        if let Some(ts) = &self.types {
            let mut parsed = Vec::new();
            for t in ts {
                parsed
                    .push(InstanceType::from_name(t).ok_or_else(|| format!("unknown type `{t}`"))?);
            }
            r = r.with_types(parsed);
        }
        Ok(r)
    }
}

/// Preset jobs by CLI name.
fn job_by_name(name: &str) -> Option<TrainingJob> {
    Some(match name {
        "resnet-cifar10" => TrainingJob::resnet_cifar10(),
        "alexnet-cifar10" => TrainingJob::alexnet_cifar10(),
        "char-rnn" => TrainingJob::char_rnn(),
        "inception-imagenet" => TrainingJob::inception_imagenet(),
        "bert-tf" => TrainingJob::bert_tensorflow(),
        "bert-mxnet" => TrainingJob::bert_mxnet(),
        "zero-8b" => TrainingJob::zero_8b(),
        "zero-20b" => TrainingJob::zero_20b(),
        _ => return None,
    })
}

const JOB_NAMES: [&str; 8] = [
    "resnet-cifar10",
    "alexnet-cifar10",
    "char-rnn",
    "inception-imagenet",
    "bert-tf",
    "bert-mxnet",
    "zero-8b",
    "zero-20b",
];

fn catalog() {
    println!(
        "{:<14} {:>6} {:>8} {:>6} {:>9} {:>9} {:>8}",
        "type", "vcpus", "mem GiB", "gpus", "net Gbps", "$/hour", "vs c5.xl"
    );
    for t in InstanceType::all() {
        let s = t.spec();
        println!(
            "{:<14} {:>6} {:>8.1} {:>6} {:>9.2} {:>9.3} {:>7.2}×",
            s.name,
            s.vcpus,
            s.memory_gib,
            s.accelerators.map_or(0, |(_, c)| c),
            s.network_gbps,
            s.hourly_usd,
            t.normalized_cost()
        );
    }
}

fn jobs() {
    println!("{:<20} {:>12} {:>14} {:>10} platform/topology", "name", "params", "samples", "batch");
    for name in JOB_NAMES {
        let j = job_by_name(name).expect("preset exists");
        println!(
            "{:<20} {:>12} {:>14} {:>10} {} / {}",
            name,
            format_params(j.model.params),
            j.total_samples() as u64,
            j.global_batch,
            j.platform,
            j.topology
        );
    }
}

fn format_params(p: f64) -> String {
    if p >= 1e9 {
        format!("{:.1}B", p / 1e9)
    } else {
        format!("{:.1}M", p / 1e6)
    }
}

fn curves(opts: &Opts) {
    let job = opts.training_job().unwrap_or_else(|e| usage(&e));
    let tname = opts.itype.as_deref().unwrap_or_else(|| usage("--type is required for curves"));
    let itype =
        InstanceType::from_name(tname).unwrap_or_else(|| usage(&format!("unknown type `{tname}`")));
    let truth = ThroughputModel::default();
    println!("# {} on {} — true training speed", job.model.name, itype);
    println!("{:>5} {:>12} {:>12} {:>12}", "n", "samples/s", "train h", "train $");
    for n in 1..=opts.max_nodes {
        match truth.throughput(&job, itype, n) {
            Ok(s) => {
                let h = job.total_samples() / s / 3600.0;
                println!("{n:>5} {s:>12.1} {h:>12.2} {:>12.2}", h * itype.hourly_usd() * n as f64);
            }
            Err(e) => println!("{n:>5} {:>12}", format!("({e})")),
        }
    }
}

fn optimum(opts: &Opts) {
    let job = opts.training_job().unwrap_or_else(|e| usage(&e));
    let scenario = opts.scenario().unwrap_or_else(|e| usage(&e));
    let runner = opts.runner().unwrap_or_else(|e| usage(&e));
    match runner.optimum(&job, &scenario) {
        Some(opt) => {
            println!("scenario : {scenario}");
            println!("optimum  : {}", opt.deployment);
            println!("speed    : {:.1} samples/s", opt.speed);
            println!(
                "training : {:.2} h, ${:.2}",
                opt.train_time.as_hours(),
                opt.train_cost.dollars()
            );
        }
        None => {
            eprintln!("no deployment can satisfy {scenario}");
            std::process::exit(1);
        }
    }
}

fn search(opts: &Opts) {
    let job = opts.training_job().unwrap_or_else(|e| usage(&e));
    let scenario = opts.scenario().unwrap_or_else(|e| usage(&e));
    let runner = opts.runner().unwrap_or_else(|e| usage(&e));
    let seed = opts.seed;
    let name = opts.searcher.as_deref().unwrap_or("heterbo");
    let searcher: Option<Box<dyn Searcher>> = match name {
        "heterbo" => Some(Box::new(HeterBo::seeded(seed))),
        "heterbo-parallel" => Some(Box::new(HeterBo::with_parallel_init(seed))),
        "convbo" => Some(Box::new(ConvBo::seeded(seed))),
        "cherrypick" => Some(Box::new(CherryPick::seeded(seed))),
        "random" => Some(Box::new(RandomSearch::new(9, seed))),
        "exhaustive" => Some(Box::new(ExhaustiveSearch::strided(10))),
        "paleo" => None,
        other => usage(&format!(
            "unknown searcher `{other}` (heterbo, heterbo-parallel, convbo, cherrypick, random, exhaustive, paleo)"
        )),
    };
    let outcome = match searcher {
        Some(s) => match &opts.trace {
            Some(path) => {
                let (outcome, trace) = runner.run_traced(s.as_ref(), &job, &scenario);
                if let Err(e) = std::fs::write(path, trace.to_jsonl()) {
                    eprintln!("error: cannot write trace to `{path}`: {e}");
                    std::process::exit(2);
                }
                outcome
            }
            None => runner.run(s.as_ref(), &job, &scenario),
        },
        None => {
            if opts.trace.is_some() {
                usage("--trace is not supported with --searcher paleo (it runs no search loop)");
            }
            runner.run_paleo(&job, &scenario)
        }
    };

    if opts.json {
        println!("{}", serde_json::to_string_pretty(&outcome).expect("serialisable"));
        return;
    }
    println!("job      : {} on {}", job.model.name, job.dataset.name);
    println!("scenario : {scenario}");
    println!("searcher : {}", outcome.searcher);
    println!();
    for step in &outcome.search.steps {
        println!(
            "  probe {:>2}: {:>16} → {:>8.1} samples/s  ({:>7}, {:>5.1} min)",
            step.index,
            step.observation.deployment.to_string(),
            step.observation.speed,
            step.observation.profile_cost.to_string(),
            step.observation.profile_time.as_mins()
        );
    }
    println!();
    match outcome.plan {
        Some(p) => println!("deployment : {}", p.deployment),
        None => println!("deployment : none found"),
    }
    println!(
        "profiling  : {:>8.2} h  ${:>9.2}",
        outcome.search.profile_time.as_hours(),
        outcome.search.profile_cost.dollars()
    );
    println!(
        "training   : {:>8.2} h  ${:>9.2}",
        outcome.train_time.as_hours(),
        outcome.train_cost.dollars()
    );
    println!(
        "total      : {:>8.2} h  ${:>9.2}",
        outcome.total_hours(),
        outcome.total_cost.dollars()
    );
    println!("compliant  : {}", if outcome.satisfied { "yes" } else { "NO" });
    if !outcome.satisfied {
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!(
        "mlcd — MLaaS training Cloud Deployment\n\
         \n\
         USAGE:\n\
         \u{20}  mlcd catalog\n\
         \u{20}  mlcd jobs\n\
         \u{20}  mlcd curves  --job <name> --type <instance> [--max-nodes N]\n\
         \u{20}  mlcd optimum --job <name> [--budget $ | --deadline h] [--types a,b] [--max-nodes N]\n\
         \u{20}  mlcd search  --job <name> [--budget $ | --deadline h] [--searcher S]\n\
         \u{20}               [--seed N] [--types a,b] [--max-nodes N] [--json]\n\
         \u{20}               [--trace FILE]   # structured search events as JSON Lines\n\
         \n\
         jobs: {}\n\
         searchers: heterbo (default), heterbo-parallel, convbo, cherrypick, random, exhaustive, paleo",
        JOB_NAMES.join(", ")
    );
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Opts::parse(&owned)
    }

    #[test]
    fn parses_full_flag_set() {
        let o = parse(&[
            "--job",
            "char-rnn",
            "--budget",
            "120",
            "--searcher",
            "HeterBO",
            "--seed",
            "7",
            "--types",
            "c5.xlarge, c5.4xlarge",
            "--max-nodes",
            "30",
            "--json",
            "--trace",
            "out.jsonl",
        ])
        .unwrap();
        assert_eq!(o.job.as_deref(), Some("char-rnn"));
        assert_eq!(o.budget, Some(120.0));
        assert_eq!(o.searcher.as_deref(), Some("heterbo"));
        assert_eq!(o.seed, 7);
        assert_eq!(o.max_nodes, 30);
        assert!(o.json);
        assert_eq!(o.trace.as_deref(), Some("out.jsonl"));
        assert_eq!(o.types, Some(vec!["c5.xlarge".to_string(), "c5.4xlarge".to_string()]));
    }

    #[test]
    fn rejects_bad_flags_and_values() {
        assert!(parse(&["--unknown"]).is_err());
        assert!(parse(&["--budget"]).is_err());
        assert!(parse(&["--budget", "lots"]).is_err());
        assert!(parse(&["--seed", "x"]).is_err());
    }

    #[test]
    fn scenario_mapping() {
        let o = parse(&["--budget", "50"]).unwrap();
        assert!(matches!(o.scenario(), Ok(Scenario::FastestWithBudget(_))));
        let o = parse(&["--deadline", "6"]).unwrap();
        assert!(matches!(o.scenario(), Ok(Scenario::CheapestWithDeadline(_))));
        let o = parse(&[]).unwrap();
        assert!(matches!(o.scenario(), Ok(Scenario::FastestUnlimited)));
        let o = parse(&["--budget", "50", "--deadline", "6"]).unwrap();
        assert!(o.scenario().is_err());
    }

    #[test]
    fn every_preset_job_resolves() {
        for name in JOB_NAMES {
            assert!(job_by_name(name).is_some(), "{name}");
        }
        assert!(job_by_name("nope").is_none());
    }

    #[test]
    fn runner_rejects_unknown_type() {
        let o = parse(&["--types", "m5.humongous"]).unwrap();
        assert!(o.runner().is_err());
    }

    #[test]
    fn params_formatting() {
        assert_eq!(format_params(6.4e6), "6.4M");
        assert_eq!(format_params(20e9), "20.0B");
    }
}
