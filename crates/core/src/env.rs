//! The environment a searcher probes.
//!
//! Searchers never talk to the cloud directly; they see a
//! [`ProfilingEnv`]: a candidate space, a way to profile one deployment
//! (paying its heterogeneous time/money cost), and running totals of what
//! profiling has consumed. The production implementation is the MLCD
//! [`crate::system::Profiler`] running against the simulated cloud; tests
//! and benchmarks can use [`SyntheticEnv`] with any response surface.

use crate::deployment::{Deployment, SearchSpace};
use crate::observation::Observation;
use mlcd_cloudsim::{Money, SimDuration, SimTime};

/// Why a probe failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// The deployment is not in the search space.
    NotInSpace(Deployment),
    /// The spot market revoked the probe's cluster mid-measurement. The
    /// interrupted attempt is billed; callers (the Profiler itself, for
    /// its one on-demand retry) dispatch on this variant rather than on
    /// the error text.
    SpotRevoked {
        /// The deployment whose probe was interrupted.
        deployment: Deployment,
        /// Virtual time at which the revocation hit.
        at: SimTime,
    },
    /// The cloud could not run it (quota, OOM discovered at run time…).
    Failed(String),
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::NotInSpace(d) => write!(f, "deployment {d} not in search space"),
            ProfileError::SpotRevoked { deployment, at } => write!(
                f,
                "probe of {deployment} revoked by the spot market at {:.0} s",
                at.as_secs()
            ),
            ProfileError::Failed(msg) => write!(f, "profiling failed: {msg}"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// The searcher-facing environment.
pub trait ProfilingEnv {
    /// Candidate deployments.
    fn space(&self) -> &SearchSpace;

    /// Total samples the final training run must process (to project
    /// training time/cost from an observed speed).
    fn total_samples(&self) -> f64;

    /// Expected time and money one probe of `d` will consume, *before*
    /// running it. This is the heterogeneous-cost signal HeterBO feeds
    /// into its acquisition (paper eqs. 7–8).
    fn quote(&self, d: &Deployment) -> (SimDuration, Money);

    /// Run one profiling probe, paying its cost.
    fn profile(&mut self, d: &Deployment) -> Result<Observation, ProfileError>;

    /// Run several probes as one *batch*. The money cost is the sum of the
    /// individual probes, but environments that can provision clusters
    /// concurrently (the simulated cloud can; so can EC2) charge only the
    /// *slowest* probe's duration against the wall-clock. The default
    /// implementation is sequential.
    fn profile_batch(&mut self, ds: &[Deployment]) -> Vec<Result<Observation, ProfileError>> {
        ds.iter().map(|d| self.profile(d)).collect()
    }

    /// Profiling wall-clock consumed so far.
    fn elapsed(&self) -> SimDuration;

    /// Profiling money spent so far.
    fn spent(&self) -> Money;
}

/// The paper's profiling-duration rule (§V-A): "each profiling takes 10
/// minutes (including initial setup and warm-up); we add an extra 1 minute
/// for every increase of 3 extra nodes".
pub fn paper_probe_duration(n: u32) -> SimDuration {
    assert!(n >= 1, "paper_probe_duration: empty cluster");
    SimDuration::from_mins(10.0) + SimDuration::from_mins(((n - 1) / 3) as f64)
}

/// Rate at which model + optimizer state is distributed and initialised
/// across a fresh cluster during warm-up, bytes/second. ~100 MB/s —
/// object-store download, graph building and the first compiled steps.
const STATE_WARMUP_BYTES_PER_SEC: f64 = 1e8;

/// Model-dependent extra warm-up on top of [`paper_probe_duration`]:
/// distributing and initialising a 320 GB ZeRO-20B state takes ~27
/// minutes; an AlexNet is instant. This is the second axis of the paper's
/// *heterogeneous* profiling cost (the first being cluster price), and is
/// what makes probing large-model deployments so much more expensive
/// (Fig 19).
pub fn model_warmup(model_state_bytes: f64) -> SimDuration {
    assert!(model_state_bytes >= 0.0, "model_warmup: negative state size");
    SimDuration::from_secs(model_state_bytes / STATE_WARMUP_BYTES_PER_SEC)
}

/// A deterministic in-memory environment over an arbitrary response
/// surface. Probes cost exactly the paper's quoted duration. Useful for
/// unit tests, property tests and searcher benchmarks.
pub struct SyntheticEnv<F: Fn(&Deployment) -> f64> {
    space: SearchSpace,
    total_samples: f64,
    speed_fn: F,
    elapsed: SimDuration,
    spent: Money,
    probes: usize,
}

impl<F: Fn(&Deployment) -> f64> SyntheticEnv<F> {
    /// Build over a space and true-speed function.
    pub fn new(space: SearchSpace, total_samples: f64, speed_fn: F) -> Self {
        SyntheticEnv {
            space,
            total_samples,
            speed_fn,
            elapsed: SimDuration::ZERO,
            spent: Money::ZERO,
            probes: 0,
        }
    }

    /// Number of probes served.
    pub fn n_probes(&self) -> usize {
        self.probes
    }

    /// The true speed at a deployment (tests use this to identify the true
    /// optimum).
    pub fn true_speed(&self, d: &Deployment) -> f64 {
        (self.speed_fn)(d)
    }
}

impl<F: Fn(&Deployment) -> f64> ProfilingEnv for SyntheticEnv<F> {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn total_samples(&self) -> f64 {
        self.total_samples
    }

    fn quote(&self, d: &Deployment) -> (SimDuration, Money) {
        let t = paper_probe_duration(d.n);
        (t, d.cost_for(t))
    }

    fn profile(&mut self, d: &Deployment) -> Result<Observation, ProfileError> {
        if !self.space.contains(d) {
            return Err(ProfileError::NotInSpace(*d));
        }
        let speed = (self.speed_fn)(d);
        assert!(
            speed.is_finite() && speed > 0.0,
            "SyntheticEnv: response surface must be positive-finite everywhere \
             (got {speed} at {d}); clamp your surface, e.g. `.max(1.0)`"
        );
        let (t, c) = self.quote(d);
        self.elapsed += t;
        self.spent += c;
        self.probes += 1;
        Ok(Observation { deployment: *d, speed, profile_time: t, profile_cost: c })
    }

    fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    fn spent(&self) -> Money {
        self.spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcd_cloudsim::InstanceType;
    use mlcd_perfmodel::{ThroughputModel, TrainingJob};

    fn tiny_space() -> SearchSpace {
        SearchSpace::new(
            &[InstanceType::C5Xlarge, InstanceType::P2Xlarge],
            10,
            &TrainingJob::resnet_cifar10(),
            &ThroughputModel::default(),
        )
    }

    #[test]
    fn paper_probe_duration_rule() {
        assert_eq!(paper_probe_duration(1).as_mins(), 10.0);
        assert_eq!(paper_probe_duration(3).as_mins(), 10.0);
        assert_eq!(paper_probe_duration(4).as_mins(), 11.0);
        assert_eq!(paper_probe_duration(7).as_mins(), 12.0);
        assert_eq!(paper_probe_duration(49).as_mins(), 26.0);
    }

    #[test]
    fn quotes_reflect_heterogeneous_cost() {
        let env = SyntheticEnv::new(tiny_space(), 1e6, |d| d.n as f64);
        let (_, cheap) = env.quote(&Deployment::new(InstanceType::C5Xlarge, 1));
        let (_, pricey) = env.quote(&Deployment::new(InstanceType::P2Xlarge, 10));
        // 10 GPU nodes for 13 min vs 1 CPU node for 10 min: ~69× the money.
        assert!(pricey.dollars() > cheap.dollars() * 50.0);
    }

    #[test]
    fn profiling_accumulates_cost() {
        let mut env = SyntheticEnv::new(tiny_space(), 1e6, |d| 100.0 * d.n as f64);
        let d = Deployment::new(InstanceType::C5Xlarge, 4);
        let obs = env.profile(&d).unwrap();
        assert_eq!(obs.speed, 400.0);
        assert_eq!(env.elapsed().as_mins(), 11.0);
        assert!((env.spent().dollars() - 0.17 * 4.0 * (11.0 / 60.0)).abs() < 1e-12);
        env.profile(&d).unwrap();
        assert_eq!(env.n_probes(), 2);
        assert_eq!(env.elapsed().as_mins(), 22.0);
    }

    #[test]
    fn out_of_space_probe_rejected() {
        let mut env = SyntheticEnv::new(tiny_space(), 1e6, |_| 1.0);
        let err = env.profile(&Deployment::new(InstanceType::C5nXlarge, 1)).unwrap_err();
        assert!(matches!(err, ProfileError::NotInSpace(_)));
        assert_eq!(env.elapsed(), SimDuration::ZERO);
    }
}
