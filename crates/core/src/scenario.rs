//! The paper's three deployment scenarios (§III-A) and the budget/deadline
//! arithmetic shared by searchers.
//!
//! * **Scenario-1** — finish as fast as possible, unlimited budget.
//! * **Scenario-2** — finish before a deadline at the lowest cost.
//! * **Scenario-3** — finish as fast as possible within a budget.
//!
//! Deadlines and budgets are *totals*: profiling spend counts against them
//! (this is the crux of the paper — ConvBO/CherryPick overrun precisely
//! because their profiling phase is oblivious to it).

use crate::deployment::Deployment;
use mlcd_cloudsim::{Money, SimDuration};
use serde::{Deserialize, Serialize};

/// Base headroom factor applied to projected training time/cost wherever a
/// projection feeds a *hard* constraint (reserve checks, TEI, feasibility
/// filters). It covers what projections cannot see: per-second billing
/// round-ups and residual observation noise in the measured speed.
pub const PROJECTION_MARGIN: f64 = 1.05;

/// Size-aware headroom: the final deployment also pays cluster
/// provisioning (≈1 minute per 3 nodes plus base), which grows with the
/// cluster while the projected training time does not — at 100 nodes it is
/// a double-digit percentage of a short run. Adds ~0.15 % per node on top
/// of [`PROJECTION_MARGIN`].
pub fn projection_margin(n: u32) -> f64 {
    PROJECTION_MARGIN + 0.0015 * n as f64
}

/// A user's deployment requirement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scenario {
    /// Scenario-1: minimise training time; money is no object.
    FastestUnlimited,
    /// Scenario-2: minimise total cost subject to finishing (profiling +
    /// training) within the deadline.
    CheapestWithDeadline(SimDuration),
    /// Scenario-3: minimise training time subject to total cost
    /// (profiling + training) within the budget.
    FastestWithBudget(Money),
}

/// What the GP-modelled objective is optimising, derived from the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Objective {
    /// Maximise training speed (Scenarios 1 and 3).
    MaxSpeed,
    /// Minimise total deployment cost (Scenario 2).
    MinCost,
}

impl Scenario {
    /// The optimisation objective this scenario induces.
    pub fn objective(&self) -> Objective {
        match self {
            Scenario::FastestUnlimited | Scenario::FastestWithBudget(_) => Objective::MaxSpeed,
            Scenario::CheapestWithDeadline(_) => Objective::MinCost,
        }
    }

    /// Budget cap, if any.
    pub fn budget(&self) -> Option<Money> {
        match self {
            Scenario::FastestWithBudget(b) => Some(*b),
            _ => None,
        }
    }

    /// Deadline, if any.
    pub fn deadline(&self) -> Option<SimDuration> {
        match self {
            Scenario::CheapestWithDeadline(t) => Some(*t),
            _ => None,
        }
    }

    /// Whether a *finished run* (total time, total cost) satisfies the
    /// scenario's constraints.
    pub fn satisfied_by(&self, total_time: SimDuration, total_cost: Money) -> bool {
        match self {
            Scenario::FastestUnlimited => true,
            Scenario::CheapestWithDeadline(t) => total_time.as_secs() <= t.as_secs() * (1.0 + 1e-9),
            Scenario::FastestWithBudget(b) => total_cost.dollars() <= b.dollars() * (1.0 + 1e-9),
        }
    }

    /// Training time a deployment implies, given total job samples and an
    /// (observed or predicted) speed in samples/s.
    pub fn training_time(total_samples: f64, speed: f64) -> SimDuration {
        assert!(speed > 0.0, "training_time: non-positive speed");
        SimDuration::from_secs(total_samples / speed)
    }

    /// Training cost a deployment implies at a given speed.
    pub fn training_cost(d: &Deployment, total_samples: f64, speed: f64) -> Money {
        d.cost_for(Self::training_time(total_samples, speed))
    }

    /// The scalar utility this scenario assigns to finishing deployment
    /// `d` at `speed` — higher is better. Used to rank observed
    /// deployments when picking the incumbent.
    pub fn utility(&self, d: &Deployment, total_samples: f64, speed: f64) -> f64 {
        match self.objective() {
            Objective::MaxSpeed => speed,
            Objective::MinCost => -Self::training_cost(d, total_samples, speed).dollars(),
        }
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scenario::FastestUnlimited => write!(f, "fastest (unlimited budget)"),
            Scenario::CheapestWithDeadline(t) => {
                write!(f, "cheapest within {:.1} h", t.as_hours())
            }
            Scenario::FastestWithBudget(b) => write!(f, "fastest within {b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcd_cloudsim::InstanceType;

    #[test]
    fn objectives_per_scenario() {
        assert_eq!(Scenario::FastestUnlimited.objective(), Objective::MaxSpeed);
        assert_eq!(
            Scenario::CheapestWithDeadline(SimDuration::from_hours(6.0)).objective(),
            Objective::MinCost
        );
        assert_eq!(
            Scenario::FastestWithBudget(Money::from_dollars(100.0)).objective(),
            Objective::MaxSpeed
        );
    }

    #[test]
    fn constraint_satisfaction() {
        let s2 = Scenario::CheapestWithDeadline(SimDuration::from_hours(6.0));
        assert!(s2.satisfied_by(SimDuration::from_hours(5.9), Money::from_dollars(1e6)));
        assert!(!s2.satisfied_by(SimDuration::from_hours(6.1), Money::ZERO));
        let s3 = Scenario::FastestWithBudget(Money::from_dollars(100.0));
        assert!(s3.satisfied_by(SimDuration::from_hours(999.0), Money::from_dollars(100.0)));
        assert!(!s3.satisfied_by(SimDuration::ZERO, Money::from_dollars(100.01)));
        assert!(Scenario::FastestUnlimited
            .satisfied_by(SimDuration::from_hours(1e6), Money::from_dollars(1e9)));
    }

    #[test]
    fn training_time_and_cost() {
        let d = Deployment::new(InstanceType::C5Xlarge, 10); // $1.7/h
        let t = Scenario::training_time(36_000.0, 10.0); // 3600 s
        assert_eq!(t.as_hours(), 1.0);
        let c = Scenario::training_cost(&d, 36_000.0, 10.0);
        assert!((c.dollars() - 1.7).abs() < 1e-12);
    }

    #[test]
    fn utility_ranks_correctly() {
        let fast = Scenario::FastestUnlimited;
        let d_small = Deployment::new(InstanceType::C5Xlarge, 1);
        let d_big = Deployment::new(InstanceType::C5Xlarge, 20);
        // MaxSpeed: higher speed wins regardless of cost.
        assert!(fast.utility(&d_big, 1e6, 200.0) > fast.utility(&d_small, 1e6, 100.0));
        // MinCost: the cheaper finisher wins even if slower.
        let cheap = Scenario::CheapestWithDeadline(SimDuration::from_hours(100.0));
        let u_small = cheap.utility(&d_small, 1e6, 100.0); // 10000 s × $0.17/h
        let u_big = cheap.utility(&d_big, 1e6, 200.0); // 5000 s × $3.4/h
        assert!(u_small > u_big);
    }

    #[test]
    fn display_strings() {
        assert_eq!(
            Scenario::FastestWithBudget(Money::from_dollars(100.0)).to_string(),
            "fastest within $100.00"
        );
        assert_eq!(
            Scenario::CheapestWithDeadline(SimDuration::from_hours(6.0)).to_string(),
            "cheapest within 6.0 h"
        );
    }
}
