//! Searcher × scenario × seed evaluation grids.
//!
//! Examples, tests and the figure reproductions all run the same kind of
//! sweep: a set of searchers, over one or more scenarios, across several
//! seeds, with each cell one end-to-end [`ExperimentRunner`] run. This
//! module expresses that sweep declaratively ([`EvalGrid`]), fans the
//! cells out across threads, and aggregates the outcomes per
//! (searcher, scenario) pair into a rendered summary table
//! ([`EvalReport`]).
//!
//! Every cell derives all of its randomness from its own seed — the
//! runner, the simulated cloud, the platform noise and the searcher are
//! constructed inside the cell — so the grid is embarrassingly parallel
//! and its results are bit-identical whether it runs on one thread or
//! many (`RAYON_NUM_THREADS=1` forces sequential execution when
//! bisecting).

use crate::experiment::{ExperimentOutcome, ExperimentRunner};
use crate::scenario::Scenario;
use crate::search::{SearchTrace, Searcher};
use mlcd_linalg::stats::quartiles;
use mlcd_perfmodel::TrainingJob;
use rayon::prelude::*;
use serde::Serialize;

/// Builds a fresh searcher for a cell's seed.
type SearcherFactory = Box<dyn Fn(u64) -> Box<dyn Searcher> + Sync>;

/// Builds the runner (space, noise, physics, profiler config) for a seed.
type RunnerFactory = Box<dyn Fn(u64) -> ExperimentRunner + Sync>;

/// One completed cell of the grid.
#[derive(Debug, Clone, Serialize)]
pub struct EvalCell {
    /// Grid label of the searcher that ran (distinct configurations of
    /// the same searcher can carry distinct labels).
    pub searcher: String,
    /// The scenario the cell ran under.
    pub scenario: Scenario,
    /// The cell's seed.
    pub seed: u64,
    /// The full experiment outcome.
    pub outcome: ExperimentOutcome,
    /// The structured search trace, when the grid ran with
    /// [`EvalGrid::capture_traces`]. `None` otherwise — tracing is off by
    /// default to keep large sweeps lean.
    pub trace: Option<SearchTrace>,
}

/// Aggregate over one (searcher, scenario) pair of the grid.
#[derive(Debug, Clone, Serialize)]
pub struct EvalSummary {
    /// Searcher label.
    pub searcher: String,
    /// Scenario.
    pub scenario: Scenario,
    /// Number of seeds run.
    pub runs: usize,
    /// How many runs satisfied the scenario's constraints.
    pub satisfied: usize,
    /// Median total (profiling + training) hours across seeds.
    pub median_total_h: f64,
    /// Mean total hours across seeds.
    pub mean_total_h: f64,
    /// Mean total dollars across seeds.
    pub mean_total_usd: f64,
    /// Mean profiling hours across seeds.
    pub mean_profile_h: f64,
    /// Mean profiling dollars across seeds.
    pub mean_profile_usd: f64,
    /// Mean number of probes across seeds.
    pub mean_probes: f64,
}

/// The completed grid: every cell, in deterministic grid order
/// (scenario-major, then seed, then searcher).
#[derive(Debug, Clone, Serialize)]
pub struct EvalReport {
    /// All cells.
    pub cells: Vec<EvalCell>,
}

impl EvalReport {
    /// Cells of one (searcher, scenario) pair, in seed order.
    pub fn cells_for(&self, searcher: &str, scenario: &Scenario) -> Vec<&EvalCell> {
        self.cells.iter().filter(|c| c.searcher == searcher && c.scenario == *scenario).collect()
    }

    /// Aggregates per (searcher, scenario) pair, in first-seen order.
    pub fn summaries(&self) -> Vec<EvalSummary> {
        let mut keys: Vec<(String, Scenario)> = Vec::new();
        for c in &self.cells {
            if !keys.iter().any(|(s, sc)| *s == c.searcher && *sc == c.scenario) {
                keys.push((c.searcher.clone(), c.scenario));
            }
        }
        keys.into_iter()
            .map(|(searcher, scenario)| {
                let cells = self.cells_for(&searcher, &scenario);
                let totals: Vec<f64> = cells.iter().map(|c| c.outcome.total_hours()).collect();
                let n = cells.len() as f64;
                let mean =
                    |f: &dyn Fn(&EvalCell) -> f64| cells.iter().map(|c| f(c)).sum::<f64>() / n;
                EvalSummary {
                    runs: cells.len(),
                    satisfied: cells.iter().filter(|c| c.outcome.satisfied).count(),
                    median_total_h: quartiles(&totals).median,
                    mean_total_h: mean(&|c| c.outcome.total_hours()),
                    mean_total_usd: mean(&|c| c.outcome.total_cost.dollars()),
                    mean_profile_h: mean(&|c| c.outcome.search.profile_time.as_hours()),
                    mean_profile_usd: mean(&|c| c.outcome.search.profile_cost.dollars()),
                    mean_probes: mean(&|c| c.outcome.search.n_probes() as f64),
                    searcher,
                    scenario,
                }
            })
            .collect()
    }

    /// The aggregate for one (searcher, scenario) pair.
    pub fn summary_for(&self, searcher: &str, scenario: &Scenario) -> Option<EvalSummary> {
        self.summaries().into_iter().find(|s| s.searcher == searcher && s.scenario == *scenario)
    }

    /// Fixed-width summary table, one row per (searcher, scenario).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:<34} {:>3} {:>5} {:>8} {:>8} {:>9} {:>7} {:>8} {:>7}\n",
            "searcher",
            "scenario",
            "n",
            "ok",
            "med h",
            "mean h",
            "mean $",
            "prof h",
            "prof $",
            "probes"
        ));
        for s in self.summaries() {
            out.push_str(&format!(
                "{:<12} {:<34} {:>3} {:>5} {:>8.2} {:>8.2} {:>9.2} {:>7.2} {:>8.2} {:>7.1}\n",
                s.searcher,
                s.scenario.to_string(),
                s.runs,
                format!("{}/{}", s.satisfied, s.runs),
                s.median_total_h,
                s.mean_total_h,
                s.mean_total_usd,
                s.mean_profile_h,
                s.mean_profile_usd,
                s.mean_probes,
            ));
        }
        out
    }
}

/// A declarative searcher × scenario × seed sweep.
///
/// ```
/// use mlcd::eval::EvalGrid;
/// use mlcd::prelude::*;
///
/// let report = EvalGrid::new(TrainingJob::resnet_cifar10())
///     .searcher("HeterBO", |s| Box::new(HeterBo::seeded(s)))
///     .searcher("ConvBO", |s| Box::new(ConvBo::seeded(s)))
///     .scenario(Scenario::FastestUnlimited)
///     .seeds(0..2)
///     .with_runner(|s| {
///         ExperimentRunner::new(s)
///             .with_types(vec![InstanceType::C5Xlarge, InstanceType::C54xlarge])
///     })
///     .run();
/// assert_eq!(report.cells.len(), 4);
/// println!("{}", report.render());
/// ```
pub struct EvalGrid {
    job: TrainingJob,
    searchers: Vec<(String, SearcherFactory)>,
    scenarios: Vec<Scenario>,
    seeds: Vec<u64>,
    runner: RunnerFactory,
    capture_traces: bool,
}

impl EvalGrid {
    /// A grid over `job` with the default runner (`ExperimentRunner::new`
    /// per seed: full type catalog, default noise and physics).
    pub fn new(job: TrainingJob) -> Self {
        EvalGrid {
            job,
            searchers: Vec::new(),
            scenarios: Vec::new(),
            seeds: Vec::new(),
            runner: Box::new(ExperimentRunner::new),
            capture_traces: false,
        }
    }

    /// Add a searcher column. The factory gets the cell's seed.
    pub fn searcher(
        mut self,
        name: impl Into<String>,
        factory: impl Fn(u64) -> Box<dyn Searcher> + Sync + 'static,
    ) -> Self {
        self.searchers.push((name.into(), Box::new(factory)));
        self
    }

    /// Add a scenario.
    pub fn scenario(mut self, s: Scenario) -> Self {
        self.scenarios.push(s);
        self
    }

    /// Set the seed axis.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Customise the per-seed runner (space, noise, physics, profiler).
    pub fn with_runner(mut self, f: impl Fn(u64) -> ExperimentRunner + Sync + 'static) -> Self {
        self.runner = Box::new(f);
        self
    }

    /// Collect the structured [`SearchTrace`] of every cell. Tracing is
    /// pure observation — cell outcomes stay bit-identical to an
    /// untraced grid — but the streams cost memory, so this is opt-in.
    pub fn capture_traces(mut self, on: bool) -> Self {
        self.capture_traces = on;
        self
    }

    /// Run every cell of the grid, fanned out across threads, and collect
    /// the report in grid order (scenario-major, then seed, then
    /// searcher). Each cell is self-seeded, so the report is identical to
    /// a sequential run.
    pub fn run(&self) -> EvalReport {
        let mut plan: Vec<(usize, Scenario, u64)> = Vec::new();
        for scenario in &self.scenarios {
            for &seed in &self.seeds {
                for si in 0..self.searchers.len() {
                    plan.push((si, *scenario, seed));
                }
            }
        }
        let cells: Vec<EvalCell> = plan
            .par_iter()
            .map(|&(si, scenario, seed)| {
                let (name, factory) = &self.searchers[si];
                let runner = (self.runner)(seed);
                let searcher = factory(seed);
                let (outcome, trace) = if self.capture_traces {
                    let (outcome, trace) =
                        runner.run_traced(searcher.as_ref(), &self.job, &scenario);
                    (outcome, Some(trace))
                } else {
                    (runner.run(searcher.as_ref(), &self.job, &scenario), None)
                };
                EvalCell { searcher: name.clone(), scenario, seed, outcome, trace }
            })
            .collect();
        EvalReport { cells }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{ConvBo, HeterBo, RandomSearch};
    use mlcd_cloudsim::{InstanceType, Money};
    use mlcd_perfmodel::NoiseModel;

    fn small_grid() -> EvalGrid {
        EvalGrid::new(TrainingJob::resnet_cifar10())
            .searcher("HeterBO", |s| Box::new(HeterBo::seeded(s)))
            .searcher("Random", |s| Box::new(RandomSearch::new(4, s)))
            .scenario(Scenario::FastestUnlimited)
            .scenario(Scenario::FastestWithBudget(Money::from_dollars(100.0)))
            .seeds([3, 7])
            .with_runner(|s| {
                ExperimentRunner::new(s)
                    .with_types(vec![InstanceType::C5Xlarge, InstanceType::C54xlarge])
                    .with_noise(NoiseModel::noiseless())
            })
    }

    #[test]
    fn grid_covers_full_cross_product_in_order() {
        let report = small_grid().run();
        // 2 searchers × 2 scenarios × 2 seeds.
        assert_eq!(report.cells.len(), 8);
        // Scenario-major, then seed, then searcher.
        let labels: Vec<(String, u64)> =
            report.cells.iter().map(|c| (c.searcher.clone(), c.seed)).collect();
        assert_eq!(labels[0], ("HeterBO".into(), 3));
        assert_eq!(labels[1], ("Random".into(), 3));
        assert_eq!(labels[2], ("HeterBO".into(), 7));
        assert_eq!(labels[3], ("Random".into(), 7));
        assert_eq!(report.cells[0].scenario, report.cells[3].scenario);
        assert_ne!(report.cells[0].scenario, report.cells[4].scenario);
    }

    #[test]
    fn grid_is_deterministic() {
        let a = small_grid().run();
        let b = small_grid().run();
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.outcome.total_cost, y.outcome.total_cost);
            assert_eq!(x.outcome.total_time, y.outcome.total_time);
            assert_eq!(x.outcome.plan.map(|p| p.deployment), y.outcome.plan.map(|p| p.deployment));
        }
    }

    #[test]
    fn cells_match_direct_runner_calls() {
        // A grid cell is exactly one ExperimentRunner run — the harness
        // adds bookkeeping, not behaviour.
        let report = EvalGrid::new(TrainingJob::resnet_cifar10())
            .searcher("ConvBO", |s| Box::new(ConvBo::seeded(s)))
            .scenario(Scenario::FastestUnlimited)
            .seeds([11])
            .with_runner(|s| {
                ExperimentRunner::new(s)
                    .with_types(vec![InstanceType::C54xlarge])
                    .with_noise(NoiseModel::noiseless())
            })
            .run();
        let direct = ExperimentRunner::new(11)
            .with_types(vec![InstanceType::C54xlarge])
            .with_noise(NoiseModel::noiseless())
            .run(&ConvBo::seeded(11), &TrainingJob::resnet_cifar10(), &Scenario::FastestUnlimited);
        let cell = &report.cells[0].outcome;
        assert_eq!(cell.total_cost, direct.total_cost);
        assert_eq!(cell.total_time, direct.total_time);
        assert_eq!(cell.plan.map(|p| p.deployment), direct.plan.map(|p| p.deployment));
    }

    #[test]
    fn parallel_grid_matches_sequential_runner_calls() {
        // The fan-out must be invisible in the numbers: every cell of a
        // parallel grid run is bit-identical to the same experiment
        // executed directly (sequentially), including the GP-backed
        // searcher with its warm-started, workspace-cached fits.
        let report = small_grid().run();
        for cell in &report.cells {
            let searcher: Box<dyn Searcher> = match cell.searcher.as_str() {
                "HeterBO" => Box::new(HeterBo::seeded(cell.seed)),
                _ => Box::new(RandomSearch::new(4, cell.seed)),
            };
            let direct = ExperimentRunner::new(cell.seed)
                .with_types(vec![InstanceType::C5Xlarge, InstanceType::C54xlarge])
                .with_noise(NoiseModel::noiseless())
                .run(searcher.as_ref(), &TrainingJob::resnet_cifar10(), &cell.scenario);
            assert_eq!(cell.outcome.total_cost, direct.total_cost, "{} cell", cell.searcher);
            assert_eq!(cell.outcome.total_time, direct.total_time);
            assert_eq!(cell.outcome.plan.map(|p| p.deployment), direct.plan.map(|p| p.deployment));
            assert_eq!(cell.outcome.search.n_probes(), direct.search.n_probes());
        }
    }

    #[test]
    fn traced_grid_is_bit_identical_to_untraced() {
        let plain = small_grid().run();
        let traced = small_grid().capture_traces(true).run();
        assert_eq!(plain.cells.len(), traced.cells.len());
        for (p, t) in plain.cells.iter().zip(&traced.cells) {
            assert!(p.trace.is_none());
            assert_eq!(p.outcome.total_cost, t.outcome.total_cost);
            assert_eq!(p.outcome.total_time, t.outcome.total_time);
            assert_eq!(p.outcome.search.steps, t.outcome.search.steps);
            let trace = t.trace.as_ref().expect("traced grid collects streams");
            // Kernel-backed searchers narrate every probe; RandomSearch
            // has no instrumented loop and legitimately traces nothing.
            if t.searcher == "HeterBO" {
                assert_eq!(trace.probes().count(), t.outcome.search.n_probes());
                assert!(trace.stop_reason().is_some());
            }
        }
    }

    #[test]
    fn summaries_aggregate_correctly() {
        let report = small_grid().run();
        let summaries = report.summaries();
        // One row per (searcher, scenario) pair.
        assert_eq!(summaries.len(), 4);
        for s in &summaries {
            assert_eq!(s.runs, 2);
            assert!(s.satisfied <= s.runs);
            assert!(s.mean_total_h > 0.0);
            assert!(s.median_total_h > 0.0);
            assert!(s.mean_probes >= 1.0);
            // The mean must sit inside the cells' range.
            let cells = report.cells_for(&s.searcher, &s.scenario);
            let lo = cells.iter().map(|c| c.outcome.total_hours()).fold(f64::INFINITY, f64::min);
            let hi = cells.iter().map(|c| c.outcome.total_hours()).fold(0.0_f64, f64::max);
            assert!(s.mean_total_h >= lo - 1e-12 && s.mean_total_h <= hi + 1e-12);
        }
        // Render produces one line per summary plus the header.
        assert_eq!(report.render().lines().count(), 5);
    }
}
