//! Developer diagnostic: sweep the headline searchers over all three
//! scenarios and several seeds with the `mlcd::eval` grid harness, and
//! print the aggregated summary table. The cells fan out across threads;
//! set `RAYON_NUM_THREADS=1` to force a sequential run (the numbers are
//! identical either way — every cell is self-seeded).
//!
//! ```text
//! cargo run -p mlcd --example eval_grid --release
//! ```

use mlcd::prelude::*;
use mlcd::search::{CherryPick, ConvBo};

fn main() {
    let types = vec![
        InstanceType::C5Xlarge,
        InstanceType::C54xlarge,
        InstanceType::C5n4xlarge,
        InstanceType::P2Xlarge,
    ];
    let report = EvalGrid::new(TrainingJob::resnet_cifar10())
        .searcher("HeterBO", |s| Box::new(HeterBo::seeded(s)))
        .searcher("ConvBO", |s| Box::new(ConvBo::seeded(s)))
        .searcher("CherryPick", |s| Box::new(CherryPick::seeded(s)))
        .scenario(Scenario::FastestUnlimited)
        .scenario(Scenario::CheapestWithDeadline(SimDuration::from_hours(6.0)))
        .scenario(Scenario::FastestWithBudget(Money::from_dollars(100.0)))
        .seeds([1, 2, 3])
        .with_runner(move |s| ExperimentRunner::new(s).with_types(types.clone()))
        .run();
    print!("{}", report.render());
}
