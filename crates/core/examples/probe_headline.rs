//! Developer diagnostic: run the headline searcher comparison across all
//! three scenarios and a few seeds, printing full breakdowns. Useful when
//! tuning the performance model or the searchers.
//!
//! ```text
//! cargo run -p mlcd --example probe_headline --release
//! ```

use mlcd::prelude::*;
use mlcd::search::{CherryPick, ConvBo};

fn main() {
    let job = TrainingJob::resnet_cifar10();
    let types = vec![
        InstanceType::C5Xlarge,
        InstanceType::C54xlarge,
        InstanceType::C5n4xlarge,
        InstanceType::P2Xlarge,
    ];

    for (name, scenario) in [
        ("S1 unlimited", Scenario::FastestUnlimited),
        ("S2 deadline6h", Scenario::CheapestWithDeadline(SimDuration::from_hours(6.0))),
        ("S3 budget100", Scenario::FastestWithBudget(Money::from_dollars(100.0))),
    ] {
        println!("=== {name} ===");
        for seed in [1u64, 2, 3] {
            let runner = ExperimentRunner::new(seed).with_types(types.clone());
            let h = runner.run(&HeterBo::seeded(seed), &job, &scenario);
            let c = runner.run(&ConvBo::seeded(seed), &job, &scenario);
            let cp = runner.run(&CherryPick::seeded(seed), &job, &scenario);
            let opt = runner.optimum(&job, &scenario);
            for o in [&h, &c, &cp] {
                println!("  seed{seed} {:11} pick={:?} probes={:2} prof {:5.2}h ${:7.2} | train {:5.2}h ${:7.2} | total {:5.2}h ${:7.2} sat={} stop={:?}",
                    o.searcher, o.plan.map(|p| p.deployment.to_string()), o.search.n_probes(),
                    o.search.profile_time.as_hours(), o.search.profile_cost.dollars(),
                    o.train_time.as_hours(), o.train_cost.dollars(),
                    o.total_hours(), o.total_cost.dollars(), o.satisfied, o.search.stop_reason);
            }
            if let Some(opt) = opt {
                println!(
                    "  seed{seed} Opt         {} speed {:.0} train {:.2}h ${:.2}",
                    opt.deployment,
                    opt.speed,
                    opt.train_time.as_hours(),
                    opt.train_cost.dollars()
                );
            }
        }
    }
}
