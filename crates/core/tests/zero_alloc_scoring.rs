//! Pins the allocation-free contract of the candidate-scoring fast path:
//! after one warm-up pass, `Surrogate::predict_batch_into` through a
//! reused `ScoreWorkspace` performs zero heap allocations, even as the
//! model grows between scoring passes (growth happens outside the
//! measured window, exactly as in the BO loop where the workspace is
//! pre-reserved for the final model size).
//!
//! Lives alone in this integration-test binary because the counting
//! `#[global_allocator]` is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use mlcd::deployment::{Deployment, SearchSpace};
use mlcd::observation::Observation;
use mlcd::search::{RefitPolicy, Surrogate};
use mlcd_cloudsim::{InstanceType, Money, SimDuration};
use mlcd_gp::ScoreWorkspace;
use mlcd_perfmodel::{ThroughputModel, TrainingJob};

/// Forwards to the system allocator, counting (de)allocations only while
/// armed so test-harness and setup allocations don't pollute the count.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System` plus lock-free atomic counters —
// every pointer/layout contract is upheld by forwarding the arguments
// unchanged, and the counters never allocate or re-enter the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same layout handed straight to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    // SAFETY: `ptr`/`layout` came from this allocator's `alloc`, which
    // forwarded to `System`, so returning them to `System` is sound.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: arguments forwarded unchanged to `System.realloc`; `ptr`
    // originated from `System` via our `alloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn obs(n: u32, speed: f64) -> Observation {
    Observation {
        deployment: Deployment::new(InstanceType::C54xlarge, n),
        speed,
        profile_time: SimDuration::from_mins(10.0),
        profile_cost: Money::from_dollars(0.1),
    }
}

#[test]
fn warm_scoring_pass_allocates_nothing() {
    let space = SearchSpace::new(
        &[InstanceType::C54xlarge],
        50,
        &TrainingJob::resnet_cifar10(),
        &ThroughputModel::default(),
    );
    let speed = |n: u32| (380.0 - 0.7 * (n as f64 - 20.0).powi(2)).max(10.0);
    let mut observations: Vec<Observation> =
        [1u32, 8, 15, 26, 40].iter().map(|&n| obs(n, speed(n))).collect();
    let pool: Vec<Deployment> = space.candidates().to_vec();

    let policy = RefitPolicy { refit_every: 1000, ..RefitPolicy::default() };
    let mut sur = Surrogate::update(None, &space, &observations, 7, &policy);

    // Reserve for the largest model this test grows to (5 initial + 3
    // extensions) and the full pool, then run one warm-up pass so every
    // buffer reaches its working size.
    let mut ws = ScoreWorkspace::new();
    ws.reserve(SearchSpace::FEATURE_DIM, observations.len() + 4, pool.len());
    sur.as_ref().unwrap().predict_batch_into(&space, &pool, &mut ws);

    // Three BO steps: the measured scoring pass must not allocate; the
    // model extension between passes runs outside the armed window.
    for &n in &[33u32, 11, 47] {
        let sur_ref = sur.as_ref().unwrap();
        ALLOCS.store(0, Ordering::SeqCst);
        ARMED.store(true, Ordering::SeqCst);
        sur_ref.predict_batch_into(&space, &pool, &mut ws);
        ARMED.store(false, Ordering::SeqCst);
        let n_allocs = ALLOCS.load(Ordering::SeqCst);
        assert_eq!(n_allocs, 0, "warm scoring pass allocated {n_allocs} times");
        assert_eq!(ws.predictions().len(), pool.len());

        observations.push(obs(n, speed(n)));
        sur = Surrogate::update(sur, &space, &observations, 7, &policy);
    }
}
