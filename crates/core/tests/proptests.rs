//! Property tests for the search core: invariants over random response
//! surfaces, budgets and seeds (the synthetic environment keeps these
//! cheap — no cloud simulation, no observation noise).

use mlcd::acquisition::AcquisitionKind;
use mlcd::deployment::{Deployment, SearchSpace};
use mlcd::env::SyntheticEnv;
use mlcd::prelude::*;
use mlcd_gp::Prediction;
use proptest::prelude::*;

fn space_3types() -> SearchSpace {
    SearchSpace::new(
        &[InstanceType::C5Xlarge, InstanceType::C54xlarge, InstanceType::P2Xlarge],
        50,
        &TrainingJob::resnet_cifar10(),
        &ThroughputModel::default(),
    )
}

/// A randomly parameterised concave-per-type surface that satisfies the
/// ML prior HeterBO assumes: speed *rises monotonically* from n = 1 to an
/// interior peak, then declines (possibly flooring on the far side). A
/// flat plateau before the peak — an isolated "speed island" — violates
/// that assumption and coarse frontier probing can legitimately step over
/// it; `curv_frac` parameterises curvature relative to what keeps f(1)
/// positive and rising.
fn surface(peak_n: f64, height: f64, curv_frac: f64) -> impl Fn(&Deployment) -> f64 {
    let denom = (peak_n - 1.0).max(5.0).powi(2);
    let curv = curv_frac * height / denom;
    move |d: &Deployment| {
        let base = match d.itype {
            InstanceType::C54xlarge => 1.0,
            InstanceType::C5Xlarge => 0.45,
            InstanceType::P2Xlarge => 0.6,
            _ => 0.3,
        };
        base * (height - curv * (d.n as f64 - peak_n).powi(2)).max(height * 0.04)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    /// On arbitrary concave surfaces, HeterBO's pick lands near the true
    /// optimum of the space.
    #[test]
    fn heterbo_near_optimal_on_random_concave_surfaces(
        peak_n in 5.0f64..45.0,
        height in 200.0f64..900.0,
        curv in 0.3f64..0.95,
        seed in 0u64..500,
    ) {
        let f = surface(peak_n, height, curv);
        let mut env = SyntheticEnv::new(space_3types(), 5e6, &f);
        let out = HeterBo::seeded(seed).search(&mut env, &Scenario::FastestUnlimited);
        let best = out.best.expect("always finds something unconstrained");
        let true_best = space_3types()
            .candidates()
            .iter()
            .map(&f)
            .fold(0.0_f64, f64::max);
        prop_assert!(
            best.speed >= true_best * 0.80,
            "found {:.1} at {} vs optimum {:.1} (peak_n {peak_n:.0}, curv {curv:.2})",
            best.speed, best.deployment, true_best
        );
    }

    /// The budget reserve holds on arbitrary surfaces and budgets: the
    /// projected total (profiling + margin-padded training at the pick)
    /// never exceeds the budget when the search reports success.
    #[test]
    fn heterbo_projected_total_within_budget(
        peak_n in 5.0f64..45.0,
        budget in 50.0f64..300.0,
        seed in 0u64..500,
    ) {
        let f = surface(peak_n, 500.0, 0.8);
        let mut env = SyntheticEnv::new(space_3types(), 5e6, &f);
        let scenario = Scenario::FastestWithBudget(Money::from_dollars(budget));
        let out = HeterBo::seeded(seed).search(&mut env, &scenario);
        if let Some(best) = out.best {
            let train = Scenario::training_cost(&best.deployment, 5e6, best.speed);
            let total = out.profile_cost.dollars() + train.dollars();
            prop_assert!(
                total <= budget * 1.001,
                "projected total ${total:.2} over ${budget:.2} (pick {})",
                best.deployment
            );
        }
    }

    /// Every searcher only ever recommends a deployment it actually
    /// probed, and its trace's cumulative totals are monotone.
    #[test]
    fn outcome_internally_consistent(seed in 0u64..1000, k in 3usize..10) {
        let f = surface(20.0, 500.0, 0.8);
        let mut env = SyntheticEnv::new(space_3types(), 5e6, &f);
        let out = RandomSearch::new(k, seed).search(&mut env, &Scenario::FastestUnlimited);
        let best = out.best.expect("random always finds something");
        prop_assert!(out.steps.iter().any(|s| s.observation.deployment == best.deployment));
        let mut prev_t = 0.0;
        let mut prev_c = 0.0;
        for s in &out.steps {
            prop_assert!(s.cum_profile_time.as_secs() >= prev_t);
            prop_assert!(s.cum_profile_cost.dollars() >= prev_c);
            prev_t = s.cum_profile_time.as_secs();
            prev_c = s.cum_profile_cost.dollars();
        }
        prop_assert!((prev_c - out.profile_cost.dollars()).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Acquisition scores: non-negative, and monotone in the predicted
    /// mean for fixed σ and incumbent.
    #[test]
    fn acquisition_scores_monotone_in_mean(
        mean in -10.0f64..10.0,
        bump in 0.01f64..5.0,
        sd in 0.01f64..3.0,
        best in -5.0f64..5.0,
    ) {
        for kind in [
            AcquisitionKind::ExpectedImprovement,
            AcquisitionKind::UpperConfidenceBound { kappa: 2.0 },
            AcquisitionKind::ProbabilityOfImprovement { margin_frac: 0.05 },
        ] {
            let lo = kind.score(&Prediction { mean, var: sd * sd, var_with_noise: sd * sd }, best);
            let hi = kind.score(
                &Prediction { mean: mean + bump, var: sd * sd, var_with_noise: sd * sd },
                best,
            );
            prop_assert!(lo >= 0.0, "{kind:?} negative: {lo}");
            prop_assert!(hi >= lo - 1e-12, "{kind:?} not monotone: {lo} vs {hi}");
        }
    }

    /// The paper's probe-duration rule is monotone in cluster size and
    /// matches its stated anchors.
    #[test]
    fn probe_duration_rule(n in 1u32..=100) {
        let d = mlcd::env::paper_probe_duration(n);
        prop_assert!(d.as_mins() >= 10.0);
        prop_assert!((d.as_mins() - (10.0 + ((n - 1) / 3) as f64)).abs() < 1e-12);
        if n > 1 {
            prop_assert!(
                mlcd::env::paper_probe_duration(n).as_secs()
                    >= mlcd::env::paper_probe_duration(n - 1).as_secs()
            );
        }
    }
}
