//! `mlcd search --trace` end-to-end: the bin must write a JSON-Lines
//! event stream for a full search, one JSON object per line, ending in a
//! `Stopped` event, with one probe event per probe the outcome reports.

use std::process::Command;

fn mlcd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mlcd"))
}

#[test]
fn search_trace_flag_writes_jsonl_stream() {
    let dir = std::env::temp_dir().join("mlcd-cli-trace-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.jsonl");

    let out = mlcd()
        .args([
            "search",
            "--job",
            "resnet-cifar10",
            "--searcher",
            "heterbo",
            "--seed",
            "3",
            "--types",
            "c5.xlarge,c5.4xlarge",
            "--json",
            "--trace",
        ])
        .arg(&trace_path)
        .output()
        .expect("mlcd runs");
    assert!(
        out.status.success(),
        "mlcd failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    // The normal outcome report is unaffected by tracing.
    let outcome: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("outcome is JSON");
    let n_steps = outcome["search"]["steps"]
        .as_array()
        .unwrap_or_else(|| panic!("steps missing from outcome"))
        .len();
    assert!(n_steps >= 2, "expected a multi-probe search, got {n_steps}");

    // The trace file: one JSON object per line.
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > n_steps, "trace must narrate more than just the probes");
    let mut probes = 0;
    let mut stopped = 0;
    for line in &lines {
        let v: serde_json::Value = serde_json::from_str(line).expect("each line is JSON");
        assert!(matches!(v, serde_json::Value::Object(_)), "line is not an object: {line}");
        if v.get("InitProbe").is_some() || v.get("Probe").is_some() {
            probes += 1;
        }
        if v.get("Stopped").is_some() {
            stopped += 1;
        }
    }
    assert_eq!(probes, n_steps, "one traced probe event per recorded search step");
    assert_eq!(stopped, 1, "exactly one Stopped event, and it must be present");
    assert!(
        lines.last().unwrap().contains("Stopped"),
        "the stream ends with the stop: {:?}",
        lines.last()
    );

    std::fs::remove_file(&trace_path).ok();
}

#[test]
fn trace_is_rejected_for_paleo() {
    let out = mlcd()
        .args([
            "search",
            "--job",
            "resnet-cifar10",
            "--searcher",
            "paleo",
            "--trace",
            "/tmp/should-not-exist.jsonl",
        ])
        .output()
        .expect("mlcd runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace is not supported"));
}
