//! Property-based tests for the numerical core.

use mlcd_linalg::stats::quartiles as quartiles_of;
use mlcd_linalg::{norm_cdf, norm_pdf, norm_quantile, Chol, Mat, OnlineStats};

use proptest::prelude::*;

/// Random SPD matrix via A = B Bᵀ + n·I with B entries in [-1, 1].
fn spd_strategy(max_n: usize) -> impl Strategy<Value = Mat> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |entries| {
            let b = Mat::from_fn(n, n, |i, j| entries[i * n + j]);
            let mut a = b.matmul(&b.transpose());
            // Shift well away from singular so plain `factor` succeeds.
            a.add_diag(n as f64);
            a
        })
    })
}

proptest! {
    #[test]
    fn cholesky_reconstructs(a in spd_strategy(8)) {
        let c = Chol::factor(&a).unwrap();
        let recon = c.l().matmul(&c.l().transpose());
        let scale = a.max_abs().max(1.0);
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                prop_assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-9 * scale);
            }
        }
    }

    #[test]
    fn cholesky_solve_is_inverse(a in spd_strategy(8), seed in 0u64..1000) {
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| ((seed + i as u64) % 13) as f64 - 6.0).collect();
        let c = Chol::factor(&a).unwrap();
        let x = c.solve(&b);
        let back = a.matvec(&x);
        let scale = b.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for k in 0..n {
            prop_assert!((back[k] - b[k]).abs() < 1e-7 * scale, "component {}", k);
        }
    }

    #[test]
    fn quad_form_nonnegative(a in spd_strategy(6), seed in 0u64..1000) {
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| ((seed * 7 + i as u64) % 11) as f64 - 5.0).collect();
        let c = Chol::factor(&a).unwrap();
        prop_assert!(c.quad_form(&b) >= -1e-12);
    }

    #[test]
    fn cdf_pdf_relationship(x in -8.0f64..8.0) {
        // Finite-difference derivative of the cdf matches the pdf.
        let h = 1e-6;
        let deriv = (norm_cdf(x + h) - norm_cdf(x - h)) / (2.0 * h);
        prop_assert!((deriv - norm_pdf(x)).abs() < 1e-6);
    }

    #[test]
    fn cdf_complement(x in -10.0f64..10.0) {
        prop_assert!((norm_cdf(x) + norm_cdf(-x) - 1.0).abs() < 1e-13);
    }

    #[test]
    fn quantile_is_cdf_inverse(p in 1e-8f64..=0.99999999) {
        let x = norm_quantile(p);
        prop_assert!((norm_cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn online_stats_matches_batch(xs in proptest::collection::vec(-1e3f64..1e3, 2..64)) {
        let mut s = OnlineStats::new();
        for &x in &xs { s.push(x); }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-8 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-6 * (1.0 + var));
    }

    #[test]
    fn quartiles_ordered(xs in proptest::collection::vec(-1e3f64..1e3, 1..64)) {
        let q = quartiles_of(&xs);
        prop_assert!(q.min <= q.q1 + 1e-12);
        prop_assert!(q.q1 <= q.median + 1e-12);
        prop_assert!(q.median <= q.q3 + 1e-12);
        prop_assert!(q.q3 <= q.max + 1e-12);
    }

    #[test]
    fn matmul_associative_with_vector(
        entries in proptest::collection::vec(-10.0f64..10.0, 9),
        v in proptest::collection::vec(-10.0f64..10.0, 3),
    ) {
        // (A B) v == A (B v) for 3x3.
        let a = Mat::from_fn(3, 3, |i, j| entries[i * 3 + j]);
        let b = Mat::from_fn(3, 3, |i, j| entries[(i * 3 + j + 4) % 9]);
        let lhs = a.matmul(&b).matvec(&v);
        let rhs = a.matvec(&b.matvec(&v));
        for k in 0..3 {
            prop_assert!((lhs[k] - rhs[k]).abs() < 1e-8 * (1.0 + lhs[k].abs()));
        }
    }
}
