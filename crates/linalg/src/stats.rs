//! Standard-normal distribution functions and summary statistics.
//!
//! Expected Improvement evaluates Φ and φ deep in the tails (a candidate far
//! below the incumbent), so the cdf needs full double-precision accuracy
//! there — a short Abramowitz–Stegun polynomial flushes to zero far too
//! early. We compute erf by its Maclaurin series for small arguments and
//! erfc by the Laplace continued fraction (evaluated with the modified
//! Lentz algorithm) for large ones; both converge to machine precision and
//! need no tabulated minimax constants.

/// Exact bit-level zero test: `true` iff `x` is `+0.0` or `-0.0`.
///
/// Semantically identical to `x == 0.0` (NaN is not zero, both signed
/// zeros are), but states the intent explicitly: this is a *guard against
/// a degenerate exact value* (division by a zero width, skipping a zero
/// multiplier), not a tolerance comparison. The determinism lint bans raw
/// float `==`/`!=` (`mlcd-lint` rule `float-cmp`) because most such
/// comparisons are representation-sensitive bugs; exact-zero guards go
/// through this helper instead.
#[inline]
pub fn is_exact_zero(x: f64) -> bool {
    x.abs().to_bits() == 0
}

/// Exact bit-pattern float equality: `true` iff `a` and `b` are the same
/// bits. Distinguishes `+0.0` from `-0.0` and treats identical NaN
/// payloads as equal — the same notion of equality the golden
/// `SearchOutcome` digests use, and the lint-sanctioned way to compare
/// floats for identity (e.g. cache keys, change detection).
#[inline]
pub fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

/// Standard normal probability density function φ(x).
#[inline]
pub fn norm_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Standard normal cumulative distribution function Φ(x).
///
/// Accurate in both tails via `erfc`; `norm_cdf(-40.0)` is a correctly
/// rounded subnormal rather than 0 flushed from a polynomial.
#[inline]
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Crossover between the erf series (below) and the erfc continued
/// fraction (above). Both converge quickly near 2.0.
const ERF_SPLIT: f64 = 2.0;

/// Complementary error function.
///
/// For `|x| < 2` computed as `1 - erf(x)` from the Maclaurin series; for
/// larger arguments via the Laplace continued fraction
/// `erfc(x) = exp(-x²)/√π · 1/(x + 1/2/(x + 1/(x + 3/2/(x + …))))`,
/// evaluated with the modified Lentz algorithm. Relative accuracy is at
/// machine-precision level across the range (verified against reference
/// values in the tests).
pub fn erfc(x: f64) -> f64 {
    if x < -ERF_SPLIT {
        return 2.0 - erfc(-x);
    }
    if x < ERF_SPLIT {
        return 1.0 - erf(x);
    }
    // Modified Lentz evaluation of the continued fraction
    //   K = 1/(x+) (1/2)/(x+) (2/2)/(x+) (3/2)/(x+) …
    const TINY: f64 = 1e-300;
    let mut f = TINY;
    let mut c = f;
    let mut d = 0.0;
    let mut k = 0u32;
    loop {
        // a_1 = 1, a_{j+1} = j/2 (alternating 1/2, 1, 3/2, 2, …); b_j = x.
        let a = if k == 0 { 1.0 } else { k as f64 / 2.0 };
        let b = x;
        d = b + a * d;
        if is_exact_zero(d) {
            d = TINY;
        }
        c = b + a / c;
        if is_exact_zero(c) {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-17 || k > 300 {
            break;
        }
        k += 1;
    }
    const INV_SQRT_PI: f64 = 0.564_189_583_547_756_3;
    (-x * x).exp() * INV_SQRT_PI * f
}

/// Error function.
///
/// For `|x| < 2` the Maclaurin series
/// `erf(x) = (2/√π) Σ_{n≥0} (-1)ⁿ x^{2n+1} / (n! (2n+1))`
/// summed to machine precision; beyond that reflected through `erfc`.
pub fn erf(x: f64) -> f64 {
    let ax = x.abs();
    if ax >= ERF_SPLIT {
        let tail = erfc(ax);
        return if x > 0.0 { 1.0 - tail } else { tail - 1.0 };
    }
    // Term recurrence: t_{n+1} = t_n * (-x²)/(n+1); accumulate t_n/(2n+1).
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    let mut n = 0u32;
    loop {
        n += 1;
        term *= -x2 / n as f64;
        let contrib = term / (2 * n + 1) as f64;
        sum += contrib;
        if contrib.abs() < 1e-18 * sum.abs().max(1e-300) || n > 200 {
            break;
        }
    }
    std::f64::consts::FRAC_2_SQRT_PI * sum
}

/// Inverse of the standard normal cdf (the quantile / probit function).
///
/// Acklam's algorithm refined by one Halley step; relative error < 1e-13
/// over (0, 1).
///
/// # Panics
/// Panics when `p` is outside the open interval (0, 1).
pub fn norm_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "norm_quantile: p={p} not in (0,1)");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the accurate cdf.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

/// Welford online mean/variance accumulator.
///
/// Used by the Profiler to decide whether throughput across probe
/// iterations has stabilised.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation σ/μ; 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if is_exact_zero(self.mean) {
            0.0
        } else {
            self.stddev() / self.mean.abs()
        }
    }

    /// Snapshot of the accumulated summary.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.n,
            mean: self.mean,
            stddev: self.stddev(),
            min: if self.n == 0 { f64::NAN } else { self.min },
            max: if self.n == 0 { f64::NAN } else { self.max },
        }
    }
}

/// Immutable summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Smallest observation (NaN when empty).
    pub min: f64,
    /// Largest observation (NaN when empty).
    pub max: f64,
}

/// Quartile summary of a sample, used by the fig-12 whisker plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quartiles {
    /// Minimum.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Compute min/q1/median/q3/max of a sample by linear-interpolation
/// percentiles.
///
/// # Panics
/// Panics on an empty slice.
pub fn quartiles(xs: &[f64]) -> Quartiles {
    assert!(!xs.is_empty(), "quartiles: empty sample");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        let idx = p * (sorted.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    };
    Quartiles {
        min: sorted[0],
        q1: pct(0.25),
        median: pct(0.5),
        q3: pct(0.75),
        max: *sorted.last().unwrap(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_symmetry_and_peak() {
        assert!((norm_pdf(0.0) - 0.3989422804014327).abs() < 1e-15);
        assert_eq!(norm_pdf(1.3), norm_pdf(-1.3));
        assert!(norm_pdf(10.0) < 1e-20);
    }

    #[test]
    fn cdf_reference_values() {
        // Reference values from standard tables / scipy.
        let cases = [
            (0.0, 0.5),
            (1.0, 0.8413447460685429),
            (-1.0, 0.15865525393145707),
            (1.959963984540054, 0.975),
            (3.0, 0.9986501019683699),
            (-3.0, 0.0013498980316301035),
        ];
        for (x, want) in cases {
            let got = norm_cdf(x);
            assert!((got - want).abs() < 1e-12, "cdf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn cdf_deep_tails() {
        // scipy.stats.norm.cdf(-8) = 6.22096057427178e-16
        let got = norm_cdf(-8.0);
        assert!((got - 6.22096057427178e-16).abs() / 6.22e-16 < 1e-6, "got {got}");
        assert!(norm_cdf(-40.0) >= 0.0);
        assert_eq!(norm_cdf(40.0), 1.0);
    }

    #[test]
    fn cdf_monotone() {
        let mut prev = -1.0;
        let mut x = -12.0;
        while x <= 12.0 {
            let c = norm_cdf(x);
            assert!(c >= prev, "cdf not monotone at {x}");
            prev = c;
            x += 0.01;
        }
    }

    #[test]
    fn erf_erfc_complementarity() {
        let mut x = -6.0;
        while x <= 6.0 {
            let s = erf(x) + erfc(x);
            assert!((s - 1.0).abs() < 1e-13, "erf+erfc at {x} = {s}");
            x += 0.1;
        }
    }

    #[test]
    fn quantile_round_trip() {
        for &p in &[1e-10, 1e-6, 0.01, 0.025, 0.2, 0.5, 0.8, 0.975, 0.99, 1.0 - 1e-6] {
            let x = norm_quantile(p);
            let back = norm_cdf(x);
            assert!(
                (back - p).abs() < 1e-10 * (1.0 + 1.0 / p.min(1.0 - p)).min(1e4),
                "quantile({p}) -> {x} -> cdf {back}"
            );
        }
        assert!((norm_quantile(0.975) - 1.959963984540054).abs() < 1e-9);
        assert_eq!(norm_quantile(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "not in (0,1)")]
    fn quantile_rejects_bounds() {
        let _ = norm_quantile(0.0);
    }

    #[test]
    fn online_stats_welford() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance of this classic sample is 4; unbiased is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        let sum = s.summary();
        assert_eq!(sum.min, 2.0);
        assert_eq!(sum.max, 9.0);
    }

    #[test]
    fn online_stats_empty_and_single() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.summary().min.is_nan());
        let mut s1 = OnlineStats::new();
        s1.push(3.0);
        assert_eq!(s1.variance(), 0.0);
        assert_eq!(s1.cv(), 0.0);
    }

    #[test]
    fn cv_detects_instability() {
        let mut stable = OnlineStats::new();
        let mut noisy = OnlineStats::new();
        for i in 0..50 {
            stable.push(100.0 + (i % 2) as f64 * 0.1);
            noisy.push(100.0 + (i % 2) as f64 * 60.0);
        }
        assert!(stable.cv() < 0.01);
        assert!(noisy.cv() > 0.2);
    }

    #[test]
    fn quartiles_of_known_sample() {
        let q = quartiles(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(q.min, 1.0);
        assert_eq!(q.q1, 2.0);
        assert_eq!(q.median, 3.0);
        assert_eq!(q.q3, 4.0);
        assert_eq!(q.max, 5.0);
        // Order-independence.
        let q2 = quartiles(&[5.0, 3.0, 1.0, 4.0, 2.0]);
        assert_eq!(q, q2);
    }
}
