//! A small dense, column-major matrix type.
//!
//! Kernel matrices in the GP are symmetric positive (semi-)definite and at
//! most a few hundred rows, so this type favours clarity over blocking or
//! SIMD. Column-major storage matches the access pattern of the Cholesky
//! factorisation in [`crate::chol`].

// lint: allow(hot-index, file) — the matrix type's own accessors (Index impls, column
// views, blocked matvec lanes) index `data[j * rows + i]` with i, j bounded by the
// asserted (rows, cols) shape; checked `get` here would put a branch inside every
// kernel-matrix access the GP hot loops make.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense column-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    /// Column-major: element (i, j) lives at `data[j * rows + i]`.
    data: Vec<f64>,
}

impl Mat {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of order `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from row slices. All rows must have equal length.
    ///
    /// # Panics
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = Mat::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "from_rows: ragged input at row {i}");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Build an `n × n` matrix from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow column `j` as a contiguous slice (column-major payoff).
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutably borrow column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Copy row `i` out into a new vector.
    pub fn row(&self, i: usize) -> Vec<f64> {
        (0..self.cols).map(|j| self[(i, j)]).collect()
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–vector product `self * x`.
    ///
    /// Four columns are applied per pass over `y`, but each element of `y`
    /// still receives its contributions one `j` at a time in ascending
    /// order, so the result is bit-identical to the classic one-column
    /// loop. The exact-zero skip is preserved as a true skip (adding
    /// `0.0 * c` could flip `-0.0` to `+0.0` or turn `∞` into NaN), so a
    /// block containing any zero coefficient falls back to the scalar
    /// path for those four columns.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        let n = self.rows;
        let mut y = vec![0.0; n];
        let mut j = 0;
        while j + 4 <= self.cols {
            let (x0, x1, x2, x3) = (x[j], x[j + 1], x[j + 2], x[j + 3]);
            let any_zero = crate::is_exact_zero(x0)
                || crate::is_exact_zero(x1)
                || crate::is_exact_zero(x2)
                || crate::is_exact_zero(x3);
            if any_zero {
                for (dj, &xj) in [x0, x1, x2, x3].iter().enumerate() {
                    if crate::is_exact_zero(xj) {
                        continue;
                    }
                    for (yi, &cij) in y.iter_mut().zip(self.col(j + dj)) {
                        *yi += cij * xj;
                    }
                }
            } else {
                let block = &self.data[j * n..(j + 4) * n];
                let (c0, rest) = block.split_at(n);
                let (c1, rest) = rest.split_at(n);
                let (c2, c3) = rest.split_at(n);
                let lanes = c0.iter().zip(c1).zip(c2).zip(c3);
                for (yi, (((&a0, &a1), &a2), &a3)) in y.iter_mut().zip(lanes) {
                    let mut v = *yi;
                    v += a0 * x0;
                    v += a1 * x1;
                    v += a2 * x2;
                    v += a3 * x3;
                    *yi = v;
                }
            }
            j += 4;
        }
        for (j, &xj) in x.iter().enumerate().skip(j) {
            if crate::is_exact_zero(xj) {
                continue;
            }
            for (yi, &cij) in y.iter_mut().zip(self.col(j)) {
                *yi += cij * xj;
            }
        }
        y
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let mut out = Mat::zeros(self.rows, other.cols);
        for j in 0..other.cols {
            let y = self.matvec(other.col(j));
            out.col_mut(j).copy_from_slice(&y);
        }
        out
    }

    /// `self + scale * I` in place; used to add jitter / noise variance to
    /// kernel matrices.
    ///
    /// # Panics
    /// Panics on non-square matrices.
    pub fn add_diag(&mut self, scale: f64) {
        assert!(self.is_square(), "add_diag: matrix must be square");
        for i in 0..self.rows {
            self[(i, i)] += scale;
        }
    }

    /// Maximum absolute element; zero for empty matrices.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Symmetry defect `max |A - Aᵀ|`; zero for empty or perfectly
    /// symmetric matrices.
    pub fn asymmetry(&self) -> f64 {
        if !self.is_square() {
            return f64::INFINITY;
        }
        let mut worst = 0.0_f64;
        for j in 0..self.cols {
            for i in 0..j {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Force exact symmetry by averaging with the transpose. Cheap
    /// insurance before factorising a kernel matrix assembled from
    /// floating-point kernel evaluations.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize: matrix must be square");
        for j in 0..self.cols {
            for i in 0..j {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Flat data access (column-major), mostly for tests.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Reshape to `rows × cols` with every element zeroed, reusing the
    /// existing allocation whenever the new shape fits its capacity. The
    /// workspace types build on this to stay allocation-free across
    /// repeated uses at (bounded) varying shapes.
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Become a copy of `src`, reusing the existing allocation whenever
    /// `src`'s elements fit its capacity.
    pub fn copy_from(&mut self, src: &Mat) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Mutably borrow the contiguous storage of columns `c..c + w`
    /// (column `c + k` occupies `k*rows..(k+1)*rows` of the returned
    /// slice). Blocked multi-RHS solves split this further to update
    /// several right-hand sides per pass over the factor.
    #[inline]
    pub fn col_block_mut(&mut self, c: usize, w: usize) -> &mut [f64] {
        &mut self.data[c * self.rows..(c + w) * self.rows]
    }

    /// Split the storage at column `j`: read access to columns `0..j`
    /// (concatenated, column `k` at `k*rows..(k+1)*rows`) plus a mutable
    /// borrow of column `j` itself. This is the borrow shape a
    /// left-looking factorisation needs — update the current column from
    /// the already-finished ones without cloning either.
    #[inline]
    pub fn split_col_mut(&mut self, j: usize) -> (&[f64], &mut [f64]) {
        let n = self.rows;
        let (left, rest) = self.data.split_at_mut(j * n);
        (&*left, &mut rest[..n])
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &self.data[j * self.rows + i]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &mut self.data[j * self.rows + i]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_eye_shapes() {
        let z = Mat::zeros(2, 3);
        assert_eq!((z.rows(), z.cols()), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Mat::eye(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_rows_layout() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
        // Column-major storage.
        assert_eq!(m.as_slice(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        let _ = Mat::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn matvec_identity_and_general() {
        let i = Mat::eye(3);
        assert_eq!(i.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn matmul_against_hand_computation() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!((t.rows(), t.cols()), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn add_diag_and_symmetry() {
        let mut m = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        m.add_diag(0.5);
        assert_eq!(m[(0, 0)], 1.5);
        assert_eq!(m[(1, 1)], 1.5);
        assert_eq!(m.asymmetry(), 0.0);

        let mut skew = Mat::from_rows(&[&[1.0, 2.0], &[2.2, 1.0]]);
        assert!((skew.asymmetry() - 0.2).abs() < 1e-12);
        skew.symmetrize();
        assert_eq!(skew.asymmetry(), 0.0);
        assert!((skew[(0, 1)] - 2.1).abs() < 1e-12);
    }

    #[test]
    fn row_and_col_access() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row(0), vec![1.0, 2.0]);
        assert_eq!(m.col(1), &[2.0, 4.0]);
    }

    #[test]
    fn matvec_zero_shortcut_is_correct() {
        let m = Mat::from_rows(&[&[1.0, 5.0], &[2.0, 6.0]]);
        assert_eq!(m.matvec(&[0.0, 1.0]), vec![5.0, 6.0]);
    }

    /// Scalar reference for the blocked `matvec`: one column at a time,
    /// ascending `j`, exact-zero coefficients skipped.
    fn matvec_scalar(m: &Mat, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; m.rows()];
        for (j, &xj) in x.iter().enumerate() {
            if crate::is_exact_zero(xj) {
                continue;
            }
            for (yi, &cij) in y.iter_mut().zip(m.col(j)) {
                *yi += cij * xj;
            }
        }
        y
    }

    #[test]
    fn matvec_blocked_matches_scalar_bitwise() {
        // Shapes straddling the 4-column block boundary, awkward values
        // (negative zero, subnormals, huge magnitudes) and zero
        // coefficients inside an otherwise full block.
        for (rows, cols) in [(1usize, 1usize), (3, 4), (5, 7), (2, 8), (4, 9), (6, 13)] {
            let m = Mat::from_fn(rows, cols, |i, j| {
                ((i * 31 + j * 17) as f64 - 20.0) * 1.7e3
                    + if (i + j) % 5 == 0 { 1e-310 } else { 0.0 }
            });
            let x: Vec<f64> = (0..cols)
                .map(|j| match j % 4 {
                    0 => (j as f64 + 1.0) * 0.37,
                    1 => -(j as f64) * 1.9e7,
                    2 => {
                        if j % 8 == 2 {
                            0.0
                        } else {
                            -0.0
                        }
                    }
                    _ => 1.0 / (j as f64 + 2.0),
                })
                .collect();
            let blocked = m.matvec(&x);
            let scalar = matvec_scalar(&m, &x);
            for (b, s) in blocked.iter().zip(&scalar) {
                assert_eq!(b.to_bits(), s.to_bits());
            }
        }
    }

    #[test]
    fn matvec_blocked_preserves_zero_skip_semantics() {
        // A -0.0 row accumulator must stay -0.0 when the only coefficient
        // that could touch it is an exact zero; an ∞ entry must not
        // produce NaN through a skipped 0·∞.
        let m = Mat::from_rows(&[&[f64::INFINITY, 1.0, 2.0, 3.0, 4.0]]);
        let y = m.matvec(&[0.0, 1.0, 1.0, 1.0, 1.0]);
        assert_eq!(y, vec![10.0]);
    }

    #[test]
    fn reshape_zeroed_reuses_and_clears() {
        let mut m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.reshape_zeroed(1, 3);
        assert_eq!((m.rows(), m.cols()), (1, 3));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        m.reshape_zeroed(2, 2);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn copy_from_matches_clone() {
        let src = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let mut dst = Mat::zeros(5, 5);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn col_block_mut_is_contiguous_columns() {
        let mut m = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let block = m.col_block_mut(1, 2);
        assert_eq!(block, &[2.0, 5.0, 3.0, 6.0]);
        block[0] = 9.0;
        assert_eq!(m[(0, 1)], 9.0);
    }
}
