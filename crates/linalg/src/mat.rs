//! A small dense, column-major matrix type.
//!
//! Kernel matrices in the GP are symmetric positive (semi-)definite and at
//! most a few hundred rows, so this type favours clarity over blocking or
//! SIMD. Column-major storage matches the access pattern of the Cholesky
//! factorisation in [`crate::chol`].

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense column-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    /// Column-major: element (i, j) lives at `data[j * rows + i]`.
    data: Vec<f64>,
}

impl Mat {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of order `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from row slices. All rows must have equal length.
    ///
    /// # Panics
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = Mat::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "from_rows: ragged input at row {i}");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Build an `n × n` matrix from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow column `j` as a contiguous slice (column-major payoff).
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutably borrow column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Copy row `i` out into a new vector.
    pub fn row(&self, i: usize) -> Vec<f64> {
        (0..self.cols).map(|j| self[(i, j)]).collect()
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            if crate::is_exact_zero(xj) {
                continue;
            }
            let col = self.col(j);
            for (yi, &cij) in y.iter_mut().zip(col) {
                *yi += cij * xj;
            }
        }
        y
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let mut out = Mat::zeros(self.rows, other.cols);
        for j in 0..other.cols {
            let y = self.matvec(other.col(j));
            out.col_mut(j).copy_from_slice(&y);
        }
        out
    }

    /// `self + scale * I` in place; used to add jitter / noise variance to
    /// kernel matrices.
    ///
    /// # Panics
    /// Panics on non-square matrices.
    pub fn add_diag(&mut self, scale: f64) {
        assert!(self.is_square(), "add_diag: matrix must be square");
        for i in 0..self.rows {
            self[(i, i)] += scale;
        }
    }

    /// Maximum absolute element; zero for empty matrices.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Symmetry defect `max |A - Aᵀ|`; zero for empty or perfectly
    /// symmetric matrices.
    pub fn asymmetry(&self) -> f64 {
        if !self.is_square() {
            return f64::INFINITY;
        }
        let mut worst = 0.0_f64;
        for j in 0..self.cols {
            for i in 0..j {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Force exact symmetry by averaging with the transpose. Cheap
    /// insurance before factorising a kernel matrix assembled from
    /// floating-point kernel evaluations.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize: matrix must be square");
        for j in 0..self.cols {
            for i in 0..j {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Flat data access (column-major), mostly for tests.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Split the storage at column `j`: read access to columns `0..j`
    /// (concatenated, column `k` at `k*rows..(k+1)*rows`) plus a mutable
    /// borrow of column `j` itself. This is the borrow shape a
    /// left-looking factorisation needs — update the current column from
    /// the already-finished ones without cloning either.
    #[inline]
    pub fn split_col_mut(&mut self, j: usize) -> (&[f64], &mut [f64]) {
        let n = self.rows;
        let (left, rest) = self.data.split_at_mut(j * n);
        (&*left, &mut rest[..n])
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &self.data[j * self.rows + i]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &mut self.data[j * self.rows + i]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_eye_shapes() {
        let z = Mat::zeros(2, 3);
        assert_eq!((z.rows(), z.cols()), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Mat::eye(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_rows_layout() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
        // Column-major storage.
        assert_eq!(m.as_slice(), &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        let _ = Mat::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn matvec_identity_and_general() {
        let i = Mat::eye(3);
        assert_eq!(i.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn matmul_against_hand_computation() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!((t.rows(), t.cols()), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn add_diag_and_symmetry() {
        let mut m = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        m.add_diag(0.5);
        assert_eq!(m[(0, 0)], 1.5);
        assert_eq!(m[(1, 1)], 1.5);
        assert_eq!(m.asymmetry(), 0.0);

        let mut skew = Mat::from_rows(&[&[1.0, 2.0], &[2.2, 1.0]]);
        assert!((skew.asymmetry() - 0.2).abs() < 1e-12);
        skew.symmetrize();
        assert_eq!(skew.asymmetry(), 0.0);
        assert!((skew[(0, 1)] - 2.1).abs() < 1e-12);
    }

    #[test]
    fn row_and_col_access() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row(0), vec![1.0, 2.0]);
        assert_eq!(m.col(1), &[2.0, 4.0]);
    }

    #[test]
    fn matvec_zero_shortcut_is_correct() {
        let m = Mat::from_rows(&[&[1.0, 5.0], &[2.0, 6.0]]);
        assert_eq!(m.matvec(&[0.0, 1.0]), vec![5.0, 6.0]);
    }
}
