//! Derivative-free optimisation: Nelder–Mead simplex with restarts.
//!
//! The GP marginal likelihood is cheap (one Cholesky per evaluation, on a
//! matrix with one row per profiling observation) but non-convex in the
//! kernel hyperparameters, so we run Nelder–Mead from several Latin-
//! hypercube starts in parallel and keep the best optimum.

use crate::sampling::{latin_hypercube, SampleRange};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Tunables for one Nelder–Mead run. The defaults follow the classic
/// (1, 2, 0.5, 0.5) reflection/expansion/contraction/shrink coefficients.
#[derive(Debug, Clone, Copy)]
pub struct NelderMeadOptions {
    /// Maximum number of function evaluations.
    pub max_evals: usize,
    /// Converged when the simplex's function-value spread falls below this.
    pub f_tol: f64,
    /// Converged when the simplex's largest vertex-to-best distance falls
    /// below this.
    pub x_tol: f64,
    /// Initial simplex edge length, relative to each coordinate's magnitude
    /// (absolute when the coordinate is zero).
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions { max_evals: 400, f_tol: 1e-10, x_tol: 1e-7, initial_step: 0.1 }
    }
}

/// Result of an optimisation run.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Number of objective evaluations consumed.
    pub evals: usize,
    /// Whether a tolerance-based convergence criterion fired (as opposed to
    /// running out of evaluations).
    pub converged: bool,
}

/// Minimise `f` starting from `x0` with the Nelder–Mead simplex method.
///
/// Objective values that are NaN are treated as `+inf`, so the simplex
/// retreats from invalid regions (e.g. hyperparameters that make a kernel
/// matrix unfactorable) instead of corrupting the ordering.
pub fn nelder_mead(
    mut f: impl FnMut(&[f64]) -> f64,
    x0: &[f64],
    opts: &NelderMeadOptions,
) -> OptResult {
    let n = x0.len();
    assert!(n > 0, "nelder_mead: empty start point");
    let clean = |v: f64| if v.is_nan() { f64::INFINITY } else { v };

    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| {
        *evals += 1;
        clean(f(x))
    };

    // Initial simplex: x0 plus a bump along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let f0 = eval(x0, &mut evals);
    simplex.push((x0.to_vec(), f0));
    for i in 0..n {
        let mut xi = x0.to_vec();
        let step = if crate::is_exact_zero(xi[i]) {
            opts.initial_step
        } else {
            opts.initial_step * xi[i].abs()
        };
        xi[i] += step;
        let fi = eval(&xi, &mut evals);
        simplex.push((xi, fi));
    }

    // The iteration loop is allocation-free: every trial point is built
    // into one of these reusable buffers with the exact element-wise
    // arithmetic the old `axpy(.., sub(..))` chain performed
    // (`c[i] + s·(a[i] − b[i])`, ascending i), so trajectories are
    // bit-identical to the allocating implementation. The GP fit calls
    // this tens of thousands of times per search; the per-iteration
    // `Vec` churn was measurable against the microsecond objective.
    let mut centroid = vec![0.0; n];
    let mut reflect = vec![0.0; n];
    let mut trial = vec![0.0; n];
    let mut pivot = vec![0.0; n];

    let mut converged = false;
    while evals < opts.max_evals {
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let (best_f, worst_f) = (simplex[0].1, simplex[n].1);
        let spread = (worst_f - best_f).abs();
        let max_dist = simplex[1..]
            .iter()
            .map(|(x, _)| {
                x.iter().zip(&simplex[0].0).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
            })
            .fold(0.0_f64, f64::max);
        // Both criteria must hold: a symmetric simplex (two vertices
        // straddling the optimum with equal values) has zero f-spread but
        // has not collapsed yet.
        if best_f.is_finite() && spread < opts.f_tol && max_dist < opts.x_tol {
            converged = true;
            break;
        }

        // Centroid of all but the worst vertex.
        centroid.fill(0.0);
        for (x, _) in &simplex[..n] {
            for (c, &v) in centroid.iter_mut().zip(x) {
                *c += v;
            }
        }
        for c in &mut centroid {
            *c /= n as f64;
        }

        pivot.copy_from_slice(&simplex[n].0);
        for i in 0..n {
            reflect[i] = centroid[i] + 1.0 * (centroid[i] - pivot[i]);
        }
        let f_r = eval(&reflect, &mut evals);

        if f_r < simplex[0].1 {
            // Try expanding further along the reflection direction.
            for i in 0..n {
                trial[i] = centroid[i] + 2.0 * (centroid[i] - pivot[i]);
            }
            let f_e = eval(&trial, &mut evals);
            if f_e < f_r {
                simplex[n].0.copy_from_slice(&trial);
                simplex[n].1 = f_e;
            } else {
                simplex[n].0.copy_from_slice(&reflect);
                simplex[n].1 = f_r;
            }
        } else if f_r < simplex[n - 1].1 {
            simplex[n].0.copy_from_slice(&reflect);
            simplex[n].1 = f_r;
        } else {
            // Contract toward the centroid, outside or inside.
            if f_r < simplex[n].1 {
                for i in 0..n {
                    trial[i] = centroid[i] + 0.5 * (reflect[i] - centroid[i]);
                }
            } else {
                for i in 0..n {
                    trial[i] = centroid[i] + 0.5 * (pivot[i] - centroid[i]);
                }
            }
            let f_c = eval(&trial, &mut evals);
            if f_c < simplex[n].1.min(f_r) {
                simplex[n].0.copy_from_slice(&trial);
                simplex[n].1 = f_c;
            } else {
                // Shrink everything toward the best vertex.
                pivot.copy_from_slice(&simplex[0].0);
                for v in simplex.iter_mut().skip(1) {
                    for (s, &b) in v.0.iter_mut().zip(&pivot) {
                        *s = b + 0.5 * (*s - b);
                    }
                    v.1 = eval(&v.0, &mut evals);
                }
            }
        }
    }

    simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
    let (x, fx) = simplex.swap_remove(0);
    OptResult { x, fx, evals, converged }
}

/// Minimise `f` from `n_starts` Latin-hypercube starting points within
/// `ranges`, running the local searches in parallel and returning the best.
///
/// Deterministic for a fixed `seed`.
pub fn multi_start_nelder_mead(
    f: impl Fn(&[f64]) -> f64 + Sync,
    ranges: &[SampleRange],
    n_starts: usize,
    seed: u64,
    opts: &NelderMeadOptions,
) -> OptResult {
    assert!(n_starts > 0, "multi_start_nelder_mead: need at least one start");
    multi_start_nelder_mead_with(|| |x: &[f64]| f(x), ranges, n_starts, &[], seed, opts)
}

/// Generalised multi-start: `make_f` builds a fresh (possibly stateful)
/// objective per local search — the shape a workspace-backed evaluator
/// with scratch buffers needs — and `extra_starts` are appended after the
/// `n_starts` Latin-hypercube points (e.g. a warm start carried over from
/// a previous fit).
///
/// The LHC draw depends only on `ranges`, `n_starts` and `seed`, so
/// appending extra starts never perturbs it. Results are reduced in start
/// order (ties resolved by position, independent of thread scheduling),
/// so the outcome is deterministic for a fixed `seed`.
pub fn multi_start_nelder_mead_with<G, F>(
    make_f: G,
    ranges: &[SampleRange],
    n_starts: usize,
    extra_starts: &[Vec<f64>],
    seed: u64,
    opts: &NelderMeadOptions,
) -> OptResult
where
    G: Fn() -> F + Sync,
    F: FnMut(&[f64]) -> f64,
{
    assert!(
        n_starts + extra_starts.len() > 0,
        "multi_start_nelder_mead_with: need at least one start"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut starts = latin_hypercube(ranges, n_starts, &mut rng);
    starts.extend(extra_starts.iter().cloned());
    starts
        .par_iter()
        .map(|x0| nelder_mead(make_f(), x0, opts))
        .min_by(|a, b| a.fx.total_cmp(&b.fx))
        .expect("at least one start")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_bowl() {
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2);
        let r = nelder_mead(f, &[0.0, 0.0], &NelderMeadOptions::default());
        assert!(r.converged, "should converge: {r:?}");
        assert!((r.x[0] - 3.0).abs() < 1e-4, "x0 = {}", r.x[0]);
        assert!((r.x[1] + 1.0).abs() < 1e-4, "x1 = {}", r.x[1]);
        assert!(r.fx < 1e-7);
    }

    #[test]
    fn rosenbrock_2d() {
        let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let opts = NelderMeadOptions { max_evals: 4000, ..Default::default() };
        let r = nelder_mead(f, &[-1.2, 1.0], &opts);
        assert!((r.x[0] - 1.0).abs() < 1e-3, "{r:?}");
        assert!((r.x[1] - 1.0).abs() < 1e-3, "{r:?}");
    }

    #[test]
    fn one_dimensional() {
        let f = |x: &[f64]| (x[0] - 0.5).powi(2) + 7.0;
        let r = nelder_mead(f, &[10.0], &NelderMeadOptions::default());
        assert!((r.x[0] - 0.5).abs() < 1e-4);
        assert!((r.fx - 7.0).abs() < 1e-8);
    }

    #[test]
    fn respects_eval_budget() {
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let opts =
            NelderMeadOptions { max_evals: 30, f_tol: 0.0, x_tol: 0.0, ..Default::default() };
        let r = nelder_mead(f, &[5.0, 5.0, 5.0, 5.0], &opts);
        // A full iteration can add a handful of evals past the check.
        assert!(r.evals <= 40, "evals = {}", r.evals);
        assert!(!r.converged);
    }

    #[test]
    fn nan_objective_is_retreated_from() {
        // NaN in the half-plane x > 1: optimum at x = 1 boundary region.
        let f = |x: &[f64]| {
            if x[0] > 1.0 {
                f64::NAN
            } else {
                (x[0] - 0.9).powi(2)
            }
        };
        let r = nelder_mead(f, &[0.0], &NelderMeadOptions::default());
        assert!(r.fx.is_finite());
        assert!((r.x[0] - 0.9).abs() < 1e-3, "{r:?}");
    }

    #[test]
    fn multi_start_escapes_local_minimum() {
        // Double well: local min near x=2 (f=0.5), global near x=-2 (f=0).
        let f = |x: &[f64]| {
            let a = (x[0] - 2.0).powi(2) + 0.5;
            let b = (x[0] + 2.0).powi(2);
            a.min(b)
        };
        let ranges = [SampleRange { lo: -5.0, hi: 5.0 }];
        let r = multi_start_nelder_mead(f, &ranges, 8, 42, &NelderMeadOptions::default());
        assert!((r.x[0] + 2.0).abs() < 1e-3, "{r:?}");
        assert!(r.fx < 1e-6);
    }

    #[test]
    fn multi_start_deterministic_for_seed() {
        let f = |x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] - 2.0).powi(2);
        let ranges = [SampleRange { lo: -3.0, hi: 3.0 }, SampleRange { lo: -3.0, hi: 3.0 }];
        let a = multi_start_nelder_mead(f, &ranges, 4, 7, &NelderMeadOptions::default());
        let b = multi_start_nelder_mead(f, &ranges, 4, 7, &NelderMeadOptions::default());
        assert_eq!(a.x, b.x);
        assert_eq!(a.fx, b.fx);
    }

    #[test]
    fn stateful_objective_is_accepted() {
        // FnMut objectives (e.g. workspace-backed evaluators) must work;
        // the eval count seen by the closure matches the reported one.
        let mut calls = 0usize;
        let r = nelder_mead(
            |x: &[f64]| {
                calls += 1;
                (x[0] - 2.0).powi(2)
            },
            &[0.0],
            &NelderMeadOptions::default(),
        );
        assert_eq!(calls, r.evals);
        assert!((r.x[0] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn factory_multi_start_matches_plain() {
        // The generalised entry point with no extra starts is the same
        // search as the original API — identical LHC draw, identical result.
        let f = |x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] - 2.0).powi(2);
        let ranges = [SampleRange { lo: -3.0, hi: 3.0 }, SampleRange { lo: -3.0, hi: 3.0 }];
        let opts = NelderMeadOptions::default();
        let a = multi_start_nelder_mead(f, &ranges, 4, 7, &opts);
        let b = multi_start_nelder_mead_with(|| f, &ranges, 4, &[], 7, &opts);
        assert_eq!(a.x, b.x);
        assert_eq!(a.fx, b.fx);
    }

    #[test]
    fn extra_start_can_win() {
        // Narrow global well at x=-4 that LHC starts from [0, 5] cannot
        // reach; a warm start placed inside it must be kept.
        let f = |x: &[f64]| {
            let wide = (x[0] - 3.0).powi(2) + 1.0;
            let well = 50.0 * (x[0] + 4.0).powi(2);
            wide.min(well)
        };
        let ranges = [SampleRange { lo: 0.0, hi: 5.0 }];
        let opts = NelderMeadOptions::default();
        let cold = multi_start_nelder_mead_with(|| f, &ranges, 4, &[], 11, &opts);
        assert!((cold.x[0] - 3.0).abs() < 1e-3, "{cold:?}");
        let warm = multi_start_nelder_mead_with(|| f, &ranges, 4, &[vec![-4.0]], 11, &opts);
        assert!((warm.x[0] + 4.0).abs() < 1e-3, "{warm:?}");
        assert!(warm.fx < 1e-6);
    }

    #[test]
    fn extra_starts_alone_suffice() {
        // n_starts = 0 with a seeded start point is a valid configuration.
        let f = |x: &[f64]| (x[0] - 0.25).powi(2);
        let r = multi_start_nelder_mead_with(
            || f,
            &[SampleRange { lo: 0.0, hi: 1.0 }],
            0,
            &[vec![0.9]],
            3,
            &NelderMeadOptions::default(),
        );
        assert!((r.x[0] - 0.25).abs() < 1e-4);
    }

    #[test]
    fn zero_start_coordinate_gets_absolute_step() {
        // Regression: a zero coordinate must still perturb the simplex.
        let f = |x: &[f64]| (x[0] - 0.05).powi(2);
        let r = nelder_mead(f, &[0.0], &NelderMeadOptions::default());
        assert!((r.x[0] - 0.05).abs() < 1e-5);
    }
}
