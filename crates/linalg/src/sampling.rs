//! Space-filling sampling for optimiser restarts and BO initialisation.

use rand::seq::SliceRandom;
use rand::Rng;

/// Inclusive-exclusive range `[lo, hi)` for one sampled dimension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleRange {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (exclusive; equal to `lo` yields a constant dimension).
    pub hi: f64,
}

impl SampleRange {
    /// Construct, asserting `lo <= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "SampleRange: lo={lo} > hi={hi}");
        SampleRange { lo, hi }
    }

    /// Width of the range.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Latin-hypercube sample of `n` points over the given per-dimension
/// ranges: each dimension is cut into `n` equal strata, each stratum is hit
/// exactly once, and strata are matched across dimensions by independent
/// random permutations.
///
/// Returns `n` points of dimension `ranges.len()`.
pub fn latin_hypercube<R: Rng>(ranges: &[SampleRange], n: usize, rng: &mut R) -> Vec<Vec<f64>> {
    if n == 0 || ranges.is_empty() {
        return vec![Vec::new(); n];
    }
    let d = ranges.len();
    // One shuffled stratum order per dimension.
    let mut strata: Vec<Vec<usize>> = Vec::with_capacity(d);
    for _ in 0..d {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        strata.push(order);
    }
    (0..n)
        .map(|i| {
            (0..d)
                .map(|j| {
                    let stratum = strata[j][i] as f64;
                    let jitter: f64 = rng.gen::<f64>();
                    let unit = (stratum + jitter) / n as f64;
                    ranges[j].lo + unit * ranges[j].width()
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn points_inside_ranges() {
        let mut rng = SmallRng::seed_from_u64(1);
        let ranges = [SampleRange::new(-1.0, 1.0), SampleRange::new(10.0, 20.0)];
        let pts = latin_hypercube(&ranges, 50, &mut rng);
        assert_eq!(pts.len(), 50);
        for p in &pts {
            assert_eq!(p.len(), 2);
            assert!((-1.0..1.0).contains(&p[0]), "{p:?}");
            assert!((10.0..20.0).contains(&p[1]), "{p:?}");
        }
    }

    #[test]
    fn stratification_holds_per_dimension() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 20;
        let ranges = [SampleRange::new(0.0, 1.0)];
        let pts = latin_hypercube(&ranges, n, &mut rng);
        // Exactly one point per stratum [k/n, (k+1)/n).
        let mut seen = vec![false; n];
        for p in &pts {
            let k = (p[0] * n as f64).floor() as usize;
            assert!(!seen[k], "stratum {k} hit twice");
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn degenerate_cases() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(latin_hypercube(&[], 5, &mut rng).iter().all(|p| p.is_empty()));
        assert!(latin_hypercube(&[SampleRange::new(0.0, 1.0)], 0, &mut rng).is_empty());
        // Zero-width range yields the constant.
        let pts = latin_hypercube(&[SampleRange::new(2.0, 2.0)], 4, &mut rng);
        assert!(pts.iter().all(|p| p[0] == 2.0));
    }

    #[test]
    #[should_panic(expected = "lo=")]
    fn inverted_range_panics() {
        let _ = SampleRange::new(1.0, 0.0);
    }
}
