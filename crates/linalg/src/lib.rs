#![warn(missing_docs)]

//! Dense linear algebra, statistics and derivative-free optimisation
//! primitives for the MLCD / HeterBO reproduction.
//!
//! The Gaussian-process machinery in `mlcd-gp` needs a small but solid
//! numerical core: a dense matrix type, a Cholesky factorisation robust to
//! near-singular kernel matrices, triangular solves, log-determinants, a
//! Nelder–Mead simplex optimiser for marginal-likelihood maximisation, and
//! accurate standard-normal pdf/cdf for Expected-Improvement tails.
//!
//! Everything here is implemented from scratch (the reproduction brief rules
//! out external linear-algebra / BO crates) and kept deliberately simple:
//! the matrices involved are at most a few hundred rows (one per profiling
//! observation), so clarity and numerical robustness beat blocked kernels.
//!
//! # Quick example
//!
//! ```
//! use mlcd_linalg::{Mat, Chol};
//!
//! // Solve the SPD system A x = b via Cholesky.
//! let a = Mat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let chol = Chol::factor(&a).unwrap();
//! let x = chol.solve(&[1.0, 2.0]);
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! ```

pub mod chol;
pub mod mat;
pub mod optimize;
pub mod sampling;
pub mod stats;

pub use chol::{Chol, CholError, CholWorkspace};
pub use mat::Mat;
pub use optimize::{
    multi_start_nelder_mead, multi_start_nelder_mead_with, nelder_mead, NelderMeadOptions,
    OptResult,
};
pub use sampling::{latin_hypercube, SampleRange};
pub use stats::{bits_eq, is_exact_zero, norm_cdf, norm_pdf, norm_quantile, OnlineStats, Summary};

/// Numerical tolerance used across the crate for "this should be zero"
/// comparisons in tests and assertions.
pub const EPS: f64 = 1e-10;

/// Dot product of two equal-length slices.
///
/// Panics in debug builds if the lengths differ; in release the shorter
/// length governs (as with `zip`), which is never what you want — callers
/// must pass equal lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `a - b`, element-wise, as a new vector.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// `a + s * b`, element-wise, as a new vector (axpy).
#[inline]
pub fn axpy(a: &[f64], s: f64, b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "axpy: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + s * y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < EPS);
    }

    #[test]
    fn sub_axpy() {
        assert_eq!(sub(&[3.0, 5.0], &[1.0, 2.0]), vec![2.0, 3.0]);
        assert_eq!(axpy(&[1.0, 1.0], 2.0, &[3.0, 4.0]), vec![7.0, 9.0]);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
        assert!(sub(&[], &[]).is_empty());
    }
}
