//! Cholesky factorisation with jitter escalation, triangular solves and
//! log-determinants.
//!
//! Kernel matrices assembled from nearly-duplicate inputs (common when a BO
//! searcher re-probes neighbouring deployments) are numerically
//! semi-definite. [`Chol::factor_with_jitter`] retries with exponentially
//! growing diagonal jitter, which is the standard GP-library remedy.

// lint: allow(hot-index, file) — factorisation kernels index columns by loop variables bounded
// by the matrix order (i, j, k ≤ n checked on entry); replacing slice indexing with checked
// `get` would defeat bounds-check elision and the blocked update's vectorisation.

use crate::mat::Mat;

/// Why a factorisation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CholError {
    /// The input matrix is not square.
    NotSquare {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
    /// A non-positive pivot was hit at the given index even after the
    /// maximum jitter was applied.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot_index: usize,
        /// Its (non-positive) value.
        pivot_value: f64,
    },
    /// The input contained NaN or infinity.
    NotFinite,
}

impl std::fmt::Display for CholError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholError::NotSquare { rows, cols } => {
                write!(f, "cholesky: matrix is {rows}x{cols}, not square")
            }
            CholError::NotPositiveDefinite { pivot_index, pivot_value } => {
                write!(f, "cholesky: non-positive pivot {pivot_value:e} at index {pivot_index}")
            }
            CholError::NotFinite => write!(f, "cholesky: matrix contains non-finite entries"),
        }
    }
}

impl std::error::Error for CholError {}

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Chol {
    l: Mat,
    /// Jitter that was actually added to the diagonal to make the
    /// factorisation succeed (0.0 when none was needed).
    jitter: f64,
}

/// Factor the lower triangle of `a` (plus `jitter` on the diagonal) into
/// `out`, which must already be `n×n`.
///
/// Each column of `a` is copied into `out` as the factorisation reaches
/// it, with the jitter added to the diagonal entry *during the copy* — so
/// a retry with a larger jitter restarts from the original matrix exactly
/// (no accumulated bumping) without `a` ever being cloned or mutated.
/// The strictly upper triangle of `a` is never read; `out`'s is zeroed on
/// success. Callers are responsible for rejecting non-square or
/// non-finite input.
fn factor_into(a: &Mat, jitter: f64, out: &mut Mat) -> Result<(), CholError> {
    let n = a.rows();
    debug_assert!(a.is_square());
    debug_assert_eq!((out.rows(), out.cols()), (n, n));
    for j in 0..n {
        {
            let src = a.col(j);
            let dst = out.col_mut(j);
            dst[j..n].copy_from_slice(&src[j..n]);
            dst[j] = src[j] + jitter;
        }
        // Left-looking update from the already-factored columns, four
        // source columns per pass over the target. Each element still
        // receives its subtractions one `k` at a time in ascending order,
        // so the result is bit-identical to the classic entry-indexed
        // loop — the blocking only cuts loop overhead and memory passes.
        let (done, colj) = out.split_col_mut(j);
        let target = &mut colj[j..];
        let mut k = 0;
        while k + 4 <= j {
            let block = &done[k * n..(k + 4) * n];
            let (c0, rest) = block.split_at(n);
            let (c1, rest) = rest.split_at(n);
            let (c2, c3) = rest.split_at(n);
            let (l0, l1, l2, l3) = (c0[j], c1[j], c2[j], c3[j]);
            let lanes = c0[j..].iter().zip(&c1[j..]).zip(&c2[j..]).zip(&c3[j..]);
            for (x, (((&a0, &a1), &a2), &a3)) in target.iter_mut().zip(lanes) {
                let mut v = *x;
                v -= a0 * l0;
                v -= a1 * l1;
                v -= a2 * l2;
                v -= a3 * l3;
                *x = v;
            }
            k += 4;
        }
        for k in k..j {
            let colk = &done[k * n..(k + 1) * n];
            let ljk = colk[j];
            if crate::is_exact_zero(ljk) {
                continue;
            }
            for (x, &lik) in target.iter_mut().zip(&colk[j..]) {
                *x -= lik * ljk;
            }
        }
        let pivot = colj[j];
        if pivot <= 0.0 || !pivot.is_finite() {
            return Err(CholError::NotPositiveDefinite { pivot_index: j, pivot_value: pivot });
        }
        let root = pivot.sqrt();
        for x in &mut colj[j..] {
            *x /= root;
        }
    }
    // Zero the strictly upper triangle so `out` really is lower-triangular.
    for j in 1..n {
        for x in &mut out.col_mut(j)[..j] {
            *x = 0.0;
        }
    }
    Ok(())
}

/// Jitter-escalation driver shared by [`Chol::factor_with_jitter`] and
/// [`CholWorkspace`]: validate once, then retry `factor_into` with
/// `0, base, 10·base, …` on the diagonal. Resizes `out` if its order
/// doesn't match (allocation-free otherwise) and returns the jitter that
/// succeeded.
///
/// With `check_finite` off the upfront whole-matrix scan is skipped:
/// non-finite input still fails (a NaN or ∞ anywhere in the lower
/// triangle propagates into the pivot of its row, which the pivot check
/// rejects) but surfaces as `NotPositiveDefinite` rather than
/// `NotFinite`. Hot paths whose input is finite by construction use that
/// mode.
fn factor_with_jitter_into(
    a: &Mat,
    base: f64,
    max_tries: usize,
    out: &mut Mat,
    check_finite: bool,
) -> Result<f64, CholError> {
    if !a.is_square() {
        return Err(CholError::NotSquare { rows: a.rows(), cols: a.cols() });
    }
    if check_finite && a.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(CholError::NotFinite);
    }
    let n = a.rows();
    if out.rows() != n || out.cols() != n {
        *out = Mat::zeros(n, n);
    }
    let diag_scale =
        if n == 0 { 1.0 } else { (0..n).map(|i| a[(i, i)].abs()).sum::<f64>() / n as f64 };
    let diag_scale = if diag_scale > 0.0 { diag_scale } else { 1.0 };

    let mut last_err = CholError::NotPositiveDefinite { pivot_index: 0, pivot_value: 0.0 };
    for attempt in 0..=max_tries {
        let jitter =
            if attempt == 0 { 0.0 } else { base * diag_scale * 10f64.powi(attempt as i32 - 1) };
        match factor_into(a, jitter, out) {
            Ok(()) => return Ok(jitter),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

/// Forward substitution `L y = b`, overwriting `b` with `y`. The
/// ascending elimination order matches the historical entry-indexed loop,
/// so results are bit-identical to it (the slice zip just lets the update
/// vectorise).
fn solve_lower_in_place(l: &Mat, y: &mut [f64]) {
    let n = l.rows();
    for j in 0..n {
        let col = l.col(j);
        y[j] /= col[j];
        let yj = y[j];
        for (yi, &lij) in y[j + 1..].iter_mut().zip(&col[j + 1..]) {
            *yi -= lij * yj;
        }
    }
}

/// Blocked forward substitution `L Y = B` in place on `y`, four
/// right-hand sides per pass over the factor. Within a pass the four
/// columns are eliminated in an interleaved inner loop, but each column's
/// own operation sequence (divide pivot, subtract updates in ascending
/// row order) is exactly [`solve_lower_in_place`]'s, so every column is
/// bit-identical to a one-at-a-time solve. The remainder (`cols % 4`)
/// runs the scalar path.
fn solve_lower_multi_in_place(l: &Mat, y: &mut Mat) {
    let n = l.rows();
    debug_assert_eq!(y.rows(), n);
    let cols = y.cols();
    let mut c = 0;
    while c + 4 <= cols {
        let block = y.col_block_mut(c, 4);
        let (y0, rest) = block.split_at_mut(n);
        let (y1, rest) = rest.split_at_mut(n);
        let (y2, y3) = rest.split_at_mut(n);
        for j in 0..n {
            let lcol = l.col(j);
            let ljj = lcol[j];
            y0[j] /= ljj;
            y1[j] /= ljj;
            y2[j] /= ljj;
            y3[j] /= ljj;
            let (v0, v1, v2, v3) = (y0[j], y1[j], y2[j], y3[j]);
            let ltail = &lcol[j + 1..];
            let tails = y0[j + 1..]
                .iter_mut()
                .zip(&mut y1[j + 1..])
                .zip(&mut y2[j + 1..])
                .zip(&mut y3[j + 1..]);
            for ((((t0, t1), t2), t3), &lij) in tails.zip(ltail) {
                *t0 -= lij * v0;
                *t1 -= lij * v1;
                *t2 -= lij * v2;
                *t3 -= lij * v3;
            }
        }
        c += 4;
    }
    for c in c..cols {
        solve_lower_in_place(l, y.col_mut(c));
    }
}

/// Back substitution `Lᵀ x = y`, overwriting `y` with `x`. Bit-identical
/// to the entry-indexed formulation, as above.
fn solve_upper_in_place(l: &Mat, x: &mut [f64]) {
    let n = l.rows();
    for j in (0..n).rev() {
        let col = l.col(j);
        let mut s = x[j];
        for (&lij, &xi) in col[j + 1..].iter().zip(&x[j + 1..]) {
            s -= lij * xi;
        }
        x[j] = s / col[j];
    }
}

/// `log |A| = 2 Σ log L_ii` for a lower-triangular factor.
fn log_det_of(l: &Mat) -> f64 {
    (0..l.rows()).map(|i| l[(i, i)].ln()).sum::<f64>() * 2.0
}

impl Chol {
    /// Factor an SPD matrix. Fails on the first non-positive pivot.
    pub fn factor(a: &Mat) -> Result<Self, CholError> {
        Self::factor_with_jitter(a, 0.0, 0)
    }

    /// Factor with escalating jitter: try `0, base, 10·base, …` added to the
    /// diagonal until the factorisation succeeds or `max_tries` is exhausted.
    ///
    /// `base` is scaled by the mean diagonal magnitude so the jitter is
    /// relative to the matrix's own scale. The input is never cloned: each
    /// retry re-copies columns into the one output buffer with the new
    /// jitter applied to the diagonal on the fly.
    pub fn factor_with_jitter(a: &Mat, base: f64, max_tries: usize) -> Result<Self, CholError> {
        let mut l = Mat::zeros(0, 0);
        let jitter = factor_with_jitter_into(a, base, max_tries, &mut l, true)?;
        Ok(Chol { l, jitter })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Mat {
        &self.l
    }

    /// Diagonal jitter that was added to make the factorisation succeed.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.l.rows()
    }

    /// Solve `L y = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.order(), "solve_lower: dimension mismatch");
        let mut y = b.to_vec();
        solve_lower_in_place(&self.l, &mut y);
        y
    }

    /// Solve `L Y = B` for every column of `B` at once (blocked forward
    /// substitution).
    ///
    /// The factor's column `j` is streamed once per pivot and applied to
    /// all right-hand sides while it is hot in cache, instead of
    /// re-traversing the whole factor for each RHS as repeated
    /// [`solve_lower`](Self::solve_lower) calls would. Per column the
    /// arithmetic (order of operations included) is identical to
    /// `solve_lower`, so results are bit-for-bit equal to the one-at-a-time
    /// path.
    pub fn solve_lower_multi(&self, b: &Mat) -> Mat {
        assert_eq!(b.rows(), self.order(), "solve_lower_multi: dimension mismatch");
        let mut y = b.clone();
        solve_lower_multi_in_place(&self.l, &mut y);
        y
    }

    /// [`solve_lower_multi`](Self::solve_lower_multi) into a caller-owned
    /// buffer: `out` becomes `Y` with `L Y = B`, reusing its allocation
    /// whenever `B`'s elements fit its capacity. Bit-identical to the
    /// allocating path (same blocked elimination on a copy of `b`).
    pub fn solve_lower_multi_into(&self, b: &Mat, out: &mut Mat) {
        assert_eq!(b.rows(), self.order(), "solve_lower_multi_into: dimension mismatch");
        out.copy_from(b);
        solve_lower_multi_in_place(&self.l, out);
    }

    /// Solve `Lᵀ x = y` (back substitution).
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.order(), "solve_upper: dimension mismatch");
        let mut x = y.to_vec();
        solve_upper_in_place(&self.l, &mut x);
        x
    }

    /// Solve `A x = b` where `A = L Lᵀ`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// `log |A| = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        log_det_of(&self.l)
    }

    /// Quadratic form `bᵀ A⁻¹ b` computed stably as `‖L⁻¹ b‖²`.
    pub fn quad_form(&self, b: &[f64]) -> f64 {
        let y = self.solve_lower(b);
        crate::dot(&y, &y)
    }

    /// Extend the factorisation by one row/column in `O(n²)`: given
    /// `A' = [[A, k], [kᵀ, κ]]`, the new factor row is `l = L⁻¹k` and the
    /// new pivot `λ = √(κ − ‖l‖²)`.
    ///
    /// This is the fast path for Bayesian optimisation, where a kernel
    /// matrix grows by exactly one observation per step — a full refactor
    /// would cost `O(n³)`.
    pub fn extend(&self, k: &[f64], kappa: f64) -> Result<Chol, CholError> {
        let n = self.order();
        assert_eq!(k.len(), n, "extend: cross-covariance has wrong length");
        if k.iter().any(|v| !v.is_finite()) || !kappa.is_finite() {
            return Err(CholError::NotFinite);
        }
        let l_new = self.solve_lower(k);
        let pivot_sq = kappa - crate::dot(&l_new, &l_new);
        if pivot_sq <= 0.0 || !pivot_sq.is_finite() {
            return Err(CholError::NotPositiveDefinite { pivot_index: n, pivot_value: pivot_sq });
        }
        let lambda = pivot_sq.sqrt();
        let mut l = Mat::zeros(n + 1, n + 1);
        for j in 0..n {
            for i in j..n {
                l[(i, j)] = self.l[(i, j)];
            }
            l[(n, j)] = l_new[j];
        }
        l[(n, n)] = lambda;
        Ok(Chol { l, jitter: self.jitter })
    }
}

/// Reusable factorisation state for hot loops.
///
/// [`Chol`] allocates a fresh factor per call; a `CholWorkspace` re-factors
/// into the same buffer, so repeated factorisations of same-order matrices
/// (the marginal-likelihood optimiser does thousands per fit) are
/// allocation-free. Numerically it runs the exact code path `Chol` does —
/// factor, solves and `log_det` are bit-identical.
///
/// After a failed [`factor_with_jitter`](Self::factor_with_jitter) the
/// buffer holds partial garbage; the accessors are only meaningful after
/// the most recent factorisation succeeded.
#[derive(Debug, Clone)]
pub struct CholWorkspace {
    l: Mat,
    jitter: f64,
}

impl Default for CholWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl CholWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        CholWorkspace { l: Mat::zeros(0, 0), jitter: 0.0 }
    }

    /// Factor `a` with escalating jitter into the internal buffer (see
    /// [`Chol::factor_with_jitter`] for the retry policy). Allocation-free
    /// whenever `a` has the same order as the previous call.
    pub fn factor_with_jitter(
        &mut self,
        a: &Mat,
        base: f64,
        max_tries: usize,
    ) -> Result<(), CholError> {
        self.jitter = factor_with_jitter_into(a, base, max_tries, &mut self.l, true)?;
        Ok(())
    }

    /// Like [`factor_with_jitter`](Self::factor_with_jitter) but without
    /// the upfront whole-matrix finiteness scan, for callers whose input
    /// is finite by construction (e.g. a kernel matrix assembled from
    /// bounded hyperparameters). Only the lower triangle of `a` is read —
    /// the strict upper triangle may hold stale values. Non-finite input
    /// is still rejected, via the pivot checks, but reports
    /// [`CholError::NotPositiveDefinite`] instead of
    /// [`CholError::NotFinite`].
    pub fn factor_with_jitter_assume_finite(
        &mut self,
        a: &Mat,
        base: f64,
        max_tries: usize,
    ) -> Result<(), CholError> {
        self.jitter = factor_with_jitter_into(a, base, max_tries, &mut self.l, false)?;
        Ok(())
    }

    /// The lower-triangular factor of the last successful factorisation.
    pub fn l(&self) -> &Mat {
        &self.l
    }

    /// Diagonal jitter added by the last successful factorisation.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.l.rows()
    }

    /// `log |A| = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        log_det_of(&self.l)
    }

    /// Solve `A x = b` in place (forward then back substitution on `b`).
    ///
    /// # Panics
    /// Panics if `b.len()` differs from the factored order.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        assert_eq!(b.len(), self.order(), "solve_in_place: dimension mismatch");
        solve_lower_in_place(&self.l, b);
        solve_upper_in_place(&self.l, b);
    }

    /// Quadratic form `bᵀ A⁻¹ b` computed as `‖L⁻¹ b‖²`, overwriting `b`
    /// with the forward-substitution result. Skips the back substitution
    /// that a solve-then-dot formulation would pay for; the two agree to
    /// rounding (the sum of squares is at least as stable).
    ///
    /// # Panics
    /// Panics if `b.len()` differs from the factored order.
    pub fn quad_form_in_place(&self, b: &mut [f64]) -> f64 {
        assert_eq!(b.len(), self.order(), "quad_form_in_place: dimension mismatch");
        solve_lower_in_place(&self.l, b);
        b.iter().map(|v| v * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EPS;

    fn spd3() -> Mat {
        Mat::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]])
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let c = Chol::factor(&a).unwrap();
        let recon = c.l().matmul(&c.l().transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
        assert_eq!(c.jitter(), 0.0);
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let c = Chol::factor(&a).unwrap();
        let b = [1.0, -2.0, 0.5];
        let x = c.solve(&b);
        let back = a.matvec(&x);
        for k in 0..3 {
            assert!((back[k] - b[k]).abs() < 1e-10, "component {k}");
        }
    }

    #[test]
    fn log_det_matches_known_value() {
        // det(diag(2, 3, 4) ) = 24
        let a = Mat::from_rows(&[&[2.0, 0.0, 0.0], &[0.0, 3.0, 0.0], &[0.0, 0.0, 4.0]]);
        let c = Chol::factor(&a).unwrap();
        assert!((c.log_det() - 24f64.ln()).abs() < EPS);
    }

    #[test]
    fn quad_form_identity() {
        let c = Chol::factor(&Mat::eye(4)).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        assert!((c.quad_form(&b) - 30.0).abs() < EPS);
    }

    #[test]
    fn indefinite_rejected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        match Chol::factor(&a) {
            Err(CholError::NotPositiveDefinite { pivot_index, .. }) => assert_eq!(pivot_index, 1),
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn not_square_rejected() {
        let a = Mat::zeros(2, 3);
        assert!(matches!(Chol::factor(&a), Err(CholError::NotSquare { .. })));
    }

    #[test]
    fn nan_rejected() {
        let mut a = Mat::eye(2);
        a[(0, 1)] = f64::NAN;
        assert!(matches!(Chol::factor(&a), Err(CholError::NotFinite)));
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // Rank-1 Gram matrix: vvᵀ with v = (1, 1, 1) is PSD but singular.
        let a = Mat::from_fn(3, 3, |_, _| 1.0);
        assert!(Chol::factor(&a).is_err());
        let c = Chol::factor_with_jitter(&a, 1e-10, 12).unwrap();
        assert!(c.jitter() > 0.0);
        // Factor must still approximately reconstruct A + jitter*I.
        let recon = c.l().matmul(&c.l().transpose());
        for i in 0..3 {
            assert!((recon[(i, i)] - (1.0 + c.jitter())).abs() < 1e-8);
        }
    }

    #[test]
    fn jitter_zero_when_unneeded() {
        let c = Chol::factor_with_jitter(&spd3(), 1e-10, 8).unwrap();
        assert_eq!(c.jitter(), 0.0);
    }

    #[test]
    fn extend_matches_full_refactor() {
        let a3 = spd3();
        // Grow to a 4×4 SPD matrix by appending a compatible row/col.
        let k = [0.5, -0.2, 0.9];
        let kappa = 2.5;
        let a4 = Mat::from_fn(4, 4, |i, j| match (i, j) {
            (3, 3) => kappa,
            (3, j2) => k[j2],
            (i2, 3) => k[i2],
            _ => a3[(i, j)],
        });
        let full = Chol::factor(&a4).unwrap();
        let inc = Chol::factor(&a3).unwrap().extend(&k, kappa).unwrap();
        for i in 0..4 {
            for j in 0..=i {
                assert!(
                    (full.l()[(i, j)] - inc.l()[(i, j)]).abs() < 1e-12,
                    "L[{i}][{j}]: {} vs {}",
                    full.l()[(i, j)],
                    inc.l()[(i, j)]
                );
            }
        }
        // Solves agree too.
        let b = [1.0, 2.0, 3.0, 4.0];
        let x_full = full.solve(&b);
        let x_inc = inc.solve(&b);
        for t in 0..4 {
            assert!((x_full[t] - x_inc[t]).abs() < 1e-10);
        }
        assert!((full.log_det() - inc.log_det()).abs() < 1e-12);
    }

    #[test]
    fn extend_rejects_breaking_spd() {
        let c = Chol::factor(&Mat::eye(2)).unwrap();
        // κ too small: the extended matrix is indefinite.
        let err = c.extend(&[0.9, 0.9], 1.0).unwrap_err();
        assert!(matches!(err, CholError::NotPositiveDefinite { pivot_index: 2, .. }));
        assert!(matches!(c.extend(&[f64::NAN, 0.0], 1.0), Err(CholError::NotFinite)));
    }

    #[test]
    fn extend_from_empty() {
        let c = Chol::factor(&Mat::zeros(0, 0)).unwrap();
        let c1 = c.extend(&[], 4.0).unwrap();
        assert_eq!(c1.order(), 1);
        assert!((c1.l()[(0, 0)] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn empty_matrix_ok() {
        let c = Chol::factor(&Mat::zeros(0, 0)).unwrap();
        assert_eq!(c.log_det(), 0.0);
        assert!(c.solve(&[]).is_empty());
    }

    #[test]
    fn solve_lower_multi_matches_single_columns() {
        let a = spd3();
        let c = Chol::factor(&a).unwrap();
        let b = Mat::from_rows(&[&[0.3, 1.0, -2.0], &[1.0, 0.0, 4.5], &[-0.7, 2.2, 0.1]]);
        let y = c.solve_lower_multi(&b);
        for col in 0..3 {
            let single = c.solve_lower(b.col(col));
            assert_eq!(y.col(col), &single[..], "column {col} must be bit-identical");
        }
    }

    #[test]
    fn solve_lower_multi_blocked_matches_single_columns() {
        // Widths straddling the 4-RHS block boundary: the blocked path
        // must stay bit-identical to one-at-a-time forward substitution.
        let a = spd3();
        let c = Chol::factor(&a).unwrap();
        for cols in [1usize, 4, 5, 8, 11] {
            let b = Mat::from_fn(3, cols, |i, j| ((i * 7 + j * 13) as f64 - 9.0) * 0.83);
            let y = c.solve_lower_multi(&b);
            for col in 0..cols {
                let single = c.solve_lower(b.col(col));
                for (yv, sv) in y.col(col).iter().zip(&single) {
                    assert_eq!(yv.to_bits(), sv.to_bits(), "col {col} of width {cols}");
                }
            }
        }
    }

    #[test]
    fn solve_lower_multi_into_matches_allocating_path() {
        let c = Chol::factor(&spd3()).unwrap();
        let mut out = Mat::zeros(0, 0);
        for cols in [6usize, 2, 9] {
            let b = Mat::from_fn(3, cols, |i, j| (i as f64 + 1.0) * 0.4 - j as f64 * 1.3);
            let y = c.solve_lower_multi(&b);
            c.solve_lower_multi_into(&b, &mut out);
            assert_eq!(out.as_slice(), y.as_slice());
        }
    }

    #[test]
    fn solve_lower_multi_empty_rhs() {
        let c = Chol::factor(&spd3()).unwrap();
        let y = c.solve_lower_multi(&Mat::zeros(3, 0));
        assert_eq!((y.rows(), y.cols()), (3, 0));
    }

    #[test]
    fn workspace_matches_chol_bitwise() {
        // Same factor, jitter, log-det and solve as the allocating path —
        // bit for bit, including a case that needs jitter escalation.
        let mut ws = CholWorkspace::new();
        for a in [spd3(), Mat::from_fn(3, 3, |_, _| 1.0)] {
            let c = Chol::factor_with_jitter(&a, 1e-10, 12).unwrap();
            ws.factor_with_jitter(&a, 1e-10, 12).unwrap();
            assert_eq!(ws.l().as_slice(), c.l().as_slice());
            assert_eq!(ws.jitter(), c.jitter());
            assert_eq!(ws.log_det(), c.log_det());
            let b = [1.0, -2.0, 0.5];
            let mut x = b;
            ws.solve_in_place(&mut x);
            assert_eq!(x.to_vec(), c.solve(&b));
        }
    }

    #[test]
    fn workspace_reuse_across_orders() {
        // Shrinking and growing between calls must re-size correctly and
        // leave no stale state behind.
        let mut ws = CholWorkspace::new();
        for n in [4usize, 2, 6, 2] {
            let a = Mat::from_fn(n, n, |i, j| if i == j { 3.0 } else { 0.5 });
            ws.factor_with_jitter(&a, 1e-12, 4).unwrap();
            let c = Chol::factor_with_jitter(&a, 1e-12, 4).unwrap();
            assert_eq!(ws.order(), n);
            assert_eq!(ws.l().as_slice(), c.l().as_slice());
        }
    }

    #[test]
    fn assume_finite_matches_checked_and_still_rejects_nan() {
        let mut checked = CholWorkspace::new();
        let mut fast = CholWorkspace::new();
        checked.factor_with_jitter(&spd3(), 1e-12, 4).unwrap();
        fast.factor_with_jitter_assume_finite(&spd3(), 1e-12, 4).unwrap();
        assert_eq!(fast.l().as_slice(), checked.l().as_slice());
        assert_eq!(fast.jitter(), checked.jitter());

        // A NaN in the lower triangle must still fail — through the pivot
        // check, so the error is NotPositiveDefinite rather than NotFinite.
        let mut bad = spd3();
        bad[(2, 1)] = f64::NAN;
        assert!(matches!(
            fast.factor_with_jitter_assume_finite(&bad, 0.0, 0),
            Err(CholError::NotPositiveDefinite { .. })
        ));
        // And a stale upper triangle is ignored.
        let mut stale = spd3();
        stale[(0, 2)] = f64::INFINITY;
        fast.factor_with_jitter_assume_finite(&stale, 1e-12, 4).unwrap();
        assert_eq!(fast.l().as_slice(), checked.l().as_slice());
    }

    #[test]
    fn workspace_quad_form_matches_chol() {
        let mut ws = CholWorkspace::new();
        ws.factor_with_jitter(&spd3(), 1e-12, 4).unwrap();
        let c = Chol::factor(&spd3()).unwrap();
        let b = [1.0, -2.0, 0.5];
        let mut y = b;
        // Same `‖L⁻¹b‖²` formulation on the same factor: bit-identical.
        assert_eq!(ws.quad_form_in_place(&mut y), c.quad_form(&b));
        assert_eq!(y.to_vec(), c.solve_lower(&b));
    }

    #[test]
    fn workspace_recovers_after_failure() {
        let mut ws = CholWorkspace::new();
        let bad = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // indefinite
        assert!(ws.factor_with_jitter(&bad, 0.0, 0).is_err());
        ws.factor_with_jitter(&spd3(), 1e-12, 4).unwrap();
        let c = Chol::factor(&spd3()).unwrap();
        assert_eq!(ws.l().as_slice(), c.l().as_slice());
        assert_eq!(ws.jitter(), 0.0);
    }

    #[test]
    fn solve_lower_upper_are_inverses_of_l() {
        let a = spd3();
        let c = Chol::factor(&a).unwrap();
        let b = [0.3, 1.0, -0.7];
        let y = c.solve_lower(&b);
        let back = c.l().matvec(&y);
        for k in 0..3 {
            assert!((back[k] - b[k]).abs() < 1e-12);
        }
        let x = c.solve_upper(&b);
        let back = c.l().transpose().matvec(&x);
        for k in 0..3 {
            assert!((back[k] - b[k]).abs() < 1e-12);
        }
    }
}
