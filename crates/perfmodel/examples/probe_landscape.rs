//! Developer diagnostic: print the ground-truth performance landscape —
//! the global optimum and per-type scale-out peaks for each preset job.
//! Useful when calibrating the model constants.
//!
//! ```text
//! cargo run -p mlcd-perfmodel --example probe_landscape --release
//! ```

use mlcd_cloudsim::InstanceType;
use mlcd_perfmodel::*;
fn main() {
    let m = ThroughputModel::default();
    for (name, job) in [
        ("resnet", TrainingJob::resnet_cifar10()),
        ("charrnn", TrainingJob::char_rnn()),
        ("alexnet", TrainingJob::alexnet_cifar10()),
        ("inception", TrainingJob::inception_imagenet()),
        ("bert_tf", TrainingJob::bert_tensorflow()),
    ] {
        // global optimum across catalog × n≤50
        let mut best = (InstanceType::C5Large, 0u32, 0.0f64);
        for t in InstanceType::all() {
            for n in 1..=50u32 {
                if let Ok(s) = m.throughput(&job, t, n) {
                    if s > best.2 {
                        best = (t, n, s);
                    }
                }
            }
        }
        let time = job.total_samples() / best.2 / 3600.0;
        let cost = time * best.0.hourly_usd() * best.1 as f64;
        println!(
            "{name:10} best = {} x{:2}  speed {:8.1} samp/s  train {:6.2} h  cost ${:8.2}",
            best.0, best.1, best.2, time, cost
        );
        // per-type peak for a few types
        for t in [
            InstanceType::C5Xlarge,
            InstanceType::C54xlarge,
            InstanceType::C5n4xlarge,
            InstanceType::P2Xlarge,
            InstanceType::P32xlarge,
        ] {
            let (n, s) = (1..=50)
                .filter_map(|n| m.throughput(&job, t, n).ok().map(|s| (n, s)))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap_or((0, 0.0));
            let time = job.total_samples() / s / 3600.0;
            let cost = time * t.hourly_usd() * n as f64;
            println!("    {t:14} peak n={n:2} speed {s:8.1}  train {time:7.2} h cost ${cost:8.2}");
        }
    }
}
