//! Training-platform coefficients.
//!
//! The paper demonstrates platform independence by running BERT on both
//! TensorFlow and MXNet (Figs 16–17). The platforms differ in achieved
//! compute efficiency and synchronisation overhead, not in the shape of the
//! scaling behaviour — which is exactly how we model them.

use serde::Serialize;

/// Supported ML training platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Platform {
    /// TensorFlow 1.x-era graph execution.
    TensorFlow,
    /// MXNet with kvstore / horovod-style collectives.
    MxNet,
    /// PyTorch with DDP.
    PyTorch,
}

impl Platform {
    /// All platforms.
    pub const ALL: [Platform; 3] = [Platform::TensorFlow, Platform::MxNet, Platform::PyTorch];

    /// Fraction of device peak the platform's kernels sustain, on top of
    /// the model's own utilisation factor.
    pub fn compute_efficiency(&self) -> f64 {
        match self {
            Platform::TensorFlow => 0.92,
            Platform::MxNet => 0.82,
            Platform::PyTorch => 0.90,
        }
    }

    /// Multiplier on communication time (collective implementation
    /// quality).
    pub fn comm_multiplier(&self) -> f64 {
        match self {
            Platform::TensorFlow => 1.00,
            Platform::MxNet => 1.45,
            Platform::PyTorch => 1.10,
        }
    }

    /// Fraction of communication that can overlap with backprop compute.
    pub fn overlap_fraction(&self) -> f64 {
        match self {
            Platform::TensorFlow => 0.30,
            Platform::MxNet => 0.25,
            Platform::PyTorch => 0.40,
        }
    }

    /// Human name.
    pub fn name(&self) -> &'static str {
        match self {
            Platform::TensorFlow => "TensorFlow",
            Platform::MxNet => "MXNet",
            Platform::PyTorch => "PyTorch",
        }
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficients_in_sane_ranges() {
        for p in Platform::ALL {
            assert!((0.5..=1.0).contains(&p.compute_efficiency()), "{p}");
            assert!((1.0..=2.0).contains(&p.comm_multiplier()), "{p}");
            assert!((0.0..=1.0).contains(&p.overlap_fraction()), "{p}");
        }
    }

    #[test]
    fn mxnet_slower_than_tensorflow() {
        // Paper Fig 17 (BERT/MXNet) peaks visibly below Fig 16 (BERT/TF).
        assert!(Platform::MxNet.compute_efficiency() < Platform::TensorFlow.compute_efficiency());
        assert!(Platform::MxNet.comm_multiplier() > Platform::TensorFlow.comm_multiplier());
    }

    #[test]
    fn display_names() {
        assert_eq!(Platform::TensorFlow.to_string(), "TensorFlow");
        assert_eq!(Platform::MxNet.to_string(), "MXNet");
    }
}
