//! The model and dataset zoo.
//!
//! Parameter counts follow the paper (Fig 19 lists 6.4 M AlexNet, 60.3 M
//! ResNet, 340 M BERT, 8 B and 20 B ZeRO). Per-sample forward FLOPs and the
//! per-device utilisation factors are calibration constants chosen so the
//! ground-truth model reproduces the paper's observed winners (see
//! DESIGN.md §2 and the calibration tests in `throughput`); they are in the
//! right published ballpark but are not measurements.

use crate::comm::CommTopology;
use crate::platform::Platform;
use serde::Serialize;

/// How the batch is distributed as the cluster grows.
///
/// The paper uses strong scaling throughout ("we use strong-scaling to
/// avoid the scale-out level impacting accuracy"); weak scaling is offered
/// as an extension for what-if studies — it changes the effective global
/// batch and therefore, on a real job, the converged accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Default)]
pub enum ScalingMode {
    /// Fixed global batch; per-node batch shrinks as `B/n`.
    #[default]
    Strong,
    /// Fixed per-node batch; the effective global batch grows as `B·n`.
    Weak,
}

/// Coarse architecture category — documentation and default-choosing only;
/// the quantitative knobs live on [`ModelSpec`] directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum ArchKind {
    /// Convolutional network (AlexNet, ResNet, Inception).
    Cnn,
    /// Recurrent network (Char-RNN): sequential cell updates underutilise
    /// wide accelerators.
    Rnn,
    /// Transformer (BERT): large dense matmuls, accelerator-friendly.
    Transformer,
    /// ZeRO-style sharded transformer: optimizer state partitioned across
    /// the cluster, so memory feasibility improves with scale-out.
    ShardedTransformer,
}

/// Everything the performance model needs to know about one trainable model.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ModelSpec {
    /// Human name, e.g. `"ResNet (CIFAR-10)"`.
    pub name: &'static str,
    /// Architecture category.
    pub arch: ArchKind,
    /// Trainable parameters.
    pub params: f64,
    /// Forward-pass GFLOPs per training sample. Training cost is modelled
    /// as 3× this (forward + ~2× backward).
    pub fwd_gflops_per_sample: f64,
    /// Bytes exchanged per parameter per synchronisation (4 for fp32
    /// gradients, 2 for mixed-precision).
    pub grad_bytes_per_param: f64,
    /// Fraction of peak GPU FLOPS this model sustains.
    pub gpu_util: f64,
    /// Fraction of peak CPU FLOPS this model sustains.
    pub cpu_util: f64,
    /// Whether optimizer/model state is sharded across nodes (ZeRO). When
    /// true, per-node memory need shrinks with cluster size.
    pub sharded: bool,
    /// Default global (summed across nodes) batch size under strong
    /// scaling.
    pub default_global_batch: u32,
}

impl ModelSpec {
    /// Gradient bytes exchanged per synchronisation step.
    pub fn grad_bytes(&self) -> f64 {
        self.params * self.grad_bytes_per_param
    }

    /// Training GFLOPs per sample (forward + backward).
    pub fn train_gflops_per_sample(&self) -> f64 {
        3.0 * self.fwd_gflops_per_sample
    }

    /// Bytes of model + optimizer state that must fit in device (or host)
    /// memory. 16 bytes/param models mixed-precision Adam (fp16 weights +
    /// fp16 grads + fp32 master + two fp32 moments).
    pub fn state_bytes(&self) -> f64 {
        self.params * 16.0
    }

    /// AlexNet at the paper's 6.4 M-parameter size, on CIFAR-10-scale
    /// inputs.
    pub fn alexnet() -> ModelSpec {
        ModelSpec {
            name: "AlexNet",
            arch: ArchKind::Cnn,
            params: 6.4e6,
            fwd_gflops_per_sample: 0.30,
            grad_bytes_per_param: 4.0,
            gpu_util: 0.22,
            cpu_util: 0.45,
            sharded: false,
            default_global_batch: 512,
        }
    }

    /// The paper's ResNet (60.3 M parameters) trained on CIFAR-10. Small
    /// input images keep GPU utilisation low, which is why the paper's
    /// search finds a c5.4xlarge CPU deployment optimal for this job.
    pub fn resnet_cifar10() -> ModelSpec {
        ModelSpec {
            name: "ResNet (CIFAR-10)",
            arch: ArchKind::Cnn,
            params: 60.3e6,
            fwd_gflops_per_sample: 2.0,
            grad_bytes_per_param: 4.0,
            gpu_util: 0.05,
            cpu_util: 0.50,
            sharded: false,
            default_global_batch: 512,
        }
    }

    /// Network-in-Network — the third of the three models the paper notes
    /// Paleo supports on AWS ("only 3 models (Inception-V3, AlexNet V2,
    /// and NiN)").
    pub fn nin() -> ModelSpec {
        ModelSpec {
            name: "NiN",
            arch: ArchKind::Cnn,
            params: 7.6e6,
            fwd_gflops_per_sample: 1.1,
            grad_bytes_per_param: 4.0,
            gpu_util: 0.40,
            cpu_util: 0.38,
            sharded: false,
            default_global_batch: 512,
        }
    }

    /// VGG-16: enormous fully-connected layers make it gradient-heavy
    /// (528 MB of fp32 gradients) relative to its compute — the classic
    /// communication-bound CNN.
    pub fn vgg16() -> ModelSpec {
        ModelSpec {
            name: "VGG-16",
            arch: ArchKind::Cnn,
            params: 138e6,
            fwd_gflops_per_sample: 15.5,
            grad_bytes_per_param: 4.0,
            gpu_util: 0.55,
            cpu_util: 0.30,
            sharded: false,
            default_global_batch: 256,
        }
    }

    /// GPT-2 (124 M): a decoder-only transformer trained autoregressively.
    pub fn gpt2_small() -> ModelSpec {
        ModelSpec {
            name: "GPT-2 small",
            arch: ArchKind::Transformer,
            params: 124e6,
            fwd_gflops_per_sample: 18.0,
            grad_bytes_per_param: 2.0,
            gpu_util: 0.35,
            cpu_util: 0.18,
            sharded: false,
            default_global_batch: 512,
        }
    }

    /// Inception-v3 on ImageNet-scale inputs: large images and deep
    /// convolutions sustain good accelerator utilisation.
    pub fn inception_v3() -> ModelSpec {
        ModelSpec {
            name: "Inception-v3",
            arch: ArchKind::Cnn,
            params: 23.9e6,
            fwd_gflops_per_sample: 5.7,
            grad_bytes_per_param: 4.0,
            gpu_util: 0.50,
            cpu_util: 0.35,
            sharded: false,
            default_global_batch: 1024,
        }
    }

    /// Character-level RNN language model. Sequential cell updates give
    /// poor accelerator utilisation — the root of the paper's Fig 1b
    /// "CPUs beat GPUs for this model at equal cost" observation.
    pub fn char_rnn() -> ModelSpec {
        ModelSpec {
            name: "Char-RNN",
            arch: ArchKind::Rnn,
            params: 3.3e6,
            fwd_gflops_per_sample: 0.07,
            grad_bytes_per_param: 4.0,
            // Tiny sequential cells leave wide accelerators almost idle —
            // kernel-launch overhead dominates (the paper's Fig 1b story).
            gpu_util: 0.03,
            cpu_util: 0.45,
            sharded: false,
            default_global_batch: 1280,
        }
    }

    /// BERT-Large (340 M parameters), mixed-precision gradients, trained
    /// with ring all-reduce as in the paper's Figs 16–17.
    pub fn bert_large() -> ModelSpec {
        ModelSpec {
            name: "BERT-Large",
            arch: ArchKind::Transformer,
            params: 340e6,
            fwd_gflops_per_sample: 30.0,
            grad_bytes_per_param: 2.0,
            gpu_util: 0.30,
            cpu_util: 0.20,
            sharded: false,
            default_global_batch: 2048,
        }
    }

    /// ZeRO 8 B-parameter configuration (paper Fig 19; simulated there too).
    pub fn zero_8b() -> ModelSpec {
        ModelSpec {
            name: "ZeRO-8B",
            arch: ArchKind::ShardedTransformer,
            params: 8e9,
            fwd_gflops_per_sample: 700.0,
            grad_bytes_per_param: 2.0,
            gpu_util: 0.35,
            cpu_util: 0.15,
            sharded: true,
            default_global_batch: 2048,
        }
    }

    /// ZeRO 20 B-parameter configuration (paper Fig 19).
    pub fn zero_20b() -> ModelSpec {
        ModelSpec {
            name: "ZeRO-20B",
            arch: ArchKind::ShardedTransformer,
            params: 20e9,
            fwd_gflops_per_sample: 1750.0,
            grad_bytes_per_param: 2.0,
            gpu_util: 0.35,
            cpu_util: 0.15,
            sharded: true,
            default_global_batch: 2048,
        }
    }

    /// The whole zoo, in ascending parameter count (the paper's Fig 19
    /// x-axis).
    pub fn zoo() -> Vec<ModelSpec> {
        vec![
            ModelSpec::char_rnn(),
            ModelSpec::alexnet(),
            ModelSpec::nin(),
            ModelSpec::inception_v3(),
            ModelSpec::resnet_cifar10(),
            ModelSpec::gpt2_small(),
            ModelSpec::vgg16(),
            ModelSpec::bert_large(),
            ModelSpec::zero_8b(),
            ModelSpec::zero_20b(),
        ]
    }
}

/// A training dataset: how many samples one epoch visits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DatasetSpec {
    /// Human name.
    pub name: &'static str,
    /// Samples per epoch.
    pub samples: u64,
}

impl DatasetSpec {
    /// CIFAR-10 training split.
    pub fn cifar10() -> DatasetSpec {
        DatasetSpec { name: "CIFAR-10", samples: 50_000 }
    }

    /// ImageNet (ILSVRC-2012) training split.
    pub fn imagenet() -> DatasetSpec {
        DatasetSpec { name: "ImageNet", samples: 1_281_167 }
    }

    /// Character-LM corpus, counted in training sequences.
    pub fn text_corpus() -> DatasetSpec {
        DatasetSpec { name: "text corpus", samples: 10_000_000 }
    }

    /// BERT pre-training corpus slice, counted in sequences.
    pub fn bert_corpus() -> DatasetSpec {
        DatasetSpec { name: "BERT corpus", samples: 4_000_000 }
    }

    /// The short benchmark slice used for the ZeRO-scale simulated runs
    /// (paper Fig 19 simulates these from published settings rather than
    /// training to completion).
    pub fn zero_benchmark_slice() -> DatasetSpec {
        DatasetSpec { name: "ZeRO benchmark slice", samples: 500_000 }
    }
}

/// A fully specified training job — the thing a user hands to MLCD.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrainingJob {
    /// Model to train.
    pub model: ModelSpec,
    /// Dataset.
    pub dataset: DatasetSpec,
    /// Number of passes over the dataset.
    pub epochs: u32,
    /// Global batch size (strong scaling: fixed regardless of cluster
    /// size, as the paper does "to avoid the scale-out level impacting
    /// accuracy").
    pub global_batch: u32,
    /// Training platform.
    pub platform: Platform,
    /// Gradient-synchronisation topology.
    pub topology: CommTopology,
    /// Fraction of gradient bytes actually exchanged per step (1.0 = no
    /// compression; Deep-Gradient-Compression-style sparsification sends
    /// ~0.01 of them, trading accuracy risk for communication time).
    pub grad_keep_frac: f64,
    /// Strong (paper default) or weak scaling.
    pub scaling: ScalingMode,
}

impl TrainingJob {
    /// Total samples the job must process.
    pub fn total_samples(&self) -> f64 {
        self.dataset.samples as f64 * self.epochs as f64
    }

    /// Gradient bytes actually exchanged per synchronisation, after
    /// compression.
    pub fn effective_grad_bytes(&self) -> f64 {
        self.model.grad_bytes() * self.grad_keep_frac
    }

    /// The same job under weak scaling (`global_batch` becomes the
    /// *per-node* batch). Accuracy caveats apply on a real job.
    pub fn weak_scaled(mut self) -> TrainingJob {
        self.scaling = ScalingMode::Weak;
        self
    }

    /// The same job with Deep-Gradient-Compression-style sparsification
    /// keeping `frac` of the gradient.
    ///
    /// # Panics
    /// Panics unless `0 < frac ≤ 1`.
    pub fn with_compression(mut self, frac: f64) -> TrainingJob {
        assert!(frac > 0.0 && frac <= 1.0, "compression fraction must be in (0, 1]");
        self.grad_keep_frac = frac;
        self
    }

    /// The preset-job names [`TrainingJob::by_name`] resolves, in display
    /// order (shared by the `mlcd` CLI and the deployment service).
    pub fn preset_names() -> [&'static str; 8] {
        [
            "resnet-cifar10",
            "alexnet-cifar10",
            "char-rnn",
            "inception-imagenet",
            "bert-tf",
            "bert-mxnet",
            "zero-8b",
            "zero-20b",
        ]
    }

    /// Resolve a preset job by its CLI/service name; `None` when unknown.
    pub fn by_name(name: &str) -> Option<TrainingJob> {
        Some(match name {
            "resnet-cifar10" => TrainingJob::resnet_cifar10(),
            "alexnet-cifar10" => TrainingJob::alexnet_cifar10(),
            "char-rnn" => TrainingJob::char_rnn(),
            "inception-imagenet" => TrainingJob::inception_imagenet(),
            "bert-tf" => TrainingJob::bert_tensorflow(),
            "bert-mxnet" => TrainingJob::bert_mxnet(),
            "zero-8b" => TrainingJob::zero_8b(),
            "zero-20b" => TrainingJob::zero_20b(),
            _ => return None,
        })
    }

    /// The paper's ResNet/CIFAR-10/TensorFlow workhorse job (Figs 2, 9–12,
    /// 18).
    pub fn resnet_cifar10() -> TrainingJob {
        let model = ModelSpec::resnet_cifar10();
        let global_batch = model.default_global_batch;
        TrainingJob {
            model,
            dataset: DatasetSpec::cifar10(),
            epochs: 100,
            global_batch,
            platform: Platform::TensorFlow,
            topology: CommTopology::ParameterServer,
            grad_keep_frac: 1.0,
            scaling: ScalingMode::Strong,
        }
    }

    /// AlexNet/CIFAR-10 (paper Fig 5).
    pub fn alexnet_cifar10() -> TrainingJob {
        let model = ModelSpec::alexnet();
        let global_batch = model.default_global_batch;
        TrainingJob {
            model,
            dataset: DatasetSpec::cifar10(),
            epochs: 150,
            global_batch,
            platform: Platform::TensorFlow,
            topology: CommTopology::ParameterServer,
            grad_keep_frac: 1.0,
            scaling: ScalingMode::Strong,
        }
    }

    /// Char-RNN over the text corpus (paper Figs 1b, 3, 14, 15).
    pub fn char_rnn() -> TrainingJob {
        let model = ModelSpec::char_rnn();
        let global_batch = model.default_global_batch;
        TrainingJob {
            model,
            dataset: DatasetSpec::text_corpus(),
            epochs: 20,
            global_batch,
            platform: Platform::TensorFlow,
            topology: CommTopology::ParameterServer,
            grad_keep_frac: 1.0,
            scaling: ScalingMode::Strong,
        }
    }

    /// Inception-v3 on ImageNet (paper Fig 13).
    pub fn inception_imagenet() -> TrainingJob {
        let model = ModelSpec::inception_v3();
        let global_batch = model.default_global_batch;
        TrainingJob {
            model,
            dataset: DatasetSpec::imagenet(),
            epochs: 25,
            global_batch,
            platform: Platform::TensorFlow,
            topology: CommTopology::ParameterServer,
            grad_keep_frac: 1.0,
            scaling: ScalingMode::Strong,
        }
    }

    /// BERT with ring all-reduce on TensorFlow (paper Fig 16). One pass
    /// over a 4 M-sequence corpus slice — sized so the paper's ~$100
    /// search budgets are meaningful against the training cost.
    pub fn bert_tensorflow() -> TrainingJob {
        let model = ModelSpec::bert_large();
        let global_batch = model.default_global_batch;
        TrainingJob {
            model,
            dataset: DatasetSpec::bert_corpus(),
            epochs: 1,
            global_batch,
            platform: Platform::TensorFlow,
            topology: CommTopology::RingAllReduce,
            grad_keep_frac: 1.0,
            scaling: ScalingMode::Strong,
        }
    }

    /// BERT with ring all-reduce on MXNet (paper Fig 17).
    pub fn bert_mxnet() -> TrainingJob {
        TrainingJob { platform: Platform::MxNet, ..TrainingJob::bert_tensorflow() }
    }

    /// ZeRO 8 B-parameter run (paper Fig 19; the paper simulates these
    /// from published ZeRO settings, as do we).
    pub fn zero_8b() -> TrainingJob {
        let model = ModelSpec::zero_8b();
        let global_batch = model.default_global_batch;
        TrainingJob {
            model,
            dataset: DatasetSpec::zero_benchmark_slice(),
            epochs: 1,
            global_batch,
            platform: Platform::PyTorch,
            topology: CommTopology::RingAllReduce,
            grad_keep_frac: 1.0,
            scaling: ScalingMode::Strong,
        }
    }

    /// ZeRO 20 B-parameter run (paper Fig 19).
    pub fn zero_20b() -> TrainingJob {
        TrainingJob { model: ModelSpec::zero_20b(), ..TrainingJob::zero_8b() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameter_counts() {
        // Fig 19's x-axis: 6.4M, 60.3M, 340M, 8B, 20B.
        assert_eq!(ModelSpec::alexnet().params, 6.4e6);
        assert_eq!(ModelSpec::resnet_cifar10().params, 60.3e6);
        assert_eq!(ModelSpec::bert_large().params, 340e6);
        assert_eq!(ModelSpec::zero_8b().params, 8e9);
        assert_eq!(ModelSpec::zero_20b().params, 20e9);
    }

    #[test]
    fn zoo_sorted_by_params() {
        let zoo = ModelSpec::zoo();
        for w in zoo.windows(2) {
            assert!(w[0].params <= w[1].params, "{} > {}", w[0].name, w[1].name);
        }
    }

    #[test]
    fn gradient_sizes() {
        // fp32 ResNet: 60.3M × 4 B ≈ 241 MB.
        let g = ModelSpec::resnet_cifar10().grad_bytes();
        assert!((g - 241.2e6).abs() < 1e6);
        // Mixed-precision BERT: 340M × 2 B = 680 MB.
        let g = ModelSpec::bert_large().grad_bytes();
        assert!((g - 680e6).abs() < 1e6);
    }

    #[test]
    fn rnn_prefers_cpu_cnn_imagenet_prefers_gpu() {
        // The calibrated utilisations encode the paper's Fig 1b insight.
        let rnn = ModelSpec::char_rnn();
        assert!(rnn.cpu_util > rnn.gpu_util);
        let inception = ModelSpec::inception_v3();
        assert!(inception.gpu_util > inception.cpu_util);
    }

    #[test]
    fn training_flops_are_3x_forward() {
        let m = ModelSpec::inception_v3();
        assert!((m.train_gflops_per_sample() - 17.1).abs() < 1e-9);
    }

    #[test]
    fn job_total_samples() {
        let j = TrainingJob::resnet_cifar10();
        assert_eq!(j.total_samples(), 5_000_000.0);
        let j = TrainingJob::char_rnn();
        assert_eq!(j.total_samples(), 200_000_000.0);
    }

    #[test]
    fn bert_jobs_use_ring_allreduce() {
        assert_eq!(TrainingJob::bert_tensorflow().topology, CommTopology::RingAllReduce);
        assert_eq!(TrainingJob::bert_mxnet().topology, CommTopology::RingAllReduce);
        assert_eq!(TrainingJob::bert_mxnet().platform, Platform::MxNet);
    }

    #[test]
    fn sharded_models_flagged() {
        assert!(ModelSpec::zero_8b().sharded);
        assert!(!ModelSpec::bert_large().sharded);
    }

    #[test]
    fn state_bytes_mixed_precision_adam() {
        // BERT-Large: 340M × 16 B = 5.44 GB — fits a K80's 12 GiB.
        let s = ModelSpec::bert_large().state_bytes();
        assert!((s - 5.44e9).abs() < 1e7);
    }
}
