//! The ground-truth throughput model.
//!
//! This is what "the cloud" actually delivers when a deployment trains a
//! job — the function the paper measures on EC2 and that every searcher is
//! trying to optimise without knowing.

use crate::comm::CommModel;
use crate::compute;
use crate::models::TrainingJob;
use mlcd_cloudsim::{InstanceType, SimDuration};
use serde::Serialize;

/// Why a deployment cannot run the job at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Infeasible {
    /// Model + optimizer state does not fit in device/host memory.
    OutOfMemory,
    /// More nodes than samples in the global batch (strong scaling would
    /// give nodes fractional sub-1 batches of zero).
    BatchTooSmall,
}

impl std::fmt::Display for Infeasible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Infeasible::OutOfMemory => write!(f, "model state does not fit in memory"),
            Infeasible::BatchTooSmall => write!(f, "global batch smaller than cluster"),
        }
    }
}

/// Per-iteration timing decomposition, for figures and tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct IterationBreakdown {
    /// Seconds of (straggler-inflated) compute.
    pub compute_s: f64,
    /// Seconds of synchronisation before overlap.
    pub comm_s: f64,
    /// Seconds per iteration after overlapping comm under compute.
    pub iteration_s: f64,
    /// Samples per iteration (the global batch).
    pub batch: f64,
}

impl IterationBreakdown {
    /// Training speed in samples/second.
    pub fn throughput(&self) -> f64 {
        self.batch / self.iteration_s
    }
}

/// Ground-truth performance model. One instance of this struct *is* the
/// simulated cloud's physics; all searchers see it only through noisy
/// profiling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Default)]
pub struct ThroughputModel {
    /// Communication constants.
    pub comm: CommModel,
}

impl ThroughputModel {
    /// Check memory feasibility of `n` × `itype` for the job.
    pub fn feasible(
        &self,
        job: &TrainingJob,
        itype: InstanceType,
        n: u32,
    ) -> Result<(), Infeasible> {
        assert!(n >= 1, "feasible: empty cluster");
        let spec = itype.spec();
        if job.scaling == crate::models::ScalingMode::Strong && (job.global_batch as f64) < n as f64
        {
            return Err(Infeasible::BatchTooSmall);
        }
        // Memory available for model state on one node: GPU device memory
        // when the GPU path is used, host memory otherwise.
        let device_is_gpu = spec.has_gpu()
            && spec.gpu_peak_gflops() * job.model.gpu_util
                > spec.cpu_peak_gflops * job.model.cpu_util;
        let per_node_capacity = if device_is_gpu {
            spec.accelerators.map(|(a, c)| a.memory_gib() * c as f64 * 1e9).unwrap_or(0.0)
        } else {
            spec.memory_gib * 1e9
        };
        let needed_per_node = if job.model.sharded {
            job.model.state_bytes() / n as f64
        } else {
            job.model.state_bytes()
        };
        if needed_per_node > per_node_capacity {
            return Err(Infeasible::OutOfMemory);
        }
        Ok(())
    }

    /// Full per-iteration breakdown for deployment `n` × `itype`.
    pub fn breakdown(
        &self,
        job: &TrainingJob,
        itype: InstanceType,
        n: u32,
    ) -> Result<IterationBreakdown, Infeasible> {
        self.feasible(job, itype, n)?;
        let spec = itype.spec();
        let (per_node_batch, iteration_batch) = match job.scaling {
            crate::models::ScalingMode::Strong => {
                (job.global_batch as f64 / n as f64, job.global_batch as f64)
            }
            crate::models::ScalingMode::Weak => {
                (job.global_batch as f64, job.global_batch as f64 * n as f64)
            }
        };

        let raw_compute = compute::compute_time(&job.model, job.platform, spec, per_node_batch);
        let compute_s = raw_compute * compute::straggler_factor(n);

        let comm_s =
            self.comm.sync_time(job.topology, job.effective_grad_bytes(), n, spec.network_gbps)
                * job.platform.comm_multiplier();

        // A platform-dependent fraction of compute can hide communication.
        let hidden = job.platform.overlap_fraction() * compute_s;
        let iteration_s = compute_s + (comm_s - hidden).max(0.0);

        Ok(IterationBreakdown { compute_s, comm_s, iteration_s, batch: iteration_batch })
    }

    /// True training speed in samples/second.
    pub fn throughput(
        &self,
        job: &TrainingJob,
        itype: InstanceType,
        n: u32,
    ) -> Result<f64, Infeasible> {
        Ok(self.breakdown(job, itype, n)?.throughput())
    }

    /// True time to train the whole job on this deployment.
    pub fn training_time(
        &self,
        job: &TrainingJob,
        itype: InstanceType,
        n: u32,
    ) -> Result<SimDuration, Infeasible> {
        let speed = self.throughput(job, itype, n)?;
        Ok(SimDuration::from_secs(job.total_samples() / speed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{ModelSpec, TrainingJob};

    fn model() -> ThroughputModel {
        ThroughputModel::default()
    }

    /// Peak-finding helper over scale-out for one type.
    fn best_n(job: &TrainingJob, itype: InstanceType, max_n: u32) -> (u32, f64) {
        let m = model();
        (1..=max_n)
            .filter_map(|n| m.throughput(job, itype, n).ok().map(|s| (n, s)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
    }

    #[test]
    fn scale_out_speedup_is_concave_with_interior_peak() {
        // The paper's central prior (Fig 3b): speed rises then falls.
        let job = TrainingJob::resnet_cifar10();
        let m = model();
        let speeds: Vec<f64> =
            (1..=50).map(|n| m.throughput(&job, InstanceType::C54xlarge, n).unwrap()).collect();
        let peak = speeds.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0 + 1;
        assert!(
            (5..=45).contains(&peak),
            "peak should be interior, got n={peak}; speeds head {:?}",
            &speeds[..8]
        );
        // Declining tail after the peak.
        assert!(
            speeds[49] < speeds[peak - 1] * 0.98,
            "speed at n=50 ({}) should be below the peak ({})",
            speeds[49],
            speeds[peak - 1]
        );
        // Rising head before the peak.
        assert!(speeds[0] < speeds[peak - 1]);
    }

    #[test]
    fn char_rnn_equal_cost_comparison_matches_fig1b() {
        // Paper Fig 1b: at ~equal hourly cost, 10 × c5.4xlarge beats both
        // 40 × c5.xlarge and 9 × p2.xlarge, the best being ~3× the worst.
        let job = TrainingJob::char_rnn();
        let m = model();
        let forty_small = m.throughput(&job, InstanceType::C5Xlarge, 40).unwrap();
        let ten_mid = m.throughput(&job, InstanceType::C54xlarge, 10).unwrap();
        let nine_gpu = m.throughput(&job, InstanceType::P2Xlarge, 9).unwrap();
        assert!(
            ten_mid > forty_small && ten_mid > nine_gpu,
            "10×c5.4xlarge ({ten_mid:.0}) must beat 40×c5.xlarge ({forty_small:.0}) and 9×p2.xlarge ({nine_gpu:.0})"
        );
        let ratio = ten_mid / forty_small.min(nine_gpu);
        assert!(
            (1.5..=6.0).contains(&ratio),
            "best/worst ratio should be paper-like (~3x), got {ratio:.2}"
        );
    }

    #[test]
    fn bert_prefers_gpu_and_bandwidth() {
        let job = TrainingJob::bert_tensorflow();
        let (_, best_p2) = best_n(&job, InstanceType::P2Xlarge, 20);
        let (_, best_c5n) = best_n(&job, InstanceType::C5nXlarge, 20);
        assert!(best_p2 > best_c5n, "BERT: p2 {best_p2:.1} must beat c5n.xlarge {best_c5n:.1}");
        // And among CPU options, the bandwidth-rich c5n.4xlarge beats
        // c5n.xlarge (same family, more network and compute).
        let (_, best_c5n4) = best_n(&job, InstanceType::C5n4xlarge, 20);
        assert!(best_c5n4 > best_c5n);
    }

    #[test]
    fn ring_scales_further_than_ps_for_large_gradients() {
        // Same job, both topologies, GPU nodes: ring's peak node count
        // should be at least PS's.
        let mut ps_job = TrainingJob::bert_tensorflow();
        ps_job.topology = crate::comm::CommTopology::ParameterServer;
        let ring_job = TrainingJob::bert_tensorflow();
        let (n_ps, s_ps) = best_n(&ps_job, InstanceType::P2Xlarge, 20);
        let (n_ring, s_ring) = best_n(&ring_job, InstanceType::P2Xlarge, 20);
        assert!(n_ring >= n_ps, "ring peak {n_ring} < ps peak {n_ps}");
        assert!(s_ring >= s_ps, "ring speed {s_ring} < ps speed {s_ps}");
    }

    #[test]
    fn memory_infeasibility() {
        // ZeRO-20B: 320 GB of state. Does not fit one p3.8xlarge
        // (4 × 16 GB), but shards across ≥ 5 of them.
        let job = TrainingJob {
            model: ModelSpec::zero_20b(),
            dataset: crate::models::DatasetSpec::bert_corpus(),
            epochs: 1,
            global_batch: 2048,
            platform: crate::platform::Platform::PyTorch,
            topology: crate::comm::CommTopology::RingAllReduce,
            grad_keep_frac: 1.0,
            scaling: crate::models::ScalingMode::Strong,
        };
        let m = model();
        assert_eq!(m.feasible(&job, InstanceType::P38xlarge, 1), Err(Infeasible::OutOfMemory));
        assert_eq!(m.feasible(&job, InstanceType::P38xlarge, 5), Ok(()));
        // Non-sharded BERT fits everywhere GPU-wise.
        let bert = TrainingJob::bert_tensorflow();
        assert_eq!(m.feasible(&bert, InstanceType::P2Xlarge, 1), Ok(()));
    }

    #[test]
    fn batch_too_small_rejected() {
        let mut job = TrainingJob::resnet_cifar10();
        job.global_batch = 16;
        let m = model();
        assert_eq!(m.feasible(&job, InstanceType::C5Xlarge, 17), Err(Infeasible::BatchTooSmall));
        assert!(m.feasible(&job, InstanceType::C5Xlarge, 16).is_ok());
    }

    #[test]
    fn training_time_consistent_with_throughput() {
        let job = TrainingJob::resnet_cifar10();
        let m = model();
        let s = m.throughput(&job, InstanceType::C54xlarge, 10).unwrap();
        let t = m.training_time(&job, InstanceType::C54xlarge, 10).unwrap();
        assert!((t.as_secs() * s - job.total_samples()).abs() < 1.0);
    }

    #[test]
    fn resnet_training_times_in_papers_range() {
        // The paper's Scenario-2 uses a 6-hour deadline for ResNet/CIFAR-10
        // and the optimum comes in under it; sanity-check our scale.
        let job = TrainingJob::resnet_cifar10();
        let m = model();
        let best = (1..=50)
            .map(|n| m.training_time(&job, InstanceType::C54xlarge, n).unwrap().as_hours())
            .fold(f64::INFINITY, f64::min);
        assert!(
            (1.0..6.0).contains(&best),
            "optimal ResNet training should be a few hours, got {best:.2} h"
        );
    }

    #[test]
    fn breakdown_components_add_up() {
        let job = TrainingJob::char_rnn();
        let m = model();
        let b = m.breakdown(&job, InstanceType::C54xlarge, 10).unwrap();
        assert!(b.compute_s > 0.0 && b.comm_s > 0.0);
        assert!(b.iteration_s >= b.compute_s);
        assert!(b.iteration_s <= b.compute_s + b.comm_s + 1e-12);
        assert!((b.throughput() - b.batch / b.iteration_s).abs() < 1e-9);
    }

    #[test]
    fn gradient_compression_rescues_comm_bound_vgg() {
        // VGG-16 drags 552 MB of fp32 gradients per step: on fast V100
        // nodes with 2.5 Gbps links it is communication-bound; DGC-style
        // 100× sparsification makes the same deployment compute-bound and
        // much faster.
        use crate::models::{DatasetSpec, ModelSpec};
        let base = TrainingJob {
            model: ModelSpec::vgg16(),
            dataset: DatasetSpec::imagenet(),
            epochs: 10,
            global_batch: 256,
            platform: crate::platform::Platform::TensorFlow,
            topology: crate::comm::CommTopology::ParameterServer,
            grad_keep_frac: 1.0,
            scaling: crate::models::ScalingMode::Strong,
        };
        let compressed = base.clone().with_compression(0.01);
        let m = model();
        let b_plain = m.breakdown(&base, InstanceType::P32xlarge, 8).unwrap();
        let b_comp = m.breakdown(&compressed, InstanceType::P32xlarge, 8).unwrap();
        assert!(
            b_plain.comm_s > b_plain.compute_s,
            "plain VGG should be comm-bound: comm {} vs compute {}",
            b_plain.comm_s,
            b_plain.compute_s
        );
        assert!(b_comp.comm_s < b_plain.comm_s * 0.05);
        assert!(b_comp.throughput() > b_plain.throughput() * 1.5);
        // Compute is untouched by compression.
        assert!((b_comp.compute_s - b_plain.compute_s).abs() < 1e-12);
    }

    #[test]
    fn weak_scaling_keeps_per_node_compute_flat() {
        let strong = TrainingJob::resnet_cifar10();
        let weak = TrainingJob::resnet_cifar10().weak_scaled();
        let m = model();
        let b_strong_1 = m.breakdown(&strong, InstanceType::C54xlarge, 1).unwrap();
        let b_weak_1 = m.breakdown(&weak, InstanceType::C54xlarge, 1).unwrap();
        let b_weak_16 = m.breakdown(&weak, InstanceType::C54xlarge, 16).unwrap();
        // n=1: identical by construction.
        assert!((b_strong_1.iteration_s - b_weak_1.iteration_s).abs() < 1e-12);
        // Weak scaling: compute per iteration stays ~flat (up to the
        // straggler factor) while the batch grows 16x.
        let straggle = crate::compute::straggler_factor(16);
        assert!(
            (b_weak_16.compute_s / b_weak_1.compute_s - straggle).abs() < 1e-9,
            "weak compute grew: {} vs {}",
            b_weak_16.compute_s,
            b_weak_1.compute_s
        );
        assert_eq!(b_weak_16.batch, b_weak_1.batch * 16.0);
        // Throughput scales much closer to linearly than under strong
        // scaling (no per-node batch starvation).
        let s_weak = b_weak_16.throughput() / b_weak_1.throughput();
        assert!(s_weak > 8.0, "weak speedup at 16 nodes only {s_weak:.1}x");
    }

    #[test]
    fn weak_scaling_has_no_batch_too_small() {
        let mut weak = TrainingJob::resnet_cifar10().weak_scaled();
        weak.global_batch = 16; // per-node now
        let m = model();
        assert!(m.feasible(&weak, InstanceType::C5Xlarge, 50).is_ok());
    }

    #[test]
    fn hierarchical_topology_usable_end_to_end() {
        let mut job = TrainingJob::bert_tensorflow();
        job.topology = crate::comm::CommTopology::HierarchicalAllReduce { group: 4 };
        let m = model();
        let s = m.throughput(&job, InstanceType::P2Xlarge, 16).unwrap();
        assert!(s.is_finite() && s > 0.0);
    }

    #[test]
    fn single_node_has_no_comm() {
        let job = TrainingJob::resnet_cifar10();
        let b = model().breakdown(&job, InstanceType::C54xlarge, 1).unwrap();
        assert_eq!(b.comm_s, 0.0);
        assert_eq!(b.iteration_s, b.compute_s);
    }

    #[test]
    fn scale_up_within_family_helps_single_node() {
        // Fig 3a: scale-up improves single-node speed monotonically for a
        // compute-bound job.
        let job = TrainingJob::char_rnn();
        let m = model();
        let small = m.throughput(&job, InstanceType::C5Xlarge, 1).unwrap();
        let mid = m.throughput(&job, InstanceType::C52xlarge, 1).unwrap();
        let big = m.throughput(&job, InstanceType::C54xlarge, 1).unwrap();
        assert!(small < mid && mid < big);
    }
}
