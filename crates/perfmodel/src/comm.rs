//! Gradient-synchronisation time models.
//!
//! Both topologies share the classic bandwidth term `2G(n−1)/(n·B)` — the
//! amount of gradient data any one node must move per step — and differ in
//! the congestion/latency term that grows with cluster size:
//!
//! * **Parameter server** (sharded across workers, MXNet-kvstore style):
//!   every node opens `n−1` simultaneous push/pull flows, and TCP incast at
//!   the receiving shards adds a per-peer penalty. This term is what bends
//!   the paper's scale-out curves downward (Fig 3b).
//! * **Ring all-reduce**: `2(n−1)` pipelined steps, each paying a small
//!   per-step latency. Grows more slowly than PS incast — which is why
//!   large-model training (BERT) uses it.
//!
//! Constants are calibration values (DESIGN.md §2); the calibration tests
//! in [`crate::throughput`] pin the qualitative facts that depend on them.

use serde::Serialize;

/// Gradient-synchronisation topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum CommTopology {
    /// Parameter server sharded across the worker nodes.
    ParameterServer,
    /// Bandwidth-optimal ring all-reduce.
    RingAllReduce,
    /// Two-level hierarchical all-reduce: rings of `group` nodes reduce
    /// locally, group leaders ring-reduce globally, then results broadcast
    /// back down. Pays the bandwidth term twice but cuts the latency chain
    /// from `2(n−1)` steps to `2((g−1) + (n/g−1))` — the standard remedy
    /// when flat rings hit their latency wall at scale.
    HierarchicalAllReduce {
        /// Nodes per local ring (≥ 2).
        group: u32,
    },
}

impl CommTopology {
    /// Human name.
    pub fn name(&self) -> &'static str {
        match self {
            CommTopology::ParameterServer => "parameter server",
            CommTopology::RingAllReduce => "ring all-reduce",
            CommTopology::HierarchicalAllReduce { .. } => "hierarchical all-reduce",
        }
    }
}

impl std::fmt::Display for CommTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tunable constants of the communication model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CommModel {
    /// Per-peer incast penalty at the parameter-server shards, seconds per
    /// `(n−1)` peers.
    pub ps_incast_per_peer: f64,
    /// Per-step latency of the ring pipeline, seconds per step (there are
    /// `2(n−1)` steps).
    pub ring_step_latency: f64,
}

impl Default for CommModel {
    fn default() -> Self {
        CommModel { ps_incast_per_peer: 15e-3, ring_step_latency: 1.5e-3 }
    }
}

impl CommModel {
    /// Per-iteration synchronisation time in seconds for `n` nodes moving
    /// `grad_bytes` of gradient over per-node links of `network_gbps`.
    ///
    /// `n == 1` costs nothing — no synchronisation happens.
    pub fn sync_time(
        &self,
        topology: CommTopology,
        grad_bytes: f64,
        n: u32,
        network_gbps: f64,
    ) -> f64 {
        assert!(n >= 1, "sync_time: empty cluster");
        assert!(grad_bytes >= 0.0 && network_gbps > 0.0, "sync_time: bad inputs");
        if n == 1 {
            return 0.0;
        }
        let bw_bytes_per_s = network_gbps * 1e9 / 8.0;
        let n_f = n as f64;
        let bandwidth_term = 2.0 * grad_bytes * (n_f - 1.0) / (n_f * bw_bytes_per_s);
        match topology {
            CommTopology::ParameterServer => bandwidth_term + self.ps_incast_per_peer * (n_f - 1.0),
            CommTopology::RingAllReduce => {
                bandwidth_term + self.ring_step_latency * 2.0 * (n_f - 1.0)
            }
            CommTopology::HierarchicalAllReduce { group } => {
                let g = (group.max(2) as f64).min(n_f);
                let k = (n_f / g).ceil().max(1.0);
                // Local ring over g nodes, leader ring over k groups, then
                // the broadcast back down rides the local ring again (its
                // bandwidth is folded into the 2× of each ring term).
                let local = 2.0 * grad_bytes * (g - 1.0) / (g * bw_bytes_per_s);
                let global =
                    if k > 1.0 { 2.0 * grad_bytes * (k - 1.0) / (k * bw_bytes_per_s) } else { 0.0 };
                let latency = self.ring_step_latency * 2.0 * ((g - 1.0) + (k - 1.0));
                local + global + latency
            }
        }
    }

    /// The idealised (latency-free) bandwidth term alone.
    pub fn ideal_bandwidth_time(grad_bytes: f64, n: u32, network_gbps: f64) -> f64 {
        assert!(n >= 1, "ideal_bandwidth_time: empty cluster");
        if n == 1 {
            return 0.0;
        }
        let bw_bytes_per_s = network_gbps * 1e9 / 8.0;
        let n_f = n as f64;
        2.0 * grad_bytes * (n_f - 1.0) / (n_f * bw_bytes_per_s)
    }

    /// What a Paleo-style analytical model believes a perfectly sharded
    /// parameter server / hierarchical reduction costs: each node moves
    /// only its `1/n` shard, so synchronisation time *shrinks* with the
    /// cluster. This is the idealisation whose gap from reality the paper
    /// blames for Paleo's sub-optimal choices at scale.
    pub fn ideal_sharded_time(grad_bytes: f64, n: u32, network_gbps: f64) -> f64 {
        assert!(n >= 1, "ideal_sharded_time: empty cluster");
        if n == 1 {
            return 0.0;
        }
        let bw_bytes_per_s = network_gbps * 1e9 / 8.0;
        2.0 * grad_bytes / (n as f64 * bw_bytes_per_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1e6;

    #[test]
    fn single_node_costs_nothing() {
        let m = CommModel::default();
        assert_eq!(m.sync_time(CommTopology::ParameterServer, 500.0 * MB, 1, 10.0), 0.0);
        assert_eq!(m.sync_time(CommTopology::RingAllReduce, 500.0 * MB, 1, 10.0), 0.0);
    }

    #[test]
    fn bandwidth_term_hand_check() {
        // 100 MB gradient, 2 nodes, 8 Gbps (=1 GB/s): 2·100MB·(1/2)/1GB/s = 0.1 s.
        let t = CommModel::ideal_bandwidth_time(100.0 * MB, 2, 8.0);
        assert!((t - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ps_grows_superlinearly_vs_ring_at_scale() {
        // With a small gradient, the latency terms dominate: PS incast
        // (15 ms/peer) outgrows ring steps (3 ms/step-pair).
        let m = CommModel::default();
        let g = 13.0 * MB; // Char-RNN-sized
        let ps50 = m.sync_time(CommTopology::ParameterServer, g, 50, 5.0);
        let ring50 = m.sync_time(CommTopology::RingAllReduce, g, 50, 5.0);
        assert!(ps50 > ring50, "ps {ps50} vs ring {ring50}");
    }

    #[test]
    fn sync_time_monotone_in_n() {
        let m = CommModel::default();
        for topo in [CommTopology::ParameterServer, CommTopology::RingAllReduce] {
            let mut prev = 0.0;
            for n in 1..=64 {
                let t = m.sync_time(topo, 200.0 * MB, n, 10.0);
                assert!(t >= prev, "{topo} not monotone at n={n}");
                prev = t;
            }
        }
    }

    #[test]
    fn more_bandwidth_less_time() {
        let m = CommModel::default();
        let slow = m.sync_time(CommTopology::RingAllReduce, 680.0 * MB, 16, 1.25);
        let fast = m.sync_time(CommTopology::RingAllReduce, 680.0 * MB, 16, 15.0);
        assert!(fast < slow / 5.0, "bandwidth should dominate for BERT-sized gradients");
    }

    #[test]
    fn hierarchical_beats_flat_ring_for_small_grads_at_scale() {
        // Latency-bound regime (small gradient, many nodes): the two-level
        // topology's shorter latency chain wins.
        let m = CommModel::default();
        let g = 13.0 * MB;
        let flat = m.sync_time(CommTopology::RingAllReduce, g, 64, 10.0);
        let hier = m.sync_time(CommTopology::HierarchicalAllReduce { group: 8 }, g, 64, 10.0);
        assert!(hier < flat, "hier {hier} vs flat {flat}");
    }

    #[test]
    fn flat_ring_beats_hierarchical_for_big_grads() {
        // Bandwidth-bound regime: hierarchical pays the bandwidth term
        // twice and loses.
        let m = CommModel::default();
        let g = 680.0 * MB;
        let flat = m.sync_time(CommTopology::RingAllReduce, g, 16, 10.0);
        let hier = m.sync_time(CommTopology::HierarchicalAllReduce { group: 4 }, g, 16, 10.0);
        assert!(hier > flat, "hier {hier} vs flat {flat}");
    }

    #[test]
    fn hierarchical_degenerates_gracefully() {
        let m = CommModel::default();
        // group ≥ n collapses to one local ring ≈ flat ring.
        let flat = m.sync_time(CommTopology::RingAllReduce, 50.0 * MB, 6, 10.0);
        let hier =
            m.sync_time(CommTopology::HierarchicalAllReduce { group: 16 }, 50.0 * MB, 6, 10.0);
        assert!((flat - hier).abs() < 1e-9, "flat {flat} vs degenerate hier {hier}");
        // Single node still free.
        assert_eq!(m.sync_time(CommTopology::HierarchicalAllReduce { group: 8 }, MB, 1, 10.0), 0.0);
    }

    #[test]
    fn ideal_is_a_lower_bound() {
        let m = CommModel::default();
        for n in [2u32, 4, 8, 16, 32] {
            for topo in [CommTopology::ParameterServer, CommTopology::RingAllReduce] {
                let real = m.sync_time(topo, 100.0 * MB, n, 10.0);
                let ideal = CommModel::ideal_bandwidth_time(100.0 * MB, n, 10.0);
                assert!(real >= ideal, "{topo} n={n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn zero_nodes_rejected() {
        let _ = CommModel::default().sync_time(CommTopology::RingAllReduce, MB, 0, 10.0);
    }
}
