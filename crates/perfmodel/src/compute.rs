//! Per-iteration compute time.
//!
//! Under strong scaling each of the `n` nodes processes `B/n` samples per
//! iteration. Compute time is FLOPs over effective FLOPS, with two
//! corrections that shape the scale-out curve:
//!
//! * **Batch efficiency** — a device needs a minimum per-device batch to
//!   stay busy. GPUs need far more than CPUs, so deep scale-out starves
//!   GPUs first. Modelled as the saturating factor `b/(b + b₅₀)`,
//!   normalised to 1 at the reference batch.
//! * **Straggler inflation** — synchronous SGD waits for the slowest of
//!   `n` workers; for light-tailed per-node noise the expected maximum
//!   grows like `√ln n`.

use crate::models::ModelSpec;
use crate::platform::Platform;
use mlcd_cloudsim::InstanceSpec;

/// Per-device batch at which efficiency is half of asymptotic, for GPU
/// devices. GPUs starve quickly below tens of samples.
const GPU_BATCH_B50: f64 = 8.0;
/// Same for CPU devices — CPUs stay efficient down to tiny batches.
const CPU_BATCH_B50: f64 = 1.0;
/// Reference per-device batch at which the efficiency factor is defined to
/// be 1 (so single-node full-batch runs are unpenalised).
const REF_BATCH: f64 = 64.0;
/// Intra-node multi-GPU aggregation overhead per extra accelerator.
const MULTI_GPU_OVERHEAD: f64 = 0.04;
/// Straggler coefficient κ: compute inflates by `1 + κ·√ln n`.
pub const STRAGGLER_KAPPA: f64 = 0.08;

/// Effective sustained GFLOPS of one instance for a given model+platform.
///
/// Chooses the better of the CPU path and (if present) the GPU path; a
/// GPU instance training a GPU-hostile model still has its CPUs.
pub fn effective_gflops(model: &ModelSpec, platform: Platform, spec: &InstanceSpec) -> f64 {
    let pe = platform.compute_efficiency();
    let cpu = spec.cpu_peak_gflops * model.cpu_util * pe;
    let gpu = if spec.has_gpu() {
        let raw = spec.gpu_peak_gflops() * model.gpu_util * pe;
        let n_acc = spec.accelerators.map_or(0, |(_, c)| c) as f64;
        raw / (1.0 + MULTI_GPU_OVERHEAD * (n_acc - 1.0))
    } else {
        0.0
    };
    cpu.max(gpu)
}

/// Batch-efficiency factor in (0, 1]: how busy the device stays at
/// per-device batch `b`. Saturates (capped at 1) at the reference batch —
/// a device cannot exceed its saturated throughput.
pub fn batch_efficiency(b: f64, is_gpu: bool) -> f64 {
    assert!(b > 0.0, "batch_efficiency: non-positive batch {b}");
    let b50 = if is_gpu { GPU_BATCH_B50 } else { CPU_BATCH_B50 };
    ((b / (b + b50)) / (REF_BATCH / (REF_BATCH + b50))).min(1.0)
}

/// Straggler inflation factor for `n` synchronised workers.
pub fn straggler_factor(n: u32) -> f64 {
    assert!(n >= 1, "straggler_factor: empty cluster");
    if n == 1 {
        1.0
    } else {
        1.0 + STRAGGLER_KAPPA * (n as f64).ln().sqrt()
    }
}

/// Seconds of compute per iteration for one node processing `per_node_batch`
/// samples.
pub fn compute_time(
    model: &ModelSpec,
    platform: Platform,
    spec: &InstanceSpec,
    per_node_batch: f64,
) -> f64 {
    assert!(per_node_batch > 0.0, "compute_time: non-positive batch");
    let gflops_needed = model.train_gflops_per_sample() * per_node_batch;
    let device_is_gpu = spec.has_gpu()
        && spec.gpu_peak_gflops() * model.gpu_util > spec.cpu_peak_gflops * model.cpu_util;
    let eff =
        effective_gflops(model, platform, spec) * batch_efficiency(per_node_batch, device_is_gpu);
    gflops_needed / eff
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcd_cloudsim::InstanceType;

    #[test]
    fn effective_gflops_picks_better_device() {
        // Char-RNN on p2.xlarge: GPU path 4100×0.03 = 123 > CPU 56×0.45,
        // so the GPU still wins on-node, but at a tiny fraction of peak —
        // which is why it loses per dollar (paper Fig 1b).
        let rnn = ModelSpec::char_rnn();
        let p2 = InstanceType::P2Xlarge.spec();
        let eff = effective_gflops(&rnn, Platform::TensorFlow, p2);
        assert!(eff < 150.0, "RNN must not enjoy full GPU peak: {eff}");
        assert!(eff > 80.0);
    }

    #[test]
    fn inception_loves_v100() {
        let m = ModelSpec::inception_v3();
        let p3 = InstanceType::P32xlarge.spec();
        let c5 = InstanceType::C54xlarge.spec();
        let gpu = effective_gflops(&m, Platform::TensorFlow, p3);
        let cpu = effective_gflops(&m, Platform::TensorFlow, c5);
        assert!(gpu > 20.0 * cpu, "V100 should crush c5.4xlarge for Inception: {gpu} vs {cpu}");
    }

    #[test]
    fn multi_gpu_scaling_subunit() {
        let m = ModelSpec::inception_v3();
        let p2_1 = InstanceType::P2Xlarge.spec();
        let p2_8 = InstanceType::P28xlarge.spec();
        let r = effective_gflops(&m, Platform::TensorFlow, p2_8)
            / effective_gflops(&m, Platform::TensorFlow, p2_1);
        assert!(r > 5.0 && r < 8.0, "8 GPUs should give 5–8×: {r}");
    }

    #[test]
    fn batch_efficiency_saturates() {
        // Reference point: eff(64) == 1 for both device kinds, and larger
        // batches cannot exceed saturation.
        assert!((batch_efficiency(REF_BATCH, true) - 1.0).abs() < 1e-12);
        assert!((batch_efficiency(REF_BATCH, false) - 1.0).abs() < 1e-12);
        assert_eq!(batch_efficiency(512.0, true), 1.0);
        assert_eq!(batch_efficiency(512.0, false), 1.0);
        // GPUs hurt much more at batch 2.
        assert!(batch_efficiency(2.0, true) < 0.3);
        assert!(batch_efficiency(2.0, false) > 0.6);
        // Strictly increasing below saturation.
        let mut prev = 0.0;
        for b in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
            let e = batch_efficiency(b, true);
            assert!(e > prev, "eff({b}) = {e} ≤ {prev}");
            prev = e;
        }
    }

    #[test]
    fn straggler_grows_slowly() {
        assert_eq!(straggler_factor(1), 1.0);
        let f8 = straggler_factor(8);
        let f64_ = straggler_factor(64);
        assert!(f8 > 1.0 && f8 < 1.2);
        assert!(f64_ > f8 && f64_ < 1.25);
    }

    #[test]
    fn compute_time_scales_inversely_with_batch_at_saturation() {
        let m = ModelSpec::resnet_cifar10();
        let spec = InstanceType::C54xlarge.spec();
        let t64 = compute_time(&m, Platform::TensorFlow, spec, 64.0);
        let t128 = compute_time(&m, Platform::TensorFlow, spec, 128.0);
        // At CPU-saturating batches, time is ~linear in batch.
        let ratio = t128 / t64;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn resnet_cifar_cpu_beats_equal_cost_gpu_per_node() {
        // The paper's "optimal scale-up is c5.4xlarge" for ResNet/CIFAR-10:
        // per dollar, c5.4xlarge beats p2.xlarge on this small-image model.
        let m = ModelSpec::resnet_cifar10();
        let c5 = InstanceType::C54xlarge.spec();
        let p2 = InstanceType::P2Xlarge.spec();
        let c5_per_dollar = effective_gflops(&m, Platform::TensorFlow, c5) / c5.hourly_usd;
        let p2_per_dollar = effective_gflops(&m, Platform::TensorFlow, p2) / p2.hourly_usd;
        assert!(
            c5_per_dollar > p2_per_dollar,
            "c5.4xlarge {c5_per_dollar} vs p2.xlarge {p2_per_dollar} GFLOPS/$"
        );
    }

    #[test]
    #[should_panic(expected = "non-positive batch")]
    fn zero_batch_rejected() {
        let m = ModelSpec::alexnet();
        let _ = compute_time(&m, Platform::TensorFlow, InstanceType::C5Xlarge.spec(), 0.0);
    }
}
