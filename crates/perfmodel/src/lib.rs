#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Distributed-training performance substrate.
//!
//! The paper measures real training throughput on EC2. This crate replaces
//! those measurements with a ground-truth performance model that reproduces
//! the *empirical facts the search method depends on* (DESIGN.md §2):
//!
//! 1. **Concave scale-out speedup** (paper Fig 3b and the prior HeterBO
//!    exploits): per-iteration compute shrinks as `1/n` under strong
//!    scaling while synchronisation cost grows with `n` (parameter-server
//!    incast, ring latency, straggler waits), so training speed rises to an
//!    interior optimum and then falls.
//! 2. **Model-dependent CPU/GPU crossover** (paper Fig 1b): each model
//!    carries calibrated device-utilisation factors — a Char-RNN utilises a
//!    K80 poorly while BERT's large matmuls love it — so whether scale-up
//!    or scale-out wins depends on the model, exactly as the paper observes.
//! 3. **Heteroscedastic measurement noise**: profiling observations are the
//!    true speed perturbed by log-normal noise plus occasional stragglers.
//!
//! Module map:
//!
//! * [`models`] — the model zoo ([`models::ModelSpec`]) with the paper's
//!   parameter counts (AlexNet 6.4 M … ZeRO 20 B) and dataset zoo.
//! * [`platform`] — TensorFlow / MXNet / PyTorch efficiency coefficients.
//! * [`comm`] — parameter-server and ring-all-reduce step-time models.
//! * [`compute`] — per-iteration compute time and straggler inflation.
//! * [`throughput`] — [`throughput::ThroughputModel`], the ground truth.
//! * [`noise`] — the measurement-noise model used by the MLCD Profiler.
//! * [`paleo`] — the Paleo-style analytical baseline: same compute model,
//!   idealised communication, so it over-predicts large-cluster speed and
//!   picks sub-optimal deployments (the failure mode the paper reports).
//!
//! ```
//! use mlcd_perfmodel::{ThroughputModel, TrainingJob};
//! use mlcd_cloudsim::InstanceType;
//!
//! let job = TrainingJob::resnet_cifar10();
//! let model = ThroughputModel::default();
//! let s10 = model.throughput(&job, InstanceType::C54xlarge, 10).unwrap();
//! let s1 = model.throughput(&job, InstanceType::C54xlarge, 1).unwrap();
//! assert!(s10 > s1); // scaling out from 1 node helps…
//! // …but the speedup curve is concave with an interior optimum (see tests).
//! ```

pub mod calibrate;
pub mod comm;
pub mod compute;
pub mod models;
pub mod noise;
pub mod paleo;
pub mod platform;
pub mod throughput;

pub use calibrate::{Calibrated, CalibrationSample, Calibrator};
pub use comm::{CommModel, CommTopology};
pub use models::{ArchKind, DatasetSpec, ModelSpec, ScalingMode, TrainingJob};
pub use noise::NoiseModel;
pub use paleo::PaleoEstimator;
pub use platform::Platform;
pub use throughput::{Infeasible, IterationBreakdown, ThroughputModel};
