//! Measurement noise.
//!
//! A profiling probe observes the true training speed perturbed by
//! multiplicative log-normal noise (co-tenant interference, clock
//! variation) and, occasionally, a straggler-degraded run. The MLCD
//! Profiler reacts to the latter by extending unstable probes, mirroring
//! the paper's "extends the profiling time when large discrepancy is
//! observed".

use rand::Rng;
use serde::Serialize;

/// Parameters of the observation-noise model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct NoiseModel {
    /// Standard deviation of the log-normal multiplicative noise.
    pub sigma: f64,
    /// Probability a probe lands on a degraded (straggler-afflicted) run.
    pub straggler_prob: f64,
    /// Multiplicative slowdown of a degraded run (e.g. 0.8 → 20 % slower).
    pub straggler_slowdown: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel { sigma: 0.03, straggler_prob: 0.05, straggler_slowdown: 0.8 }
    }
}

impl NoiseModel {
    /// A noise-free model, for deterministic tests.
    pub fn noiseless() -> Self {
        NoiseModel { sigma: 0.0, straggler_prob: 0.0, straggler_slowdown: 1.0 }
    }

    /// Observe a true speed once.
    pub fn observe<R: Rng>(&self, true_speed: f64, rng: &mut R) -> f64 {
        assert!(true_speed.is_finite() && true_speed > 0.0, "observe: bad speed {true_speed}");
        let mut v = true_speed;
        if self.sigma > 0.0 {
            // Box–Muller standard normal.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            v *= (self.sigma * z).exp();
        }
        if self.straggler_prob > 0.0 && rng.gen_bool(self.straggler_prob) {
            v *= self.straggler_slowdown;
        }
        v
    }

    /// Observe repeatedly and return all samples (one per probe iteration
    /// window).
    pub fn observe_n<R: Rng>(&self, true_speed: f64, n: usize, rng: &mut R) -> Vec<f64> {
        (0..n).map(|_| self.observe(true_speed, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_is_identity() {
        let m = NoiseModel::noiseless();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(m.observe(123.0, &mut rng), 123.0);
    }

    #[test]
    fn noise_is_unbiased_ish_and_bounded() {
        let m = NoiseModel::default();
        let mut rng = SmallRng::seed_from_u64(2);
        let xs = m.observe_n(100.0, 20_000, &mut rng);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        // Mean is slightly below 100 because of stragglers (5 % × 0.8).
        let expect = 100.0 * (0.95 + 0.05 * 0.8);
        assert!((mean - expect).abs() < 1.0, "mean {mean}, expect {expect}");
        for &x in &xs {
            assert!(x > 50.0 && x < 160.0, "outlier {x}");
        }
    }

    #[test]
    fn stragglers_create_bimodality() {
        let m = NoiseModel { sigma: 0.0, straggler_prob: 0.3, straggler_slowdown: 0.5 };
        let mut rng = SmallRng::seed_from_u64(3);
        let xs = m.observe_n(100.0, 2_000, &mut rng);
        let slow = xs.iter().filter(|&&x| (x - 50.0).abs() < 1e-9).count();
        let fast = xs.iter().filter(|&&x| (x - 100.0).abs() < 1e-9).count();
        assert_eq!(slow + fast, xs.len());
        let frac = slow as f64 / xs.len() as f64;
        assert!((frac - 0.3).abs() < 0.05, "straggler fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let m = NoiseModel::default();
        let a = m.observe_n(77.0, 10, &mut SmallRng::seed_from_u64(9));
        let b = m.observe_n(77.0, 10, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "bad speed")]
    fn rejects_nonpositive_speed() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = NoiseModel::default().observe(0.0, &mut rng);
    }
}
