//! Paleo-style analytical performance estimator (baseline).
//!
//! Paleo (Qi et al., ICLR'17) predicts distributed training time from
//! model architecture and hardware specs with no profiling at all. The
//! paper's finding (Fig 13): "as the cluster grows bigger, nuances like
//! communication topology demonstrate bigger impacts … these nuances are
//! particularly hard to capture by analytical modeling. Given Paleo does
//! not consider these nuances, it fails to find the optimal configuration."
//!
//! We reproduce exactly that failure mode: this estimator shares the
//! compute model with the ground truth (analytical FLOP counting is what
//! Paleo is genuinely good at) but idealises everything the ground truth
//! says hurts at scale — no incast, no per-step latency, no stragglers, no
//! batch-starvation, full compute/comm overlap. Its predictions are
//! therefore optimistic for large clusters, and a deployment chosen by
//! minimising them over-scales-out.

use crate::comm::CommModel;
use crate::compute;
use crate::models::TrainingJob;
use crate::throughput::{Infeasible, ThroughputModel};
use mlcd_cloudsim::{InstanceType, SimDuration};

/// The analytical estimator.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaleoEstimator {
    /// Used only for feasibility checks (memory), which Paleo does model.
    truth_for_feasibility: ThroughputModel,
}

impl PaleoEstimator {
    /// Predicted training speed in samples/second (optimistic at scale).
    pub fn predicted_throughput(
        &self,
        job: &TrainingJob,
        itype: InstanceType,
        n: u32,
    ) -> Result<f64, Infeasible> {
        self.truth_for_feasibility.feasible(job, itype, n)?;
        let spec = itype.spec();
        let per_node_batch = job.global_batch as f64 / n as f64;

        // Compute: plain FLOPs over effective FLOPS. No straggler term and
        // no batch-efficiency penalty (Paleo assumes perfectly saturated
        // devices).
        let gflops_needed = job.model.train_gflops_per_sample() * per_node_batch;
        let compute_s = gflops_needed / compute::effective_gflops(&job.model, job.platform, spec);

        // Communication: perfectly sharded aggregation (each node moves
        // only its 1/n shard), fully overlapped with compute (take the max
        // rather than the sum).
        let comm_s =
            CommModel::ideal_sharded_time(job.effective_grad_bytes(), n, spec.network_gbps);

        let iteration_s = compute_s.max(comm_s);
        Ok(job.global_batch as f64 / iteration_s)
    }

    /// Predicted time to finish the whole job.
    pub fn predicted_time(
        &self,
        job: &TrainingJob,
        itype: InstanceType,
        n: u32,
    ) -> Result<SimDuration, Infeasible> {
        let s = self.predicted_throughput(job, itype, n)?;
        Ok(SimDuration::from_secs(job.total_samples() / s))
    }

    /// Pick the deployment Paleo believes is fastest among `candidates`.
    /// Returns `None` when every candidate is infeasible.
    pub fn pick_fastest(
        &self,
        job: &TrainingJob,
        candidates: &[(InstanceType, u32)],
    ) -> Option<(InstanceType, u32)> {
        candidates
            .iter()
            .filter_map(|&(t, n)| self.predicted_throughput(job, t, n).ok().map(|s| ((t, n), s)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(d, _)| d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::TrainingJob;
    use crate::throughput::ThroughputModel;

    #[test]
    fn paleo_is_optimistic_and_increasingly_so_at_scale() {
        let paleo = PaleoEstimator::default();
        let truth = ThroughputModel::default();
        let job = TrainingJob::resnet_cifar10();
        let mut prev_gap = 0.0;
        for n in [1u32, 5, 15, 30, 50] {
            let p = paleo.predicted_throughput(&job, InstanceType::C54xlarge, n).unwrap();
            let t = truth.throughput(&job, InstanceType::C54xlarge, n).unwrap();
            let gap = p / t;
            assert!(gap >= 0.99, "Paleo must never be pessimistic: n={n}, gap {gap}");
            assert!(gap >= prev_gap, "optimism should grow with n: n={n}, {gap} vs {prev_gap}");
            prev_gap = gap;
        }
        // At n=50 the gap must be substantial — this is the paper's point.
        assert!(prev_gap > 1.5, "Paleo should be >1.5x optimistic at n=50, got {prev_gap}");
    }

    #[test]
    fn paleo_overscales_the_deployment() {
        // The deployment Paleo picks is larger than the true optimum, and
        // truly slower than the true optimum.
        let paleo = PaleoEstimator::default();
        let truth = ThroughputModel::default();
        let job = TrainingJob::resnet_cifar10();
        let candidates: Vec<(InstanceType, u32)> =
            (1..=50).map(|n| (InstanceType::C54xlarge, n)).collect();
        let (pt, pn) = paleo.pick_fastest(&job, &candidates).unwrap();
        let (tt, tn) = candidates
            .iter()
            .copied()
            .max_by(|a, b| {
                truth
                    .throughput(&job, a.0, a.1)
                    .unwrap()
                    .total_cmp(&truth.throughput(&job, b.0, b.1).unwrap())
            })
            .unwrap();
        assert_eq!(pt, tt);
        assert!(pn > tn, "Paleo picked n={pn}, truth optimum n={tn}");
        let s_paleo_choice = truth.throughput(&job, pt, pn).unwrap();
        let s_true_best = truth.throughput(&job, tt, tn).unwrap();
        assert!(s_paleo_choice < s_true_best);
    }

    #[test]
    fn agrees_with_truth_on_single_node_compute_bound() {
        // With no communication and saturated batches, the models coincide
        // up to the straggler/batch corrections (absent at n=1, b=ref).
        let paleo = PaleoEstimator::default();
        let truth = ThroughputModel::default();
        let mut job = TrainingJob::resnet_cifar10();
        job.global_batch = 64; // the reference batch: batch_efficiency = 1
        let p = paleo.predicted_throughput(&job, InstanceType::C54xlarge, 1).unwrap();
        let t = truth.throughput(&job, InstanceType::C54xlarge, 1).unwrap();
        assert!((p / t - 1.0).abs() < 0.05, "p={p} t={t}");
    }

    #[test]
    fn respects_memory_feasibility() {
        let paleo = PaleoEstimator::default();
        let job = TrainingJob {
            model: crate::models::ModelSpec::zero_20b(),
            dataset: crate::models::DatasetSpec::bert_corpus(),
            epochs: 1,
            global_batch: 2048,
            platform: crate::platform::Platform::PyTorch,
            topology: crate::comm::CommTopology::RingAllReduce,
            grad_keep_frac: 1.0,
            scaling: crate::models::ScalingMode::Strong,
        };
        assert!(paleo.predicted_throughput(&job, InstanceType::P38xlarge, 1).is_err());
        assert!(paleo.predicted_throughput(&job, InstanceType::P38xlarge, 8).is_ok());
    }
}
