//! Calibrating the performance model against real measurements.
//!
//! The ground-truth constants in [`crate::comm::CommModel`] are calibration
//! values for *our* simulated cloud. A user pointing MLCD at their own
//! cloud (or a harder-to-model interconnect) can measure a handful of
//! deployments and fit the communication constants so the analytical model
//! tracks their reality — this is the same move Paleo-style models need,
//! but data-driven instead of hand-derived.
//!
//! Fitting minimises the sum of squared *log*-throughput errors (relative
//! error, so a 10 % miss at 30 samples/s weighs the same as one at 3 000)
//! with multi-start Nelder–Mead in log-parameter space.

use crate::comm::CommModel;
use crate::models::TrainingJob;
use crate::throughput::ThroughputModel;
use mlcd_cloudsim::InstanceType;
use mlcd_linalg::{multi_start_nelder_mead, NelderMeadOptions, SampleRange};
use serde::Serialize;

/// One measured deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CalibrationSample {
    /// Instance type measured.
    pub itype: InstanceType,
    /// Node count measured.
    pub n: u32,
    /// Observed sustained training speed, samples/second.
    pub speed: f64,
}

/// Why calibration failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalibError {
    /// Need at least this many usable samples to fit two constants.
    TooFewSamples {
        /// How many usable samples were supplied.
        got: usize,
        /// How many are needed.
        need: usize,
    },
    /// A sample had a non-positive or non-finite speed.
    BadSample(usize),
    /// Every sample was infeasible for the job under the model (wrong job?).
    NothingFeasible,
}

impl std::fmt::Display for CalibError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibError::TooFewSamples { got, need } => {
                write!(f, "calibration needs ≥{need} samples, got {got}")
            }
            CalibError::BadSample(i) => write!(f, "sample {i} has a bad speed"),
            CalibError::NothingFeasible => {
                write!(f, "no sample is feasible for this job under the model")
            }
        }
    }
}

impl std::error::Error for CalibError {}

/// A fitted model plus its goodness of fit.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Calibrated {
    /// The throughput model with fitted communication constants.
    pub model: ThroughputModel,
    /// Root-mean-square relative throughput error over the samples.
    pub rel_rmse: f64,
}

/// Fits [`CommModel`] constants to measurements of one training job.
///
/// ```
/// use mlcd_perfmodel::{Calibrator, CalibrationSample, ThroughputModel, TrainingJob};
/// use mlcd_cloudsim::InstanceType;
///
/// let job = TrainingJob::resnet_cifar10();
/// // Measurements (here: generated from the default model itself).
/// let truth = ThroughputModel::default();
/// let samples: Vec<CalibrationSample> = [1u32, 4, 8, 16, 32]
///     .iter()
///     .map(|&n| CalibrationSample {
///         itype: InstanceType::C54xlarge,
///         n,
///         speed: truth.throughput(&job, InstanceType::C54xlarge, n).unwrap(),
///     })
///     .collect();
/// let fitted = Calibrator::new(job).fit(&samples).unwrap();
/// assert!(fitted.rel_rmse < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct Calibrator {
    job: TrainingJob,
    /// Nelder–Mead restarts.
    pub n_starts: usize,
    /// Fit seed (deterministic per seed).
    pub seed: u64,
}

/// Minimum usable samples: two constants plus slack.
const MIN_SAMPLES: usize = 4;

impl Calibrator {
    /// Calibrator for measurements of `job`.
    pub fn new(job: TrainingJob) -> Self {
        Calibrator { job, n_starts: 12, seed: 0xCA11B }
    }

    fn model_with(theta: &[f64]) -> ThroughputModel {
        ThroughputModel {
            comm: CommModel {
                ps_incast_per_peer: theta[0].exp(),
                ring_step_latency: theta[1].exp(),
            },
        }
    }

    fn loss(&self, theta: &[f64], samples: &[CalibrationSample]) -> f64 {
        let model = Self::model_with(theta);
        let mut sum = 0.0;
        let mut used = 0usize;
        for s in samples {
            let Ok(pred) = model.throughput(&self.job, s.itype, s.n) else { continue };
            let e = (pred.ln() - s.speed.ln()).powi(2);
            sum += e;
            used += 1;
        }
        if used == 0 {
            f64::INFINITY
        } else {
            sum / used as f64
        }
    }

    /// Fit the communication constants to the samples.
    pub fn fit(&self, samples: &[CalibrationSample]) -> Result<Calibrated, CalibError> {
        for (i, s) in samples.iter().enumerate() {
            if !(s.speed.is_finite() && s.speed > 0.0) {
                return Err(CalibError::BadSample(i));
            }
        }
        let probe = ThroughputModel::default();
        let usable =
            samples.iter().filter(|s| probe.feasible(&self.job, s.itype, s.n).is_ok()).count();
        if usable < MIN_SAMPLES {
            if usable == 0 && !samples.is_empty() {
                return Err(CalibError::NothingFeasible);
            }
            return Err(CalibError::TooFewSamples { got: usable, need: MIN_SAMPLES });
        }

        // Latency constants live between 10 µs and 1 s.
        let ranges = [
            SampleRange::new((1e-5f64).ln(), (1.0f64).ln()),
            SampleRange::new((1e-5f64).ln(), (1.0f64).ln()),
        ];
        let best = multi_start_nelder_mead(
            |theta| self.loss(theta, samples),
            &ranges,
            self.n_starts,
            self.seed,
            &NelderMeadOptions { max_evals: 400, ..Default::default() },
        );
        let model = Self::model_with(&best.x);

        // Goodness of fit in relative-RMSE terms.
        let mut sq = 0.0;
        let mut used = 0usize;
        for s in samples {
            if let Ok(pred) = model.throughput(&self.job, s.itype, s.n) {
                sq += ((pred - s.speed) / s.speed).powi(2);
                used += 1;
            }
        }
        Ok(Calibrated { model, rel_rmse: (sq / used as f64).sqrt() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Generate noisy samples from a "foreign cloud" with different comm
    /// constants than our defaults.
    fn foreign_samples(
        job: &TrainingJob,
        comm: CommModel,
        noise_sd: f64,
        seed: u64,
    ) -> Vec<CalibrationSample> {
        let truth = ThroughputModel { comm };
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for t in [InstanceType::C5Xlarge, InstanceType::C54xlarge, InstanceType::P2Xlarge] {
            for n in [1u32, 4, 8, 16, 24, 32, 48] {
                if let Ok(s) = truth.throughput(job, t, n) {
                    let noisy = s * (1.0 + noise_sd * rng.gen_range(-1.0..1.0));
                    out.push(CalibrationSample { itype: t, n, speed: noisy });
                }
            }
        }
        out
    }

    #[test]
    fn recovers_foreign_constants() {
        let job = TrainingJob::resnet_cifar10();
        // A cloud with 3× our default PS incast and 2× ring latency.
        let foreign = CommModel { ps_incast_per_peer: 45e-3, ring_step_latency: 3e-3 };
        let samples = foreign_samples(&job, foreign, 0.0, 1);
        let fitted = Calibrator::new(job).fit(&samples).unwrap();
        let got = fitted.model.comm.ps_incast_per_peer;
        assert!(
            (got / foreign.ps_incast_per_peer - 1.0).abs() < 0.15,
            "incast: got {got}, want {}",
            foreign.ps_incast_per_peer
        );
        assert!(fitted.rel_rmse < 0.02, "rmse {}", fitted.rel_rmse);
    }

    #[test]
    fn tolerates_measurement_noise() {
        let job = TrainingJob::resnet_cifar10();
        let foreign = CommModel { ps_incast_per_peer: 30e-3, ring_step_latency: 1.5e-3 };
        let samples = foreign_samples(&job, foreign, 0.05, 2);
        let fitted = Calibrator::new(job).fit(&samples).unwrap();
        // Fit should land in the right ballpark and explain the data well.
        let got = fitted.model.comm.ps_incast_per_peer;
        assert!((got / 30e-3).ln().abs() < 0.5, "incast off: {got}");
        assert!(fitted.rel_rmse < 0.10, "rmse {}", fitted.rel_rmse);
    }

    #[test]
    fn fitted_model_predicts_held_out_points() {
        let job = TrainingJob::resnet_cifar10();
        let foreign = CommModel { ps_incast_per_peer: 25e-3, ring_step_latency: 2e-3 };
        let truth = ThroughputModel { comm: foreign };
        let samples = foreign_samples(&job, foreign, 0.02, 3);
        let fitted = Calibrator::new(job.clone()).fit(&samples).unwrap();
        // Held-out point (n = 40, not in the training grid).
        let held = truth.throughput(&job, InstanceType::C54xlarge, 40).unwrap();
        let pred = fitted.model.throughput(&job, InstanceType::C54xlarge, 40).unwrap();
        assert!((pred / held - 1.0).abs() < 0.10, "held-out: pred {pred:.1} vs true {held:.1}");
    }

    #[test]
    fn input_validation() {
        let job = TrainingJob::resnet_cifar10();
        let cal = Calibrator::new(job);
        assert!(matches!(cal.fit(&[]), Err(CalibError::TooFewSamples { got: 0, .. })));
        let bad = [CalibrationSample { itype: InstanceType::C5Xlarge, n: 2, speed: -1.0 }];
        assert!(matches!(cal.fit(&bad), Err(CalibError::BadSample(0))));
        let few = [
            CalibrationSample { itype: InstanceType::C5Xlarge, n: 2, speed: 100.0 },
            CalibrationSample { itype: InstanceType::C5Xlarge, n: 4, speed: 180.0 },
        ];
        assert!(matches!(cal.fit(&few), Err(CalibError::TooFewSamples { got: 2, .. })));
    }

    #[test]
    fn deterministic_per_seed() {
        let job = TrainingJob::resnet_cifar10();
        let foreign = CommModel { ps_incast_per_peer: 20e-3, ring_step_latency: 1e-3 };
        let samples = foreign_samples(&job, foreign, 0.03, 4);
        let a = Calibrator::new(job.clone()).fit(&samples).unwrap();
        let b = Calibrator::new(job).fit(&samples).unwrap();
        assert_eq!(a.model.comm, b.model.comm);
    }
}
