//! The per-job greedy baseline: what the same workload costs when every
//! job gets its own infinite-quota cloud and never queues.
//!
//! Fleet policies are judged on *aggregate cost saving vs per-job
//! greedy* — the classic "run each job as if it were alone" deployment
//! the paper's single-job experiments model. Each job is replayed with
//! the same per-job seed and the default (sine) market through the
//! standard [`ExperimentRunner::run`] path.

use mlcd::prelude::{ExperimentRunner, Money};
use mlcd::search::searcher_by_name;

use crate::scenario::FleetScenario;

/// Total cost of running every job in `scenario` in isolation (own
/// simulated cloud, no admission control, no contention).
///
/// # Panics
/// Panics if a template names an unknown searcher (static scenario
/// configuration, same contract as [`FleetScenario::jobs`]).
pub fn per_job_greedy_cost(scenario: &FleetScenario) -> Money {
    scenario
        .jobs()
        .iter()
        .map(|j| {
            let runner = ExperimentRunner::new(j.seed)
                .with_types(scenario.types.clone())
                .with_max_nodes(scenario.max_nodes);
            let searcher =
                searcher_by_name(j.searcher, j.seed).expect("scenario names a known searcher");
            runner.run(searcher.as_ref(), &j.job, &j.scenario).total_cost
        })
        .sum()
}
