//! Fleet scenarios: who arrives when, wanting what.
//!
//! A [`FleetScenario`] is a *generator*: a seed, an arrival process and a
//! set of job templates expand deterministically into a concrete
//! [`FleetJob`] list. Everything downstream (driver, goldens, benches)
//! consumes the expanded list, so the same scenario value always
//! reproduces the same fleet bit-for-bit.

use mlcd::prelude::{InstanceType, Scenario, SimDuration, SimTime, TrainingJob};
use mlcd_cloudsim::MarketMode;
use serde::Serialize;

/// Splitmix64 — the same cheap mixing the spot market uses, local copy
/// so the arrival process needs no RNG object.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in (0, 1] from a hash (never exactly zero, safe for `ln`).
fn unit(h: u64) -> f64 {
    ((h >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

/// How job arrival instants are generated.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: inter-arrival gaps are exponential draws with
    /// the given rate, seeded from the scenario seed.
    Poisson {
        /// Mean arrivals per hour.
        rate_per_hour: f64,
    },
    /// Replay explicit arrival offsets (hours from fleet start). Extra
    /// jobs beyond the trace repeat its last gap.
    Trace {
        /// Arrival offsets in hours, ascending.
        offsets_hours: Vec<f64>,
    },
}

/// What one arriving job looks like. Templates are cycled round-robin
/// over the arrival sequence.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobTemplate {
    /// Preset training-job name ([`TrainingJob::by_name`]).
    pub job: &'static str,
    /// Searcher name ([`mlcd::search::searcher_by_name`]).
    pub searcher: &'static str,
    /// Scheduler priority (higher is more important).
    pub priority: u8,
    /// Deadline in hours from arrival → [`Scenario::CheapestWithDeadline`].
    pub deadline_hours: Option<f64>,
    /// Budget in USD → [`Scenario::FastestWithBudget`]. Ignored when a
    /// deadline is set. Neither → [`Scenario::FastestUnlimited`].
    pub budget_usd: Option<f64>,
}

/// A fleet workload: arrival process, templates and the shared pool's
/// shape.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetScenario {
    /// Master seed: arrivals, per-job searcher seeds and the shared
    /// cloud all derive from it.
    pub seed: u64,
    /// Arrival instant generator.
    pub arrivals: ArrivalProcess,
    /// Number of jobs to expand.
    pub n_jobs: u32,
    /// Job templates, cycled in arrival order.
    pub templates: Vec<JobTemplate>,
    /// Capacity cap per CPU instance type (the finite pool).
    pub cpu_cap: u32,
    /// Capacity cap per GPU instance type.
    pub gpu_cap: u32,
    /// Instance types tenants may search over.
    pub types: Vec<InstanceType>,
    /// Scale-out cap per tenant.
    pub max_nodes: u32,
    /// Spot price process for the shared market.
    pub market: MarketMode,
}

/// One expanded job: a concrete tenant of the fleet.
#[derive(Debug, Clone, Serialize)]
pub struct FleetJob {
    /// Fleet-assigned id (arrival order, starting at 0).
    pub id: u64,
    /// Arrival instant.
    pub arrival: SimTime,
    /// The training job.
    pub job: TrainingJob,
    /// Preset name the job was resolved from.
    pub job_name: &'static str,
    /// Searcher name.
    pub searcher: &'static str,
    /// Per-job searcher/platform seed.
    pub seed: u64,
    /// Scheduler priority.
    pub priority: u8,
    /// The per-job optimization scenario (deadline measured from
    /// arrival).
    pub scenario: Scenario,
}

impl FleetScenario {
    /// The contended presets the benches and goldens use: a finite pool
    /// with `level` ∈ 1..=3 turning up job pressure while turning down
    /// capacity. Level 2 and up are genuinely contended (pending probe
    /// demand routinely exceeds free capacity).
    pub fn contended(level: u8, seed: u64) -> FleetScenario {
        let (n_jobs, rate, cpu_cap, gpu_cap) = match level {
            1 => (8u32, 2.0, 48, 12),
            2 => (10, 3.0, 24, 8),
            _ => (12, 4.0, 16, 6),
        };
        FleetScenario {
            seed,
            arrivals: ArrivalProcess::Poisson { rate_per_hour: rate },
            n_jobs,
            templates: vec![
                JobTemplate {
                    job: "resnet-cifar10",
                    searcher: "heterbo",
                    priority: 2,
                    deadline_hours: Some(30.0),
                    budget_usd: None,
                },
                JobTemplate {
                    job: "char-rnn",
                    searcher: "heterbo",
                    priority: 0,
                    deadline_hours: None,
                    budget_usd: Some(60.0),
                },
                JobTemplate {
                    job: "alexnet-cifar10",
                    searcher: "heterbo",
                    priority: 1,
                    deadline_hours: Some(40.0),
                    budget_usd: None,
                },
                JobTemplate {
                    job: "resnet-cifar10",
                    searcher: "heterbo",
                    priority: 0,
                    deadline_hours: None,
                    budget_usd: None,
                },
            ],
            cpu_cap,
            gpu_cap,
            types: vec![
                InstanceType::C5Xlarge,
                InstanceType::C54xlarge,
                InstanceType::C5n4xlarge,
                InstanceType::P2Xlarge,
            ],
            max_nodes: 12,
            market: MarketMode::RandomWalk,
        }
    }

    /// The capacity cap that applies to `itype` in this scenario.
    pub fn cap_for(&self, itype: InstanceType) -> u32 {
        if itype.spec().has_gpu() {
            self.gpu_cap
        } else {
            self.cpu_cap
        }
    }

    /// Expand into the concrete job list, ascending by arrival.
    ///
    /// # Panics
    /// Panics if a template names an unknown job preset (scenarios are
    /// static configuration, not user input).
    pub fn jobs(&self) -> Vec<FleetJob> {
        assert!(!self.templates.is_empty(), "fleet scenario needs at least one template");
        let mut out = Vec::with_capacity(self.n_jobs as usize);
        let mut at_hours = 0.0f64;
        let mut last_gap = 0.25f64;
        for i in 0..u64::from(self.n_jobs) {
            let gap = match &self.arrivals {
                ArrivalProcess::Poisson { rate_per_hour } => {
                    let u = unit(mix(self.seed ^ mix(i)));
                    -u.ln() / rate_per_hour.max(1e-9)
                }
                ArrivalProcess::Trace { offsets_hours } => match offsets_hours.get(i as usize) {
                    Some(&off) => off - at_hours,
                    None => last_gap,
                },
            };
            last_gap = gap.max(0.0);
            at_hours += last_gap;
            let tpl = &self.templates[(i as usize) % self.templates.len()];
            let job = TrainingJob::by_name(tpl.job)
                .unwrap_or_else(|| panic!("unknown job preset {:?}", tpl.job));
            let scenario = match (tpl.deadline_hours, tpl.budget_usd) {
                (Some(h), _) => Scenario::CheapestWithDeadline(SimDuration::from_hours(h)),
                (None, Some(usd)) => {
                    Scenario::FastestWithBudget(mlcd::prelude::Money::from_dollars(usd))
                }
                (None, None) => Scenario::FastestUnlimited,
            };
            out.push(FleetJob {
                id: i,
                arrival: SimTime::from_secs(at_hours * 3600.0),
                job,
                job_name: tpl.job,
                searcher: tpl.searcher,
                seed: mix(self.seed ^ (i.wrapping_mul(0x9E37_79B9))),
                priority: tpl.priority,
                scenario,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic_and_sorted() {
        let s = FleetScenario::contended(2, 2020);
        let a = s.jobs();
        let b = s.jobs();
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.arrival.as_secs().to_bits(), y.arrival.as_secs().to_bits());
            assert_eq!(x.seed, y.seed);
        }
        for w in a.windows(2) {
            assert!(w[1].arrival.as_secs() >= w[0].arrival.as_secs());
        }
    }

    #[test]
    fn seeds_differ_across_jobs_and_fleet_seeds() {
        let a = FleetScenario::contended(1, 1).jobs();
        let b = FleetScenario::contended(1, 2).jobs();
        assert_ne!(a[0].seed, a[1].seed);
        assert_ne!(a[0].seed, b[0].seed);
        assert_ne!(a[0].arrival.as_secs().to_bits(), b[0].arrival.as_secs().to_bits());
    }

    #[test]
    fn trace_arrivals_replay_offsets() {
        let mut s = FleetScenario::contended(1, 7);
        s.arrivals = ArrivalProcess::Trace { offsets_hours: vec![0.0, 1.0, 1.5] };
        s.n_jobs = 4;
        let jobs = s.jobs();
        let hrs: Vec<f64> = jobs.iter().map(|j| j.arrival.as_hours()).collect();
        assert!((hrs[0] - 0.0).abs() < 1e-9);
        assert!((hrs[1] - 1.0).abs() < 1e-9);
        assert!((hrs[2] - 1.5).abs() < 1e-9);
        // Fourth job repeats the last gap.
        assert!((hrs[3] - 2.0).abs() < 1e-9);
    }
}
