//! Fleet schedulers: who gets the next cluster, and who waits.
//!
//! Everything in this file is *pure*: policies compute a [`Decision`]
//! from an immutable [`FleetView`], and the event fold turns dispatched
//! sim events into counters. No I/O, no clocks, no locks, no channels —
//! this file is pinned under mlcd-lint's R8 sim-handler purity rule, so
//! the driver's blocking machinery must live elsewhere.

use mlcd_cloudsim::{InstanceType, Money, SimDuration, SimEvent, SimTime};
use std::collections::BTreeMap;

/// Fleet-assigned job identifier (arrival order).
pub type JobId = u64;

/// Why a tenant wants a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Purpose {
    /// An exploration probe issued by the search phase.
    Probe,
    /// The final training run on the chosen deployment. Policies may
    /// defer trainings behind capacity, but must never [`Decision::Deny`]
    /// them — a denied training forfeits the whole search investment.
    Train,
}

/// One tenant's pending launch request, as the scheduler sees it.
#[derive(Debug, Clone, Copy)]
pub struct PendingReq {
    /// Requested instance type.
    pub itype: InstanceType,
    /// Requested node count.
    pub n: u32,
    /// Whether the tenant asked for spot capacity.
    pub spot: bool,
    /// Probe or final training.
    pub purpose: Purpose,
    /// When the request was issued (queueing delay is measured from
    /// here).
    pub requested_at: SimTime,
    /// Heuristic upper bound on what granting this will cost (on-demand
    /// rate × nodes × quoted probe duration). The cost-cooled policy
    /// throttles on this.
    pub quoted_cost: Money,
}

/// Per-job context the scheduler may weigh.
#[derive(Debug, Clone, Copy)]
pub struct JobCtx {
    /// Scenario priority (higher is more important).
    pub priority: u8,
    /// When the job arrived.
    pub arrived_at: SimTime,
    /// Absolute deadline instant, if the job's scenario has one.
    pub deadline_at: Option<SimTime>,
    /// Money this job has spent on the pool so far.
    pub spent: Money,
    /// Launches granted to this job so far.
    pub granted: u32,
    /// Launches denied to this job so far.
    pub denied: u32,
}

/// Immutable scheduler input: the pool and queue state at one instant.
#[derive(Debug)]
pub struct FleetView<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// Configured capacity per instance type.
    pub caps: &'a BTreeMap<InstanceType, u32>,
    /// Instances currently free per type.
    pub free: &'a BTreeMap<InstanceType, u32>,
    /// Pending requests, one per job (a tenant blocks until its request
    /// settles, so it can never have two in flight).
    pub pending: &'a BTreeMap<JobId, PendingReq>,
    /// Context for every live job.
    pub jobs: &'a BTreeMap<JobId, JobCtx>,
}

impl FleetView<'_> {
    /// Whether `req` fits the free capacity right now.
    pub fn fits(&self, req: &PendingReq) -> bool {
        self.free.get(&req.itype).copied().unwrap_or(0) >= req.n
    }

    /// Total nodes demanded by pending probe requests.
    pub fn pending_probe_nodes(&self) -> u32 {
        self.pending.values().filter(|r| r.purpose == Purpose::Probe).map(|r| r.n).sum()
    }

    /// Total free nodes across all capped types.
    pub fn free_nodes(&self) -> u32 {
        self.free.values().sum()
    }
}

/// One scheduling step's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Launch this job's pending request now.
    Grant(JobId),
    /// Refuse this job's pending request outright (the tenant sees a
    /// failed launch and its searcher drops the candidate).
    Deny(JobId),
    /// Nothing should be admitted at this instant; let time advance.
    Wait,
}

/// A cross-job admission policy. The driver calls [`decide`] repeatedly
/// at each instant until it returns [`Decision::Wait`]; every grant or
/// denial updates the view before the next call.
///
/// [`decide`]: FleetScheduler::decide
pub trait FleetScheduler: Send {
    /// Stable policy name (CLI flag value, digest header, bench label).
    fn name(&self) -> &'static str;
    /// Pick at most one request to settle at this instant.
    fn decide(&mut self, view: &FleetView<'_>) -> Decision;
}

/// The policy names [`policy_by_name`] resolves, in display order.
pub const POLICY_NAMES: [&str; 3] = ["fifo", "deadline", "fairshare"];

/// Construct a policy from its CLI name with default parameters.
pub fn policy_by_name(name: &str) -> Option<Box<dyn FleetScheduler>> {
    Some(match name {
        "fifo" => Box::new(FifoGreedy),
        "deadline" => Box::new(DeadlineAware::default()),
        "fairshare" => Box::new(CostCooledFairShare::default()),
        _ => return None,
    })
}

/// Sort key: request age then job id, so ties never depend on map
/// insertion history.
fn fifo_key(req: &PendingReq, job: JobId) -> (u64, JobId) {
    (req.requested_at.as_secs().to_bits(), job)
}

/// Baseline: strict arrival order, head-of-line blocking. The oldest
/// pending request is granted iff it fits; everything younger waits
/// behind it (the convoy effect is the point — this is the policy the
/// smarter ones must beat).
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoGreedy;

impl FleetScheduler for FifoGreedy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn decide(&mut self, view: &FleetView<'_>) -> Decision {
        let oldest = view.pending.iter().min_by_key(|(job, req)| fifo_key(req, **job));
        match oldest {
            Some((job, req)) if view.fits(req) => Decision::Grant(*job),
            _ => Decision::Wait,
        }
    }
}

/// Priority/deadline-aware admission with per-type capacity
/// reservations: requests are ordered by (priority desc, deadline slack
/// asc), and jobs with no deadline may only consume capacity down to a
/// reserved floor, keeping headroom for deadline traffic. Trainings
/// bypass the reservation — the investment is already sunk.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineAware {
    /// Fraction of each type's capacity held back from no-deadline jobs.
    pub reserve_frac: f64,
}

impl Default for DeadlineAware {
    fn default() -> Self {
        DeadlineAware { reserve_frac: 0.25 }
    }
}

impl FleetScheduler for DeadlineAware {
    fn name(&self) -> &'static str {
        "deadline"
    }

    fn decide(&mut self, view: &FleetView<'_>) -> Decision {
        // Order: priority desc, slack asc (tightest deadline first),
        // then FIFO key for determinism.
        let mut order: Vec<(JobId, &PendingReq)> =
            view.pending.iter().map(|(j, r)| (*j, r)).collect();
        order.sort_by(|a, b| {
            let ctx = |j: JobId| view.jobs.get(&j).copied();
            let (ca, cb) = (ctx(a.0), ctx(b.0));
            let prio = |c: Option<JobCtx>| c.map(|c| c.priority).unwrap_or(0);
            let slack = |c: Option<JobCtx>| {
                c.and_then(|c| c.deadline_at)
                    .map(|d| d.since(view.now).as_secs())
                    .unwrap_or(f64::INFINITY)
            };
            prio(cb)
                .cmp(&prio(ca))
                .then(slack(ca).total_cmp(&slack(cb)))
                .then(fifo_key(a.1, a.0).cmp(&fifo_key(b.1, b.0)))
        });
        for (job, req) in order {
            if !view.fits(req) {
                continue;
            }
            let has_deadline = view.jobs.get(&job).and_then(|c| c.deadline_at).is_some();
            if req.purpose == Purpose::Train || has_deadline {
                return Decision::Grant(job);
            }
            // No-deadline probe: must leave the reserved floor free.
            let cap = view.caps.get(&req.itype).copied().unwrap_or(0);
            let free = view.free.get(&req.itype).copied().unwrap_or(0);
            let reserve = (f64::from(cap) * self.reserve_frac).ceil() as u32;
            if free.saturating_sub(req.n) >= reserve {
                return Decision::Grant(job);
            }
        }
        Decision::Wait
    }
}

/// Cost-cooled fair share: prefers the job that has spent the least so
/// far, and under contention *denies* exploration probes whose quoted
/// cost exceeds a cooling threshold — expensive probes are exactly the
/// ones worth skipping when the pool is scarce (the paper's
/// heterogeneous-cost argument at fleet scale). Trainings are never
/// denied and always scheduled first.
#[derive(Debug, Clone, Copy)]
pub struct CostCooledFairShare {
    /// Probe-cost ceiling when the pool is idle, USD. The effective
    /// ceiling cools as `base / (1 + contention)` where contention is
    /// pending probe demand over free nodes.
    pub base_ceiling_usd: f64,
}

impl Default for CostCooledFairShare {
    fn default() -> Self {
        CostCooledFairShare { base_ceiling_usd: 2.0 }
    }
}

impl FleetScheduler for CostCooledFairShare {
    fn name(&self) -> &'static str {
        "fairshare"
    }

    fn decide(&mut self, view: &FleetView<'_>) -> Decision {
        // Trainings first, in FIFO order.
        let mut trains: Vec<(JobId, &PendingReq)> = view
            .pending
            .iter()
            .filter(|(_, r)| r.purpose == Purpose::Train)
            .map(|(j, r)| (*j, r))
            .collect();
        trains.sort_by_key(|(j, r)| fifo_key(r, *j));
        if let Some((job, _)) = trains.iter().find(|(_, r)| view.fits(r)) {
            return Decision::Grant(*job);
        }

        // Cooling: the more probe demand outstrips free capacity, the
        // lower the admissible probe cost.
        let contention =
            f64::from(view.pending_probe_nodes()) / f64::from(view.free_nodes().max(1));
        let ceiling = self.base_ceiling_usd / (1.0 + contention);
        let mut probes: Vec<(JobId, &PendingReq)> = view
            .pending
            .iter()
            .filter(|(_, r)| r.purpose == Purpose::Probe)
            .map(|(j, r)| (*j, r))
            .collect();
        // Deny the first over-ceiling probe (deterministic order) —
        // one settlement per decide call keeps the view honest.
        probes.sort_by_key(|(j, r)| fifo_key(r, *j));
        if let Some((job, _)) = probes.iter().find(|(_, r)| r.quoted_cost.dollars() > ceiling) {
            return Decision::Deny(*job);
        }
        // Fair share among the survivors: least-spent job first.
        probes.sort_by(|a, b| {
            let spent = |j: JobId| view.jobs.get(&j).map(|c| c.spent.dollars()).unwrap_or(0.0);
            spent(a.0).total_cmp(&spent(b.0)).then(fifo_key(a.1, a.0).cmp(&fifo_key(b.1, b.0)))
        });
        match probes.iter().find(|(_, r)| view.fits(r)) {
            Some((job, _)) => Decision::Grant(*job),
            None => Decision::Wait,
        }
    }
}

/// Pure fold of fleet sim events into counters — the scheduler-side
/// event handler pinned under the R8 purity rule. The driver feeds it
/// every event it emits; tests and the service stats path read the
/// totals.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct FleetEventFold {
    /// Jobs that arrived.
    pub arrived: u64,
    /// Launch requests granted.
    pub granted: u64,
    /// Launch requests denied.
    pub denied: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Completed jobs that missed their deadline.
    pub missed: u64,
    /// Total time grants spent queued.
    pub queue_wait: SimDuration,
}

impl FleetEventFold {
    /// Fold one dispatched event into the counters. Non-fleet events are
    /// ignored.
    pub fn on_event(&mut self, event: &SimEvent) {
        match event {
            SimEvent::JobArrived { .. } => self.arrived += 1,
            SimEvent::ProbeGranted { waited, .. } => {
                self.granted += 1;
                self.queue_wait += *waited;
            }
            SimEvent::ProbeDenied { .. } => self.denied += 1,
            SimEvent::JobCompleted { missed, .. } => {
                self.completed += 1;
                if *missed {
                    self.missed += 1;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn req(itype: InstanceType, n: u32, at: f64, purpose: Purpose, usd: f64) -> PendingReq {
        PendingReq {
            itype,
            n,
            spot: false,
            purpose,
            requested_at: t(at),
            quoted_cost: Money::from_dollars(usd),
        }
    }

    fn ctx(priority: u8, deadline: Option<f64>, spent: f64) -> JobCtx {
        JobCtx {
            priority,
            arrived_at: t(0.0),
            deadline_at: deadline.map(t),
            spent: Money::from_dollars(spent),
            granted: 0,
            denied: 0,
        }
    }

    struct Fixture {
        caps: BTreeMap<InstanceType, u32>,
        free: BTreeMap<InstanceType, u32>,
        pending: BTreeMap<JobId, PendingReq>,
        jobs: BTreeMap<JobId, JobCtx>,
    }

    impl Fixture {
        fn view(&self) -> FleetView<'_> {
            FleetView {
                now: t(1000.0),
                caps: &self.caps,
                free: &self.free,
                pending: &self.pending,
                jobs: &self.jobs,
            }
        }
    }

    fn fixture(free: u32) -> Fixture {
        let c5 = InstanceType::C54xlarge;
        Fixture {
            caps: [(c5, 16u32)].into_iter().collect(),
            free: [(c5, free)].into_iter().collect(),
            pending: BTreeMap::new(),
            jobs: BTreeMap::new(),
        }
    }

    #[test]
    fn fifo_grants_oldest_and_convoys() {
        let c5 = InstanceType::C54xlarge;
        let mut fx = fixture(8);
        fx.pending.insert(1, req(c5, 12, 10.0, Purpose::Probe, 1.0)); // oldest, too big
        fx.pending.insert(2, req(c5, 4, 20.0, Purpose::Probe, 1.0)); // would fit
        fx.jobs.insert(1, ctx(0, None, 0.0));
        fx.jobs.insert(2, ctx(0, None, 0.0));
        // Head-of-line blocks: the younger fitting request must wait.
        assert_eq!(FifoGreedy.decide(&fx.view()), Decision::Wait);
        fx.free.insert(c5, 12);
        assert_eq!(FifoGreedy.decide(&fx.view()), Decision::Grant(1));
    }

    #[test]
    fn deadline_aware_prefers_tight_slack_and_reserves() {
        let c5 = InstanceType::C54xlarge;
        let mut fx = fixture(6);
        fx.pending.insert(1, req(c5, 4, 10.0, Purpose::Probe, 1.0)); // no deadline
        fx.pending.insert(2, req(c5, 4, 20.0, Purpose::Probe, 1.0)); // tight deadline
        fx.jobs.insert(1, ctx(0, None, 0.0));
        fx.jobs.insert(2, ctx(0, Some(5000.0), 0.0));
        let mut p = DeadlineAware::default();
        // Deadline job wins despite being younger.
        assert_eq!(p.decide(&fx.view()), Decision::Grant(2));
        // Alone, the no-deadline job is blocked by the reserved floor
        // (cap 16 × 0.25 = 4 reserved; 6 free − 4 = 2 < 4)...
        fx.pending.remove(&2);
        assert_eq!(p.decide(&fx.view()), Decision::Wait);
        // ...unless it is a training, which bypasses the reservation.
        fx.pending.insert(1, req(c5, 4, 10.0, Purpose::Train, 1.0));
        assert_eq!(p.decide(&fx.view()), Decision::Grant(1));
    }

    #[test]
    fn fairshare_cools_expensive_probes_and_prefers_least_spent() {
        let c5 = InstanceType::C54xlarge;
        let mut fx = fixture(4);
        // Contention: 12 pending probe nodes over 4 free → ceiling
        // 2.0 / (1 + 3) = 0.5 USD.
        fx.pending.insert(1, req(c5, 4, 10.0, Purpose::Probe, 0.4));
        fx.pending.insert(2, req(c5, 4, 20.0, Purpose::Probe, 0.9)); // over ceiling
        fx.pending.insert(3, req(c5, 4, 30.0, Purpose::Probe, 0.3));
        fx.jobs.insert(1, ctx(0, None, 5.0));
        fx.jobs.insert(2, ctx(0, None, 0.0));
        fx.jobs.insert(3, ctx(0, None, 1.0));
        let mut p = CostCooledFairShare::default();
        // The over-ceiling probe is denied first.
        assert_eq!(p.decide(&fx.view()), Decision::Deny(2));
        fx.pending.remove(&2);
        // Then the least-spent job's probe is granted (job 3 spent less
        // than job 1).
        assert_eq!(p.decide(&fx.view()), Decision::Grant(3));
        // Trainings jump the whole queue and ignore the ceiling.
        fx.pending.insert(1, req(c5, 4, 10.0, Purpose::Train, 9.0));
        assert_eq!(p.decide(&fx.view()), Decision::Grant(1));
    }

    #[test]
    fn event_fold_counts() {
        let mut fold = FleetEventFold::default();
        fold.on_event(&SimEvent::JobArrived { job: 1 });
        fold.on_event(&SimEvent::ProbeGranted { job: 1, waited: SimDuration::from_mins(30.0) });
        fold.on_event(&SimEvent::ProbeDenied { job: 1 });
        fold.on_event(&SimEvent::JobCompleted { job: 1, missed: true });
        assert_eq!(
            (fold.arrived, fold.granted, fold.denied, fold.completed, fold.missed),
            (1, 1, 1, 1, 1)
        );
        assert!((fold.queue_wait.as_hours() - 0.5).abs() < 1e-12);
    }
}
