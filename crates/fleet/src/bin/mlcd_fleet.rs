//! `mlcd-fleet` — run multi-job fleets on a shared capacity pool.
//!
//! ```text
//! mlcd-fleet run --level 2 --policy fairshare --seed 2020 [--jobs 6] [--json]
//! mlcd-fleet compare --level 2 --seed 2020 [--jobs 6]   # all policies + greedy baseline
//! mlcd-fleet policies                                    # list schedulers
//! ```
//!
//! This is a standalone binary (not an `mlcd` subcommand) because the
//! fleet crate sits *above* `mlcd` in the dependency graph; folding it
//! into the core CLI would create a cycle.

use mlcd_fleet::{per_job_greedy_cost, policy_by_name, FleetScenario, FleetSim, POLICY_NAMES};
use serde_json::json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage("missing command");
    };
    match cmd.as_str() {
        "run" => run(rest),
        "compare" => compare(rest),
        "policies" => policies(),
        "help" | "--help" | "-h" => usage(""),
        other => usage(&format!("unknown command `{other}`")),
    }
}

#[derive(Clone)]
struct Opts {
    level: u8,
    policy: String,
    seed: u64,
    jobs: Option<u32>,
    json: bool,
}

fn parse(args: &[String]) -> Opts {
    let mut o = Opts { level: 1, policy: "fifo".to_string(), seed: 2020, jobs: None, json: false };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--level" => o.level = val("--level").parse().unwrap_or_else(|_| usage("bad --level")),
            "--policy" => o.policy = val("--policy"),
            "--seed" => o.seed = val("--seed").parse().unwrap_or_else(|_| usage("bad --seed")),
            "--jobs" => {
                o.jobs = Some(val("--jobs").parse().unwrap_or_else(|_| usage("bad --jobs")))
            }
            "--json" => o.json = true,
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    o
}

fn scenario_for(o: &Opts) -> FleetScenario {
    let mut s = FleetScenario::contended(o.level, o.seed);
    if let Some(n) = o.jobs {
        s.n_jobs = n;
    }
    s
}

fn run(args: &[String]) {
    let o = parse(args);
    let policy = policy_by_name(&o.policy)
        .unwrap_or_else(|| usage(&format!("unknown policy `{}`", o.policy)));
    let out = FleetSim::new(scenario_for(&o), policy).run();
    if o.json {
        println!("{}", serde_json::to_string_pretty(&out).expect("outcome serializes"));
        return;
    }
    print!("{}", out.digest());
    println!(
        "fleet: {} policy={} cost=${:.2} missed={}/{} wait={:.2}h util={:.1}% span={:.1}h",
        out.agg.completed,
        out.policy,
        out.agg.total_cost.dollars(),
        out.agg.missed,
        out.agg.deadline_jobs,
        out.agg.mean_queue_hours,
        out.agg.utilization * 100.0,
        out.agg.makespan_hours,
    );
}

fn compare(args: &[String]) {
    let o = parse(args);
    let scenario = scenario_for(&o);
    let greedy = per_job_greedy_cost(&scenario);
    let mut rows = Vec::new();
    for name in POLICY_NAMES {
        let out = FleetSim::new(scenario.clone(), policy_by_name(name).expect("known")).run();
        let saving = 1.0 - out.agg.total_cost.dollars() / greedy.dollars().max(1e-9);
        rows.push((name, out, saving));
    }
    if o.json {
        let v = json!({
            "level": o.level,
            "seed": o.seed,
            "greedy_usd": greedy.dollars(),
            "policies": rows.iter().map(|(name, out, saving)| json!({
                "policy": name,
                "total_usd": out.agg.total_cost.dollars(),
                "saving_vs_greedy": saving,
                "missed": out.agg.missed,
                "deadline_jobs": out.agg.deadline_jobs,
                "mean_queue_hours": out.agg.mean_queue_hours,
                "utilization": out.agg.utilization,
                "makespan_hours": out.agg.makespan_hours,
            })).collect::<Vec<_>>(),
        });
        println!("{}", serde_json::to_string_pretty(&v).expect("json"));
        return;
    }
    println!("per-job greedy baseline: ${:.2}", greedy.dollars());
    println!(
        "{:<10} {:>10} {:>8} {:>8} {:>8} {:>7} {:>7}",
        "policy", "cost", "saving", "missed", "wait(h)", "util%", "span(h)"
    );
    for (name, out, saving) in &rows {
        println!(
            "{:<10} {:>10.2} {:>7.1}% {:>5}/{:<2} {:>8.2} {:>7.1} {:>7.1}",
            name,
            out.agg.total_cost.dollars(),
            saving * 100.0,
            out.agg.missed,
            out.agg.deadline_jobs,
            out.agg.mean_queue_hours,
            out.agg.utilization * 100.0,
            out.agg.makespan_hours,
        );
    }
}

fn policies() {
    for name in POLICY_NAMES {
        println!("{name}");
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage:\n  mlcd-fleet run --level <1..3> --policy <name> [--seed N] [--jobs N] [--json]\n  \
         mlcd-fleet compare --level <1..3> [--seed N] [--jobs N] [--json]\n  \
         mlcd-fleet policies"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
