//! The tenant-side shim: a [`CloudInterface`] whose lifecycle calls
//! block on the fleet driver.
//!
//! Each fleet job runs the *unmodified* single-job pipeline — searcher →
//! [`Profiler`](mlcd::prelude::Profiler) → training — on its own thread,
//! against a [`TenantCloud`] instead of a private `SimCloud`. Launches
//! become admission requests the [`FleetScheduler`](crate::policy::FleetScheduler)
//! arbitrates; waits become time-blocks the driver resolves by advancing
//! the one shared clock. The strict handoff protocol (at most one tenant
//! thread runnable at any instant, and the driver performs every
//! shared-state mutation itself) is what keeps N threads bit-
//! deterministic.

use mlcd::prelude::{InstanceType, Money, SimDuration, SimTime};
use mlcd::system::CloudInterface;
use mlcd_cloudsim::{CloudError, Cluster, ClusterId, MetricStore, SimCloud};
use std::cell::RefCell;
use std::sync::mpsc::{Receiver, Sender};

use crate::policy::JobId;

/// Tenant → driver messages. After any wake-up reply, a tenant sends
/// exactly one of these before the driver schedules anyone else — that
/// invariant is the handoff protocol.
#[derive(Debug)]
pub(crate) enum TenantMsg {
    /// Ask the scheduler for a cluster. Blocks until granted or denied.
    Launch {
        /// Requesting job.
        job: JobId,
        /// Requested type.
        itype: InstanceType,
        /// Requested node count.
        n: u32,
        /// Spot or on-demand.
        spot: bool,
    },
    /// Sleep until the shared clock reaches `until`.
    BlockUntil {
        /// Requesting job.
        job: JobId,
        /// Wake-up instant.
        until: SimTime,
    },
    /// The search phase ended; subsequent launches are the final
    /// training (the scheduler treats those as [`Purpose::Train`]).
    ///
    /// [`Purpose::Train`]: crate::policy::Purpose::Train
    SearchDone {
        /// Reporting job.
        job: JobId,
    },
    /// The tenant is done; no reply expected, the thread is exiting.
    Finished {
        /// Reporting job.
        job: JobId,
    },
}

/// Driver → tenant replies.
#[derive(Debug)]
pub(crate) enum DriverReply {
    /// The launch request settled (grant → the driver already performed
    /// the shared launch; deny → [`CloudError::Denied`]).
    Launched(Result<Cluster, CloudError>),
    /// The clock reached the requested instant (or the checkpoint was
    /// acknowledged).
    Woken,
}

/// The tenant's half of the driver channel pair.
pub(crate) struct TenantLink {
    pub(crate) job: JobId,
    pub(crate) tx: Sender<TenantMsg>,
    pub(crate) rx: Receiver<DriverReply>,
}

/// A [`CloudInterface`] over the shared [`SimCloud`] that routes every
/// blocking operation through the fleet driver.
///
/// Spend isolation: [`total_spent`](CloudInterface::total_spent) sums the
/// billing ledger's records *for this tenant's clusters only*, because
/// the profiler computes per-probe cost as `total_spent()` deltas — on
/// the shared ledger a global total would attribute other tenants'
/// activity to this job's probes.
pub struct TenantCloud {
    link: TenantLink,
    shared: SimCloud,
    /// Clusters this tenant launched, with their grant instants
    /// (single-threaded tenant interior mutability — `CloudInterface`
    /// methods take `&self`).
    owned: RefCell<Vec<(ClusterId, SimTime)>>,
}

impl TenantCloud {
    pub(crate) fn new(link: TenantLink, shared: SimCloud) -> TenantCloud {
        TenantCloud { link, shared, owned: RefCell::new(Vec::new()) }
    }

    /// Announce the search → train phase transition to the driver.
    pub(crate) fn mark_search_done(&self) {
        let _ = self.link.tx.send(TenantMsg::SearchDone { job: self.link.job });
        match self.link.rx.recv() {
            Ok(DriverReply::Woken) => {}
            other => panic!("fleet protocol: checkpoint got {other:?}"),
        }
    }

    fn request_launch(
        &self,
        itype: InstanceType,
        n: u32,
        spot: bool,
    ) -> Result<Cluster, CloudError> {
        self.link
            .tx
            .send(TenantMsg::Launch { job: self.link.job, itype, n, spot })
            .expect("fleet driver hung up");
        match self.link.rx.recv().expect("fleet driver hung up") {
            DriverReply::Launched(res) => {
                if let Ok(c) = &res {
                    self.owned.borrow_mut().push((c.id, self.shared.now()));
                }
                res
            }
            DriverReply::Woken => panic!("fleet protocol: launch answered with a wake"),
        }
    }

    fn block_until(&self, until: SimTime) {
        if until.as_secs() <= self.shared.now().as_secs() {
            return;
        }
        self.link
            .tx
            .send(TenantMsg::BlockUntil { job: self.link.job, until })
            .expect("fleet driver hung up");
        match self.link.rx.recv().expect("fleet driver hung up") {
            DriverReply::Woken => {}
            other => panic!("fleet protocol: wake got {other:?}"),
        }
    }

    fn grant_instant(&self, cluster: &Cluster) -> SimTime {
        self.owned
            .borrow()
            .iter()
            .rev()
            .find(|(id, _)| *id == cluster.id)
            .map(|(_, g)| *g)
            .expect("tenant touched a cluster it does not own")
    }
}

impl CloudInterface for TenantCloud {
    fn launch(&self, itype: InstanceType, n: u32) -> Result<Cluster, CloudError> {
        self.request_launch(itype, n, false)
    }

    fn launch_spot(&self, itype: InstanceType, n: u32) -> Result<Cluster, CloudError> {
        self.request_launch(itype, n, true)
    }

    fn wait_until_running(&self, cluster: &Cluster) -> SimDuration {
        let delay = self.shared.provisioning_delay(cluster).unwrap_or(SimDuration::ZERO);
        self.block_until(self.grant_instant(cluster) + delay);
        delay
    }

    fn run_for(&self, cluster: &Cluster, d: SimDuration) -> Result<(), CloudError> {
        let end = self.shared.now() + d;
        // Mirror `SimCloud::run_for`'s revocation semantics: if the spot
        // market kills this cluster inside the window, time stops at the
        // revocation (the driver dispatches the settlement event when it
        // advances the clock there) and the caller learns via the error.
        if let Some(at) = self.shared.revocation_before(cluster, end) {
            self.block_until(at);
            return Err(CloudError::SpotRevoked { cluster: cluster.id, at });
        }
        self.block_until(end);
        Ok(())
    }

    fn terminate(&self, cluster: &Cluster) {
        // Safe to forward directly: under strict handoff the clock is
        // frozen while this tenant runs, so the span bills to the
        // instant the driver last advanced to.
        self.shared.terminate(cluster);
    }

    fn terminate_at(&self, cluster: &Cluster, end: SimTime) {
        self.shared.terminate_at(cluster, end);
    }

    fn skip_to(&self, t: SimTime) {
        self.block_until(t);
    }

    fn now(&self) -> SimTime {
        self.shared.now()
    }

    fn total_spent(&self) -> Money {
        let billing = self.shared.billing();
        self.owned.borrow().iter().map(|(id, _)| billing.cost_for_cluster(*id)).sum()
    }

    fn metrics(&self) -> &MetricStore {
        self.shared.metrics()
    }

    fn provisioning_delay(&self, cluster: &Cluster) -> Option<SimDuration> {
        self.shared.provisioning_delay(cluster)
    }

    fn revocation_before(&self, cluster: &Cluster, t: SimTime) -> Option<SimTime> {
        self.shared.revocation_before(cluster, t)
    }
}
