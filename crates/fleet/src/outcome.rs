//! Fleet-level outcomes: per-job results, aggregates and the canonical
//! bit-exact digest the golden tests pin.

use mlcd::prelude::{ExperimentOutcome, Money, Scenario, SimDuration, SimTime};
use mlcd_cloudsim::SimCloud;
use serde::Serialize;
use std::fmt::Write as _;

use crate::policy::FleetEventFold;
use crate::scenario::FleetScenario;

/// How one fleet job fared.
#[derive(Debug, Clone, Serialize)]
pub struct FleetJobOutcome {
    /// Fleet job id.
    pub id: u64,
    /// Scheduler priority it carried.
    pub priority: u8,
    /// When it arrived.
    pub arrived_at: SimTime,
    /// When its tenant finished (training complete or given up).
    pub completed_at: SimTime,
    /// Total time its launch requests sat at the scheduler.
    pub queue_wait: SimDuration,
    /// Launches granted.
    pub granted: u32,
    /// Launches denied.
    pub denied: u32,
    /// Deadline jobs only: finished later than arrival + deadline
    /// (wall-clock, queueing included — stricter than the per-job
    /// profiler-elapsed notion).
    pub missed: bool,
    /// The single-job outcome, `None` if the tenant panicked.
    pub outcome: Option<ExperimentOutcome>,
}

/// Fleet-wide aggregates.
#[derive(Debug, Clone, Serialize)]
pub struct FleetAggregate {
    /// Σ per-job total cost (probes + training) on the shared pool.
    pub total_cost: Money,
    /// Jobs in the fleet.
    pub jobs: u32,
    /// Jobs whose tenant produced an outcome.
    pub completed: u32,
    /// Jobs that carried a deadline.
    pub deadline_jobs: u32,
    /// Deadline jobs that finished late (wall-clock from arrival).
    pub missed: u32,
    /// Launch requests granted.
    pub granted: u64,
    /// Launch requests denied.
    pub denied: u64,
    /// Mean scheduler queueing delay per granted launch, hours.
    pub mean_queue_hours: f64,
    /// Σ busy instance-hours / (Σ capacity caps × makespan).
    pub utilization: f64,
    /// Last completion instant, hours from fleet start.
    pub makespan_hours: f64,
}

impl FleetAggregate {
    /// Deadline-miss rate over deadline-carrying jobs (0 when none).
    pub fn miss_rate(&self) -> f64 {
        if self.deadline_jobs == 0 {
            0.0
        } else {
            f64::from(self.missed) / f64::from(self.deadline_jobs)
        }
    }
}

/// The complete result of one fleet run.
#[derive(Debug, Clone, Serialize)]
pub struct FleetOutcome {
    /// Scheduling policy that arbitrated the pool.
    pub policy: &'static str,
    /// Scenario seed.
    pub seed: u64,
    /// Per-job outcomes, ascending by id.
    pub jobs: Vec<FleetJobOutcome>,
    /// Fleet-wide aggregates.
    pub agg: FleetAggregate,
}

fn hx(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

impl FleetOutcome {
    /// Canonical bit-exact digest: every f64 rendered as its raw bit
    /// pattern, per-job search digests inlined. Two digests compare
    /// equal iff the fleet outcomes are bit-identical — this is what the
    /// golden fleet tests and the drain-order proptest compare.
    ///
    /// Deliberately covers per-job results and aggregates, *not* raw
    /// event order: the fleet's contract is outcome determinism, with
    /// same-instant event order left to the driver.
    pub fn digest(&self) -> String {
        let mut s = String::new();
        writeln!(s, "policy={} seed={} jobs={}", self.policy, self.seed, self.jobs.len()).unwrap();
        for j in &self.jobs {
            writeln!(
                s,
                "job {:02} prio={} arr={} done={} wait={} granted={} denied={} missed={}",
                j.id,
                j.priority,
                hx(j.arrived_at.as_secs()),
                hx(j.completed_at.as_secs()),
                hx(j.queue_wait.as_secs()),
                j.granted,
                j.denied,
                j.missed,
            )
            .unwrap();
            match &j.outcome {
                Some(o) => {
                    let plan = match &o.plan {
                        Some(p) => format!("{}", p.deployment),
                        None => "none".to_string(),
                    };
                    writeln!(
                        s,
                        "  exp cost={} time={} sat={} plan={}",
                        hx(o.total_cost.dollars()),
                        hx(o.total_time.as_secs()),
                        o.satisfied,
                        plan,
                    )
                    .unwrap();
                    for line in o.search.digest().lines() {
                        writeln!(s, "  s {line}").unwrap();
                    }
                }
                None => writeln!(s, "  exp none").unwrap(),
            }
        }
        writeln!(
            s,
            "agg cost={} completed={}/{} missed={}/{} granted={} denied={} wait={} util={} span={}",
            hx(self.agg.total_cost.dollars()),
            self.agg.completed,
            self.agg.jobs,
            self.agg.missed,
            self.agg.deadline_jobs,
            self.agg.granted,
            self.agg.denied,
            hx(self.agg.mean_queue_hours),
            hx(self.agg.utilization),
            hx(self.agg.makespan_hours),
        )
        .unwrap();
        s
    }
}

/// Fold per-job outcomes plus the shared provider's ledger into a
/// [`FleetOutcome`].
pub(crate) fn aggregate(
    policy: &'static str,
    scenario: &FleetScenario,
    mut jobs: Vec<FleetJobOutcome>,
    fold: &FleetEventFold,
    shared: &SimCloud,
) -> FleetOutcome {
    jobs.sort_by_key(|j| j.id);
    let specs = scenario.jobs();
    let deadline_jobs =
        specs.iter().filter(|j| matches!(j.scenario, Scenario::CheapestWithDeadline(_))).count()
            as u32;
    let total_cost: Money =
        jobs.iter().filter_map(|j| j.outcome.as_ref()).map(|o| o.total_cost).sum();
    let completed = jobs.iter().filter(|j| j.outcome.is_some()).count() as u32;
    let missed = jobs.iter().filter(|j| j.missed).count() as u32;
    let makespan_hours = jobs.iter().map(|j| j.completed_at.as_hours()).fold(0.0f64, f64::max);
    let busy_hours: f64 =
        shared.billing().records().iter().map(|r| f64::from(r.n) * r.duration().as_hours()).sum();
    let cap_nodes: u32 = scenario.types.iter().map(|&t| scenario.cap_for(t)).sum();
    let utilization = if makespan_hours > 0.0 && cap_nodes > 0 {
        busy_hours / (f64::from(cap_nodes) * makespan_hours)
    } else {
        0.0
    };
    let mean_queue_hours =
        if fold.granted > 0 { fold.queue_wait.as_hours() / fold.granted as f64 } else { 0.0 };
    FleetOutcome {
        policy,
        seed: scenario.seed,
        jobs,
        agg: FleetAggregate {
            total_cost,
            jobs: scenario.n_jobs,
            completed,
            deadline_jobs,
            missed,
            granted: fold.granted,
            denied: fold.denied,
            mean_queue_hours,
            utilization,
            makespan_hours,
        },
    }
}
