//! The fleet driver: one thread per tenant, one runnable at a time.
//!
//! [`FleetSim::run`] expands the scenario, boots the shared
//! [`SimCloud`], and plays arrivals, wake-ups and scheduler decisions in
//! a strict handoff loop:
//!
//! 1. **Arrivals** due at the current instant spawn their tenant thread
//!    and run it until it blocks (on a launch request or a time wait).
//! 2. **Wakes**: every tenant whose wake-up instant has been reached is
//!    resumed — exhaustively, one at a time — before any scheduling
//!    happens, so the pending-request set at decision time does not
//!    depend on wake order (the drain-order invariance the proptest
//!    pins).
//! 3. **Decisions**: the policy is consulted repeatedly; each grant is
//!    executed by the driver itself (launches, and therefore the shared
//!    provisioning RNG draws, happen in policy order, never in thread
//!    order), each denial fails the tenant's launch with
//!    [`CloudError::Denied`].
//! 4. **Advance**: when nothing is runnable, the clock moves to the next
//!    arrival or wake-up, dispatching every sim event in between. If the
//!    pool is wedged (requests pending, nothing to advance to), the
//!    oldest request is force-granted and surfaces the provider's real
//!    capacity error to its tenant.
//!
//! Tenants never touch the engine directly while time moves; the only
//! shared-state calls they make with the clock frozen are terminations,
//! which are order-insensitive at a fixed instant (the fleet digest
//! covers billing sums and per-job outcomes, not event sequence
//! numbers).

use mlcd::env::paper_probe_duration;
use mlcd::prelude::{
    Deployment, ExperimentOutcome, ExperimentRunner, Money, Observation, ProfileError,
    ProfilingEnv, Scenario, SearchSpace, SimDuration, SimTime,
};
use mlcd::search::searcher_by_name;
use mlcd_cloudsim::{CloudError, ClusterId, SimCloud, SimEvent, SpotMarket};
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use crate::outcome::{aggregate, FleetJobOutcome, FleetOutcome};
use crate::policy::{
    Decision, FleetEventFold, FleetScheduler, FleetView, JobCtx, JobId, PendingReq, Purpose,
};
use crate::scenario::{FleetJob, FleetScenario};
use crate::tenant::{DriverReply, TenantCloud, TenantLink, TenantMsg};

/// Tie-break order when several tenants are due to wake at the same
/// instant. The fleet outcome is invariant under this choice (that is a
/// tested property, not an aspiration); the knob exists so the proptest
/// can actually vary it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainOrder {
    /// Lowest job id first (the default).
    Ascending,
    /// Highest job id first.
    Descending,
    /// Seeded hash order — an arbitrary but deterministic permutation.
    Interleaved(u64),
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DrainOrder {
    fn pick(self, due: &[JobId]) -> JobId {
        match self {
            DrainOrder::Ascending => *due.iter().min().expect("due set non-empty"),
            DrainOrder::Descending => *due.iter().max().expect("due set non-empty"),
            DrainOrder::Interleaved(salt) => {
                *due.iter().min_by_key(|&&j| (mix(j ^ salt), j)).expect("due set non-empty")
            }
        }
    }
}

/// Serializing wrapper: forces `profile_batch` onto the default
/// sequential path. The profiler's concurrent batch wave computes every
/// member's settlement from one pre-launch timestamp, which is unsound
/// when a mid-batch launch can block on admission for hours — under a
/// fleet, batch members are probed one by one and each one queues at the
/// scheduler individually.
struct SerialEnv<'a, E>(&'a mut E);

impl<E: ProfilingEnv> ProfilingEnv for SerialEnv<'_, E> {
    fn space(&self) -> &SearchSpace {
        self.0.space()
    }
    fn total_samples(&self) -> f64 {
        self.0.total_samples()
    }
    fn quote(&self, d: &Deployment) -> (SimDuration, Money) {
        self.0.quote(d)
    }
    fn profile(&mut self, d: &Deployment) -> Result<Observation, ProfileError> {
        self.0.profile(d)
    }
    fn elapsed(&self) -> SimDuration {
        self.0.elapsed()
    }
    fn spent(&self) -> Money {
        self.0.spent()
    }
}

/// What a tenant is doing right now, from the driver's perspective.
enum TState {
    /// Parked on a launch request, waiting for the scheduler.
    AwaitingGrant(PendingReq),
    /// Sleeping until the clock reaches the instant.
    Blocked(SimTime),
    /// Thread finished (outcome retrieved at join time).
    Done,
}

struct Slot {
    reply: Sender<DriverReply>,
    state: TState,
    phase: Purpose,
    ctx: JobCtx,
    queue_wait: SimDuration,
    completed_at: Option<SimTime>,
    missed: bool,
    clusters: Vec<ClusterId>,
    handle: Option<JoinHandle<Option<ExperimentOutcome>>>,
}

/// A configured fleet simulation, ready to [`run`](FleetSim::run).
pub struct FleetSim {
    scenario: FleetScenario,
    policy: Box<dyn FleetScheduler>,
    drain: DrainOrder,
}

impl FleetSim {
    /// A fleet over `scenario`, arbitrated by `policy`.
    pub fn new(scenario: FleetScenario, policy: Box<dyn FleetScheduler>) -> FleetSim {
        FleetSim { scenario, policy, drain: DrainOrder::Ascending }
    }

    /// Override the same-instant wake order (outcome-invariant; see
    /// [`DrainOrder`]).
    pub fn with_drain_order(mut self, drain: DrainOrder) -> FleetSim {
        self.drain = drain;
        self
    }

    /// Run the whole fleet to completion.
    pub fn run(mut self) -> FleetOutcome {
        let policy_name = self.policy.name();
        let fleet_jobs = self.scenario.jobs();
        let mut shared = SimCloud::new(self.scenario.seed);
        shared.set_market(SpotMarket {
            seed: self.scenario.seed,
            mode: self.scenario.market,
            ..SpotMarket::default()
        });
        let mut caps: BTreeMap<_, u32> = BTreeMap::new();
        for &itype in &self.scenario.types {
            let cap = self.scenario.cap_for(itype);
            shared.set_capacity(itype, cap);
            caps.insert(itype, cap);
        }

        let (msg_tx, msg_rx) = channel::<TenantMsg>();
        let mut slots: BTreeMap<JobId, Slot> = BTreeMap::new();
        let mut queue: VecDeque<FleetJob> = fleet_jobs.iter().cloned().collect();
        let mut fold = FleetEventFold::default();
        let jobs_by_id: BTreeMap<JobId, FleetJob> =
            fleet_jobs.into_iter().map(|j| (j.id, j)).collect();

        loop {
            let now = shared.now();

            // 1. Arrivals due at this instant.
            let mut progressed = false;
            while queue.front().is_some_and(|j| j.arrival.as_secs() <= now.as_secs()) {
                let job = queue.pop_front().expect("front checked");
                let id = job.id;
                let slot = spawn_tenant(
                    job,
                    msg_tx.clone(),
                    shared.clone(),
                    self.scenario.types.clone(),
                    self.scenario.max_nodes,
                    now,
                );
                slots.insert(id, slot);
                let ev = SimEvent::JobArrived { job: id };
                fold.on_event(&ev);
                shared.emit_now(ev);
                pump(&msg_rx, &mut slots, &shared, id, &mut fold, &jobs_by_id);
                progressed = true;
            }

            // 2. Wake every tenant whose instant has come, exhaustively.
            loop {
                let due: Vec<JobId> = slots
                    .iter()
                    .filter_map(|(id, s)| match s.state {
                        TState::Blocked(t) if t.as_secs() <= now.as_secs() => Some(*id),
                        _ => None,
                    })
                    .collect();
                if due.is_empty() {
                    break;
                }
                let id = self.drain.pick(&due);
                let slot = slots.get_mut(&id).expect("due slot");
                slot.state = TState::Done; // placeholder; pump sets the real state
                slot.reply.send(DriverReply::Woken).expect("tenant alive");
                pump(&msg_rx, &mut slots, &shared, id, &mut fold, &jobs_by_id);
                progressed = true;
            }

            // 3. Scheduler decisions at this instant.
            loop {
                // Requests no policy could ever admit (larger than the
                // cap or quota) are settled immediately with the
                // provider's real error, so no policy needs an
                // impossibility rule.
                let impossible = oldest_pending(&slots, |req| {
                    let cap = caps.get(&req.itype).copied().unwrap_or(0);
                    req.n > cap.min(shared.quota(req.itype))
                });
                if let Some(id) = impossible {
                    settle_grant(&mut slots, &shared, id, &mut fold);
                    pump(&msg_rx, &mut slots, &shared, id, &mut fold, &jobs_by_id);
                    progressed = true;
                    continue;
                }

                let decision = {
                    let (pending, jobs, free) = view_parts(&slots, &caps, &shared);
                    if pending.is_empty() {
                        Decision::Wait
                    } else {
                        let view = FleetView {
                            now: shared.now(),
                            caps: &caps,
                            free: &free,
                            pending: &pending,
                            jobs: &jobs,
                        };
                        self.policy.decide(&view)
                    }
                };
                match decision {
                    Decision::Grant(id) => {
                        settle_grant(&mut slots, &shared, id, &mut fold);
                        pump(&msg_rx, &mut slots, &shared, id, &mut fold, &jobs_by_id);
                        progressed = true;
                    }
                    Decision::Deny(id) => {
                        settle_deny(&mut slots, &shared, id, &mut fold);
                        pump(&msg_rx, &mut slots, &shared, id, &mut fold, &jobs_by_id);
                        progressed = true;
                    }
                    Decision::Wait => break,
                }
            }

            if progressed {
                // Grants/wakes may have produced new due wakes at this
                // same instant; settle them before advancing time.
                continue;
            }

            // 4. Advance the clock (or break the stall, or finish).
            let next_arrival = queue.front().map(|j| j.arrival);
            let next_wake = slots
                .values()
                .filter_map(|s| match s.state {
                    TState::Blocked(t) => Some(t),
                    _ => None,
                })
                .min_by(|a, b| a.as_secs().total_cmp(&b.as_secs()));
            let target = match (next_arrival, next_wake) {
                (Some(a), Some(w)) => Some(if a.as_secs() <= w.as_secs() { a } else { w }),
                (Some(a), None) => Some(a),
                (None, Some(w)) => Some(w),
                (None, None) => None,
            };
            match target {
                Some(t) => {
                    shared.run_until(t);
                }
                None => {
                    // Nothing to advance to. If requests are pending the
                    // policy has wedged the pool — force the oldest
                    // through so the provider's capacity error unwedges
                    // its tenant.
                    if let Some(id) = oldest_pending(&slots, |_| true) {
                        settle_grant(&mut slots, &shared, id, &mut fold);
                        pump(&msg_rx, &mut slots, &shared, id, &mut fold, &jobs_by_id);
                        continue;
                    }
                    break; // every tenant Done, no arrivals left
                }
            }
        }

        // Collect tenants (all have sent Finished, so joins are instant).
        let mut job_outcomes = Vec::new();
        for (id, mut slot) in slots {
            let outcome = slot.handle.take().and_then(|h| h.join().expect("tenant thread joined"));
            let job = jobs_by_id.get(&id).expect("known job");
            job_outcomes.push(FleetJobOutcome {
                id,
                priority: job.priority,
                arrived_at: job.arrival,
                completed_at: slot.completed_at.unwrap_or(job.arrival),
                queue_wait: slot.queue_wait,
                granted: slot.ctx.granted,
                denied: slot.ctx.denied,
                missed: slot.missed,
                outcome,
            });
        }
        aggregate(policy_name, &self.scenario, job_outcomes, &fold, &shared)
    }
}

/// The oldest pending request satisfying `pred`, by (request age, job).
fn oldest_pending(
    slots: &BTreeMap<JobId, Slot>,
    pred: impl Fn(&PendingReq) -> bool,
) -> Option<JobId> {
    slots
        .iter()
        .filter_map(|(id, s)| match &s.state {
            TState::AwaitingGrant(req) if pred(req) => {
                Some(((req.requested_at.as_secs().to_bits(), *id), *id))
            }
            _ => None,
        })
        .min()
        .map(|(_, id)| id)
}

/// Snapshot the scheduler's view: pending requests, per-job context and
/// free capacity.
fn view_parts(
    slots: &BTreeMap<JobId, Slot>,
    caps: &BTreeMap<mlcd::prelude::InstanceType, u32>,
    shared: &SimCloud,
) -> (
    BTreeMap<JobId, PendingReq>,
    BTreeMap<JobId, JobCtx>,
    BTreeMap<mlcd::prelude::InstanceType, u32>,
) {
    let mut pending = BTreeMap::new();
    let mut jobs = BTreeMap::new();
    let billing = shared.billing();
    for (id, slot) in slots {
        if let TState::AwaitingGrant(req) = &slot.state {
            pending.insert(*id, *req);
        }
        if !matches!(slot.state, TState::Done) {
            let mut ctx = slot.ctx;
            ctx.spent = slot.clusters.iter().map(|c| billing.cost_for_cluster(*c)).sum();
            jobs.insert(*id, ctx);
        }
    }
    let free = caps
        .iter()
        .map(|(&itype, &cap)| (itype, shared.capacity_available(itype).unwrap_or(cap)))
        .collect();
    (pending, jobs, free)
}

/// Execute a grant: perform the launch on the shared provider (this is
/// where cluster ids and provisioning RNG draws are consumed, in policy
/// order) and hand the result to the tenant. Only a successful launch
/// counts and emits as a grant; a provider failure is recorded as a
/// denial.
fn settle_grant(
    slots: &mut BTreeMap<JobId, Slot>,
    shared: &SimCloud,
    id: JobId,
    fold: &mut FleetEventFold,
) {
    let slot = slots.get_mut(&id).expect("granted slot");
    let TState::AwaitingGrant(req) = std::mem::replace(&mut slot.state, TState::Done) else {
        panic!("fleet protocol: grant for a job with no pending request");
    };
    let res = if req.spot {
        shared.launch_spot(req.itype, req.n)
    } else {
        shared.launch(req.itype, req.n)
    };
    let waited = shared.now().since(req.requested_at);
    match &res {
        Ok(c) => {
            slot.queue_wait += waited;
            slot.ctx.granted += 1;
            slot.clusters.push(c.id);
            let ev = SimEvent::ProbeGranted { job: id, waited };
            fold.on_event(&ev);
            shared.emit_now(ev);
        }
        Err(_) => {
            // Forced settlements (impossible requests, the wedge-breaker)
            // can fail at the provider. The tenant sees the real error
            // either way; for the fleet record this is a refusal, not a
            // grant — counting it as granted would inflate grant counts
            // and queue-wait averages in the digest with launches that
            // never happened.
            slot.ctx.denied += 1;
            let ev = SimEvent::ProbeDenied { job: id };
            fold.on_event(&ev);
            shared.emit_now(ev);
        }
    }
    slot.reply.send(DriverReply::Launched(res)).expect("tenant alive");
}

/// Execute a denial: the tenant's launch fails with
/// [`CloudError::Denied`] and its searcher drops the candidate.
fn settle_deny(
    slots: &mut BTreeMap<JobId, Slot>,
    shared: &SimCloud,
    id: JobId,
    fold: &mut FleetEventFold,
) {
    let slot = slots.get_mut(&id).expect("denied slot");
    let TState::AwaitingGrant(_) = std::mem::replace(&mut slot.state, TState::Done) else {
        panic!("fleet protocol: denial for a job with no pending request");
    };
    slot.ctx.denied += 1;
    let ev = SimEvent::ProbeDenied { job: id };
    fold.on_event(&ev);
    shared.emit_now(ev);
    let denied = CloudError::Denied { reason: "fleet admission: probe throttled under contention" };
    slot.reply.send(DriverReply::Launched(Err(denied))).expect("tenant alive");
}

/// Receive messages from the just-woken tenant until it parks again
/// (request, sleep or exit). Strict handoff guarantees the next message
/// can only come from that tenant.
fn pump(
    msg_rx: &Receiver<TenantMsg>,
    slots: &mut BTreeMap<JobId, Slot>,
    shared: &SimCloud,
    expected: JobId,
    fold: &mut FleetEventFold,
    jobs_by_id: &BTreeMap<JobId, FleetJob>,
) {
    loop {
        let msg = msg_rx.recv().expect("a runnable tenant exists");
        match msg {
            TenantMsg::Launch { job, itype, n, spot } => {
                debug_assert_eq!(job, expected, "handoff violated");
                let slot = slots.get_mut(&job).expect("known job");
                let quoted_hours = paper_probe_duration(n.max(1)).as_hours();
                slot.state = TState::AwaitingGrant(PendingReq {
                    itype,
                    n,
                    spot,
                    purpose: slot.phase,
                    requested_at: shared.now(),
                    quoted_cost: Money::from_dollars(
                        itype.hourly_usd() * f64::from(n) * quoted_hours,
                    ),
                });
                return;
            }
            TenantMsg::BlockUntil { job, until } => {
                debug_assert_eq!(job, expected, "handoff violated");
                slots.get_mut(&job).expect("known job").state = TState::Blocked(until);
                return;
            }
            TenantMsg::SearchDone { job } => {
                debug_assert_eq!(job, expected, "handoff violated");
                let slot = slots.get_mut(&job).expect("known job");
                slot.phase = Purpose::Train;
                slot.reply.send(DriverReply::Woken).expect("tenant alive");
                // The tenant continues straight into training; keep
                // pumping until it parks.
            }
            TenantMsg::Finished { job } => {
                debug_assert_eq!(job, expected, "handoff violated");
                let now = shared.now();
                let slot = slots.get_mut(&job).expect("known job");
                slot.state = TState::Done;
                slot.completed_at = Some(now);
                let spec = jobs_by_id.get(&job).expect("known job");
                slot.missed = match spec.scenario {
                    Scenario::CheapestWithDeadline(d) => {
                        now.since(spec.arrival).as_secs() > d.as_secs()
                    }
                    _ => false,
                };
                let ev = SimEvent::JobCompleted { job, missed: slot.missed };
                fold.on_event(&ev);
                shared.emit_now(ev);
                return;
            }
        }
    }
}

/// Boot one tenant thread running the unmodified single-job pipeline
/// over a [`TenantCloud`].
fn spawn_tenant(
    job: FleetJob,
    msg_tx: Sender<TenantMsg>,
    shared: SimCloud,
    types: Vec<mlcd::prelude::InstanceType>,
    max_nodes: u32,
    now: SimTime,
) -> Slot {
    let (reply_tx, reply_rx) = channel::<DriverReply>();
    let id = job.id;
    let finish_tx = msg_tx.clone();
    let deadline_at = match job.scenario {
        Scenario::CheapestWithDeadline(d) => Some(job.arrival + d),
        _ => None,
    };
    let ctx = JobCtx {
        priority: job.priority,
        arrived_at: now,
        deadline_at,
        spent: Money::ZERO,
        granted: 0,
        denied: 0,
    };
    let handle = std::thread::spawn(move || {
        let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let link = TenantLink { job: job.id, tx: msg_tx, rx: reply_rx };
            let cloud = TenantCloud::new(link, shared);
            let runner =
                ExperimentRunner::new(job.seed).with_types(types).with_max_nodes(max_nodes);
            let space = runner.space(&job.job);
            let mut profiler = runner.profiler_on_cloud(&job.job, space, cloud);
            let searcher =
                searcher_by_name(job.searcher, job.seed).expect("scenario names a known searcher");
            let outcome = {
                let mut env = SerialEnv(&mut profiler);
                searcher.search(&mut env, &job.scenario)
            };
            profiler.cloud().mark_search_done();
            runner.complete(profiler, outcome, searcher.name(), &job.scenario)
        }));
        let _ = finish_tx.send(TenantMsg::Finished { job: id });
        body.ok()
    });
    Slot {
        reply: reply_tx,
        state: TState::Blocked(now), // immediately due: pump() reads the first message
        phase: Purpose::Probe,
        ctx,
        queue_wait: SimDuration::ZERO,
        completed_at: None,
        missed: false,
        clusters: Vec::new(),
        handle: Some(handle),
    }
}
