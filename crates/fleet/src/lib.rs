//! Multi-job fleet planning on a shared capacity pool.
//!
//! The paper optimizes one training job in isolation against an infinite
//! catalog. Real MLaaS traffic is a *fleet*: many jobs with mixed
//! deadlines, budgets and priorities arriving over time and contending
//! for finite spot/on-demand capacity. This crate runs N per-job HeterBO
//! searches as *tenants* of one [`mlcd_cloudsim::SimCloud`]: every tenant
//! drives the unmodified [`mlcd::prelude::Profiler`] through a
//! [`tenant::TenantCloud`] shim whose lifecycle calls block on a central
//! driver, and a [`policy::FleetScheduler`] arbitrates which tenant's
//! launch is admitted against the shared capacity ledger.
//!
//! The whole simulation is deterministic: tenants run on real threads,
//! but a strict handoff protocol keeps exactly one runnable at a time,
//! all shared-state mutations happen in driver-chosen order, and the
//! fleet digest is invariant under the wake order of equally-due tenants
//! (see [`driver::DrainOrder`] and the drain-order proptest).
//!
//! DESIGN.md §11 documents the arrival grammar, the scheduler trait and
//! the fairness policies in detail.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod driver;
pub mod outcome;
pub mod policy;
pub mod scenario;
pub mod tenant;

pub use baseline::per_job_greedy_cost;
pub use driver::{DrainOrder, FleetSim};
pub use outcome::{FleetAggregate, FleetJobOutcome, FleetOutcome};
pub use policy::{
    policy_by_name, CostCooledFairShare, DeadlineAware, Decision, FifoGreedy, FleetEventFold,
    FleetScheduler, FleetView, JobCtx, PendingReq, Purpose, POLICY_NAMES,
};
pub use scenario::{ArrivalProcess, FleetJob, FleetScenario, JobTemplate};
