//! End-to-end fleet runs: every policy drains a contended fleet to
//! completion, bit-deterministically.

use mlcd_fleet::{policy_by_name, FleetScenario, FleetSim, POLICY_NAMES};

#[test]
fn every_policy_drains_a_contended_fleet() {
    let mut scenario = FleetScenario::contended(1, 2020);
    scenario.n_jobs = 3; // keep the smoke fast; goldens cover full fleets
    for name in POLICY_NAMES {
        let policy = policy_by_name(name).expect("known policy");
        let out = FleetSim::new(scenario.clone(), policy).run();
        assert_eq!(out.agg.completed, scenario.n_jobs, "policy {name} lost jobs");
        assert!(out.agg.granted > 0, "policy {name} granted nothing");
        assert!(out.agg.total_cost.dollars() > 0.0);
        assert!(out.agg.makespan_hours > 0.0);
        assert!(out.agg.utilization > 0.0 && out.agg.utilization <= 1.0);
    }
}

#[test]
fn same_seed_same_digest() {
    let mut scenario = FleetScenario::contended(2, 7);
    scenario.n_jobs = 3;
    let a = FleetSim::new(scenario.clone(), policy_by_name("fairshare").unwrap()).run();
    let b = FleetSim::new(scenario, policy_by_name("fairshare").unwrap()).run();
    assert_eq!(a.digest(), b.digest());
}
