//! Drain-order invariance: the fleet digest must not depend on the
//! order equally-due tenants are woken in.
//!
//! The driver wakes every due tenant before making any policy decision,
//! so the set of pending requests a policy sees — and therefore every
//! outcome — is the same whichever order the wake phase used. This
//! property is what makes the strict-handoff protocol *outcome*
//! deterministic rather than merely replayable: [`DrainOrder`] exists
//! only to let this test drive hostile wake orders.

use mlcd_fleet::{policy_by_name, DrainOrder, FleetScenario, FleetSim, POLICY_NAMES};
use proptest::prelude::*;

fn digest_with(policy: &str, seed: u64, drain: DrainOrder) -> String {
    let mut scenario = FleetScenario::contended(2, seed);
    scenario.n_jobs = 3; // proptest runs several cases; keep each cheap
    let sim = FleetSim::new(scenario, policy_by_name(policy).expect("known policy"));
    sim.with_drain_order(drain).run().digest()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, .. ProptestConfig::default() })]

    /// Ascending, descending and salted-interleaved wake orders all
    /// produce bit-identical fleet outcomes, for every policy.
    #[test]
    fn digest_is_invariant_under_drain_order(
        seed in 0u64..64,
        salt in 0u64..u64::MAX,
        policy_idx in 0usize..POLICY_NAMES.len(),
    ) {
        let policy = POLICY_NAMES[policy_idx];
        let asc = digest_with(policy, seed, DrainOrder::Ascending);
        let desc = digest_with(policy, seed, DrainOrder::Descending);
        let inter = digest_with(policy, seed, DrainOrder::Interleaved(salt));
        prop_assert_eq!(&asc, &desc, "ascending vs descending diverged ({policy}, seed {seed})");
        prop_assert_eq!(
            &asc, &inter,
            "ascending vs interleaved({salt}) diverged ({policy}, seed {seed})"
        );
    }
}
