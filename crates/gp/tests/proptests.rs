//! Property-based tests for GP regression invariants.

use mlcd_gp::fit::nlml_naive;
use mlcd_gp::{ArdKernel, CachedNlml, DistanceWorkspace, FitOptions, GpModel, KernelFamily};
use proptest::prelude::*;

/// Strategy: n distinct 1-D inputs in [0, 10] with targets in [-5, 5].
fn dataset() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    (3usize..12).prop_flat_map(|n| {
        let xs = proptest::collection::vec(0.0f64..10.0, n);
        let ys = proptest::collection::vec(-5.0f64..5.0, n);
        (xs, ys).prop_map(|(mut xs, ys)| {
            // Spread near-duplicates apart so we exercise the clean SPD
            // path (closer than ~5 % of a lengthscale the kernel matrix is
            // near-singular and the escalating jitter deliberately trades
            // exact interpolation for stability; the duplicate path has
            // its own unit test).
            xs.sort_by(|a, b| a.total_cmp(b));
            for i in 1..xs.len() {
                if xs[i] - xs[i - 1] < 0.05 {
                    xs[i] = xs[i - 1] + 0.05;
                }
            }
            (xs.into_iter().map(|x| vec![x]).collect(), ys)
        })
    })
}

fn kernel_for(dim: usize) -> ArdKernel {
    ArdKernel::isotropic(KernelFamily::Matern52, 1.0, 1.0, dim)
}

proptest! {
    #[test]
    fn posterior_variance_nonnegative_and_bounded((xs, ys) in dataset(), q in 0.0f64..10.0) {
        let gp = GpModel::with_hyperparams(&xs, &ys, kernel_for(1), 0.1).unwrap();
        let p = gp.predict(&[q]);
        prop_assert!(p.var >= 0.0);
        prop_assert!(p.var_with_noise >= p.var);
        // Latent variance never exceeds the prior variance (in raw units).
        let n = ys.len() as f64;
        let m = ys.iter().sum::<f64>() / n;
        let sample_var = ys.iter().map(|y| (y - m).powi(2)).sum::<f64>() / n;
        let prior_raw = 1.0 * sample_var.max(1e-12).max(1.0); // signal_var * std², std floor 1
        prop_assert!(p.var <= prior_raw * (1.0 + 1e-9) + 1e-9,
            "var {} vs prior {}", p.var, prior_raw);
    }

    #[test]
    fn adding_observation_shrinks_variance_there((xs, ys) in dataset()) {
        let gp = GpModel::with_hyperparams(&xs, &ys, kernel_for(1), 0.05).unwrap();
        let probe = vec![20.0]; // far outside the data
        let before = gp.predict(&probe).var;
        // Add a target at the sample mean: `with_observation` refits the
        // output standardiser, so an *outlier* target would rescale the
        // raw-space variance and mask the shrinkage we are testing.
        let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
        let gp2 = gp.with_observation(probe.clone(), mean_y).unwrap();
        let after = gp2.predict(&probe).var;
        prop_assert!(after <= before + 1e-9, "before {before}, after {after}");
    }

    #[test]
    fn predictions_finite((xs, ys) in dataset(), q in -50.0f64..50.0) {
        let gp = GpModel::with_hyperparams(&xs, &ys, kernel_for(1), 0.1).unwrap();
        let p = gp.predict(&[q]);
        prop_assert!(p.mean.is_finite());
        prop_assert!(p.var.is_finite());
    }

    #[test]
    fn mean_interpolates_with_small_noise((xs, ys) in dataset()) {
        let gp = GpModel::with_hyperparams(&xs, &ys, kernel_for(1), 1e-8).unwrap();
        // Worst-case interpolation error at the training points stays small
        // relative to the target scale.
        let scale = ys.iter().fold(1.0f64, |m, y| m.max(y.abs()));
        for (x, &y) in xs.iter().zip(&ys) {
            let p = gp.predict(x);
            prop_assert!((p.mean - y).abs() < 1e-2 * scale + 1e-3,
                "at {:?}: {} vs {}", x, p.mean, y);
        }
    }

    #[test]
    fn batch_prediction_matches_per_point(
        (xs, ys) in dataset(),
        qs in proptest::collection::vec(-10.0f64..20.0, 1..40),
    ) {
        // The blocked batch path must agree with the one-at-a-time path
        // everywhere — inside the data, at the training points, and far
        // outside — to 1e-9 (it is bit-identical by construction, but the
        // contract we promise callers is the tolerance).
        let gp = GpModel::with_hyperparams(&xs, &ys, kernel_for(1), 0.1).unwrap();
        let queries: Vec<Vec<f64>> = qs.into_iter().map(|q| vec![q]).collect();
        let batch = gp.predict_batch(&queries);
        prop_assert_eq!(batch.len(), queries.len());
        for (q, b) in queries.iter().zip(&batch) {
            let s = gp.predict(q);
            prop_assert!((b.mean - s.mean).abs() <= 1e-9,
                "mean at {:?}: {} vs {}", q, b.mean, s.mean);
            prop_assert!((b.var - s.var).abs() <= 1e-9,
                "var at {:?}: {} vs {}", q, b.var, s.var);
            prop_assert!((b.var_with_noise - s.var_with_noise).abs() <= 1e-9,
                "var_with_noise at {:?}: {} vs {}", q, b.var_with_noise, s.var_with_noise);
        }
    }

    #[test]
    fn cached_nlml_matches_naive(
        (n, dim) in (2usize..20, 1usize..6),
        seed_cells in proptest::collection::vec(0.0f64..1.0, 20 * 5),
        z_cells in proptest::collection::vec(-3.0f64..3.0, 20),
        (log_sf2, log_sn2) in ((0.1f64.ln())..(10.0f64.ln()), (1e-3f64.ln())..(1.0f64.ln())),
        log_ls in proptest::collection::vec((0.1f64.ln())..(10.0f64.ln()), 5),
        family_ix in 0usize..3,
    ) {
        // The workspace path accumulates r² as (a−b)²·ℓ⁻² instead of
        // ((a−b)/ℓ)² and computes the quadratic form as ‖L⁻¹z‖², so it is
        // not bitwise-equal to the reference — but it must agree to 1e-12
        // relative for every kernel family on well-conditioned problems
        // (σ_n² ≥ 1e-3 keeps the kernel matrix condition number modest;
        // ill-conditioned fits are governed by the jitter policy, which
        // both paths share).
        let family = KernelFamily::ALL[family_ix];
        let xs: Vec<Vec<f64>> =
            (0..n).map(|i| seed_cells[i * 5..i * 5 + dim].to_vec()).collect();
        let z = &z_cells[..n];
        let mut theta = vec![log_sf2];
        theta.extend_from_slice(&log_ls[..dim]);
        theta.push(log_sn2);

        let opts = FitOptions::default();
        let want = nlml_naive(&theta, &xs, z, family, &opts);
        let dist = DistanceWorkspace::new(&xs);
        let mut cache = CachedNlml::new(&dist);
        let got = cache.eval(&theta, z, family, &opts);
        prop_assert!(want.is_finite(), "reference nlml not finite: {want}");
        prop_assert!(
            (got - want).abs() <= 1e-12 * want.abs().max(1.0),
            "{family:?} n={n} dim={dim}: cached {got} vs naive {want}"
        );
        // A second evaluation through the same (now-warm) buffers is
        // identical — no state leaks between evaluations.
        prop_assert_eq!(cache.eval(&theta, z, family, &opts), got);
    }

    #[test]
    fn kernel_matrix_psd_quadratic_form(
        pts in proptest::collection::vec(0.0f64..5.0, 2..10),
        ws in proptest::collection::vec(-1.0f64..1.0, 2..10),
    ) {
        // Σᵢⱼ wᵢ wⱼ k(xᵢ, xⱼ) ≥ 0 for any weights — PSD-ness of the kernel.
        let k = kernel_for(1);
        let n = pts.len().min(ws.len());
        let mut q = 0.0;
        for i in 0..n {
            for j in 0..n {
                q += ws[i] * ws[j] * k.eval(&[pts[i]], &[pts[j]]);
            }
        }
        prop_assert!(q >= -1e-9, "quadratic form {q}");
    }
}
