#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! From-scratch Gaussian-process regression for the MLCD / HeterBO
//! reproduction.
//!
//! The paper (Section III-C, "Prior function") follows the BO convention of
//! a Gaussian-Process prior over the unknown deployment → training-speed
//! function. The reproduction band notes "thin BO crates; nontrivial GP
//! implementation needed", so this crate implements the whole stack:
//!
//! * ARD kernels (squared-exponential, Matérn 3/2, Matérn 5/2) in
//!   [`kernel`];
//! * exact GP posterior via the Cholesky identities in [`model`];
//! * marginal-likelihood hyperparameter fitting with parallel multi-start
//!   Nelder–Mead in [`fit`];
//! * input/output scaling helpers in [`scale`].
//!
//! Matrices are one-row-per-profiling-observation, so exact `O(n³)` GP math
//! is the right tool — a BO run in the paper profiles at most a few dozen
//! deployments.
//!
//! # Quick example
//!
//! ```
//! use mlcd_gp::{GpModel, FitOptions, KernelFamily};
//!
//! // Noisy observations of y = sin(x).
//! let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 * 0.5]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| x[0].sin()).collect();
//! let gp = GpModel::fit(&xs, &ys, KernelFamily::Matern52, &FitOptions::default()).unwrap();
//!
//! let p = gp.predict(&[1.6]);
//! assert!((p.mean - 1.6f64.sin()).abs() < 0.15);
//! assert!(p.stddev() >= 0.0);
//! ```

pub mod fit;
pub mod kernel;
pub mod model;
pub mod scale;
pub mod workspace;

pub use fit::{CachedNlml, FitOptions, FitScratch, FittedHyperparams};
pub use kernel::{ArdKernel, KernelFamily};
pub use model::{GpError, GpModel, Prediction, ScoreWorkspace};
pub use scale::{InputScaler, OutputScaler};
pub use workspace::DistanceWorkspace;
