//! Stationary covariance kernels with automatic-relevance-determination
//! (per-dimension) lengthscales.

/// Which stationary kernel family to use.
///
/// Matérn 5/2 is the default throughout the reproduction — it is CherryPick's
/// choice and the standard for BO over system configurations, where the
/// response is smooth but not infinitely differentiable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelFamily {
    /// Squared-exponential (RBF): very smooth sample paths.
    SquaredExp,
    /// Matérn ν = 3/2: once-differentiable sample paths.
    Matern32,
    /// Matérn ν = 5/2: twice-differentiable sample paths.
    Matern52,
}

impl KernelFamily {
    /// All families, for sweeps and tests.
    pub const ALL: [KernelFamily; 3] =
        [KernelFamily::SquaredExp, KernelFamily::Matern32, KernelFamily::Matern52];

    /// Correlation at scaled distance `r ≥ 0` (unit signal variance).
    #[inline]
    pub fn correlation(&self, r: f64) -> f64 {
        debug_assert!(r >= 0.0);
        match self {
            KernelFamily::SquaredExp => (-0.5 * r * r).exp(),
            KernelFamily::Matern32 => {
                let s = 3.0_f64.sqrt() * r;
                (1.0 + s) * (-s).exp()
            }
            KernelFamily::Matern52 => {
                let s = 5.0_f64.sqrt() * r;
                (1.0 + s + s * s / 3.0) * (-s).exp()
            }
        }
    }
}

/// A stationary kernel `k(a, b) = σ_f² · ρ(r)` where
/// `r² = Σ_d ((a_d − b_d) / ℓ_d)²` and ρ is the family correlation.
#[derive(Debug, Clone, PartialEq)]
pub struct ArdKernel {
    family: KernelFamily,
    signal_var: f64,
    lengthscales: Vec<f64>,
}

impl ArdKernel {
    /// Build a kernel.
    ///
    /// # Panics
    /// Panics when `signal_var` is not positive-finite or any lengthscale
    /// is not positive-finite.
    pub fn new(family: KernelFamily, signal_var: f64, lengthscales: Vec<f64>) -> Self {
        assert!(
            signal_var.is_finite() && signal_var > 0.0,
            "ArdKernel: signal_var must be positive, got {signal_var}"
        );
        assert!(!lengthscales.is_empty(), "ArdKernel: need at least one lengthscale");
        for (d, &l) in lengthscales.iter().enumerate() {
            assert!(l.is_finite() && l > 0.0, "ArdKernel: lengthscale[{d}] = {l} must be positive");
        }
        ArdKernel { family, signal_var, lengthscales }
    }

    /// Isotropic convenience constructor: one shared lengthscale for `dim`
    /// dimensions.
    pub fn isotropic(family: KernelFamily, signal_var: f64, lengthscale: f64, dim: usize) -> Self {
        Self::new(family, signal_var, vec![lengthscale; dim])
    }

    /// Kernel family.
    pub fn family(&self) -> KernelFamily {
        self.family
    }

    /// Signal variance σ_f².
    pub fn signal_var(&self) -> f64 {
        self.signal_var
    }

    /// Per-dimension lengthscales.
    pub fn lengthscales(&self) -> &[f64] {
        &self.lengthscales
    }

    /// Input dimensionality this kernel expects.
    pub fn dim(&self) -> usize {
        self.lengthscales.len()
    }

    /// Scaled distance between two points.
    #[inline]
    fn scaled_dist(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), self.dim(), "kernel input dim mismatch");
        debug_assert_eq!(b.len(), self.dim(), "kernel input dim mismatch");
        let mut r2 = 0.0;
        for d in 0..self.dim() {
            let z = (a[d] - b[d]) / self.lengthscales[d];
            r2 += z * z;
        }
        r2.sqrt()
    }

    /// Evaluate `k(a, b)`.
    #[inline]
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.signal_var * self.family.correlation(self.scaled_dist(a, b))
    }

    /// `k(x, x)`, which for stationary kernels is just the signal variance.
    #[inline]
    pub fn diag(&self) -> f64 {
        self.signal_var
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_at_zero_is_one() {
        for fam in KernelFamily::ALL {
            assert!((fam.correlation(0.0) - 1.0).abs() < 1e-15, "{fam:?}");
        }
    }

    #[test]
    fn correlation_decreasing_and_bounded() {
        for fam in KernelFamily::ALL {
            let mut prev = 1.0;
            let mut r = 0.0;
            while r < 20.0 {
                r += 0.05;
                let c = fam.correlation(r);
                assert!(c <= prev + 1e-15, "{fam:?} not decreasing at r={r}");
                assert!((0.0..=1.0).contains(&c), "{fam:?} out of [0,1] at r={r}");
                prev = c;
            }
        }
    }

    #[test]
    fn smoothness_ordering_at_small_r() {
        // Near r=0 the smoother kernels decay more slowly:
        // SE (1 - r²/2) vs Matérn-5/2 vs Matérn-3/2.
        let r = 0.3;
        let se = KernelFamily::SquaredExp.correlation(r);
        let m52 = KernelFamily::Matern52.correlation(r);
        let m32 = KernelFamily::Matern32.correlation(r);
        assert!(se > m52, "SE {se} vs M52 {m52}");
        assert!(m52 > m32, "M52 {m52} vs M32 {m32}");
    }

    #[test]
    fn kernel_symmetry_and_diag() {
        let k = ArdKernel::new(KernelFamily::Matern52, 2.5, vec![1.0, 0.3]);
        let a = [0.1, 0.9];
        let b = [0.7, 0.2];
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
        assert_eq!(k.eval(&a, &a), 2.5);
        assert_eq!(k.diag(), 2.5);
    }

    #[test]
    fn ard_lengthscales_weight_dimensions() {
        // Shrinking a dimension's lengthscale makes distance along it count more.
        let wide = ArdKernel::new(KernelFamily::SquaredExp, 1.0, vec![10.0, 1.0]);
        let a = [0.0, 0.0];
        let moved_d0 = [1.0, 0.0];
        let moved_d1 = [0.0, 1.0];
        // d0 has long lengthscale: moving along it barely decorrelates.
        assert!(wide.eval(&a, &moved_d0) > wide.eval(&a, &moved_d1));
    }

    #[test]
    fn isotropic_matches_manual() {
        let iso = ArdKernel::isotropic(KernelFamily::Matern32, 1.0, 0.5, 3);
        let manual = ArdKernel::new(KernelFamily::Matern32, 1.0, vec![0.5, 0.5, 0.5]);
        let a = [0.0, 0.1, 0.2];
        let b = [0.3, 0.4, 0.5];
        assert_eq!(iso.eval(&a, &b), manual.eval(&a, &b));
    }

    #[test]
    #[should_panic(expected = "signal_var")]
    fn rejects_bad_signal_var() {
        let _ = ArdKernel::new(KernelFamily::SquaredExp, 0.0, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "lengthscale[1]")]
    fn rejects_bad_lengthscale() {
        let _ = ArdKernel::new(KernelFamily::SquaredExp, 1.0, vec![1.0, -2.0]);
    }

    #[test]
    fn matern52_reference_value() {
        // Hand-computed: r = 1, s = sqrt(5); (1 + s + 5/3) e^{-s}
        let s = 5.0_f64.sqrt();
        let want = (1.0 + s + 5.0 / 3.0) * (-s).exp();
        assert!((KernelFamily::Matern52.correlation(1.0) - want).abs() < 1e-15);
    }
}
