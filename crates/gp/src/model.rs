//! Exact GP posterior via the Cholesky identities.
//!
//! Given observations `(X, y)`, kernel `k`, and noise variance σ_n², the
//! posterior at `x*` is
//!
//! ```text
//! μ(x*) = k*ᵀ (K + σ_n² I)⁻¹ y
//! σ²(x*) = k(x*, x*) − k*ᵀ (K + σ_n² I)⁻¹ k*
//! ```
//!
//! computed through one Cholesky factorisation that is reused for every
//! prediction (Rasmussen & Williams, Algorithm 2.1).

use crate::fit::{self, FitOptions};
use crate::kernel::{ArdKernel, KernelFamily};
use crate::scale::OutputScaler;
use mlcd_linalg::{Chol, CholError, Mat};

/// Errors from building or using a GP model.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// Fewer than one observation, or x/y length mismatch.
    BadTrainingData(String),
    /// The kernel matrix could not be factored even with jitter.
    Numerical(CholError),
}

impl std::fmt::Display for GpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpError::BadTrainingData(msg) => write!(f, "gp: bad training data: {msg}"),
            GpError::Numerical(e) => write!(f, "gp: numerical failure: {e}"),
        }
    }
}

impl std::error::Error for GpError {}

impl From<CholError> for GpError {
    fn from(e: CholError) -> Self {
        GpError::Numerical(e)
    }
}

/// Posterior prediction at one point, in raw (unstandardised) target units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Posterior mean of the latent function.
    pub mean: f64,
    /// Posterior variance of the latent function (≥ 0).
    pub var: f64,
    /// Posterior variance of a new *observation* (latent + noise).
    pub var_with_noise: f64,
}

impl Prediction {
    /// Posterior standard deviation of the latent function.
    pub fn stddev(&self) -> f64 {
        self.var.sqrt()
    }

    /// Two-sided confidence interval half-width at confidence `c` (e.g.
    /// 0.95), using the normal quantile.
    pub fn ci_halfwidth(&self, c: f64) -> f64 {
        assert!((0.0..1.0).contains(&c), "confidence must be in (0,1)");
        mlcd_linalg::norm_quantile(0.5 + c / 2.0) * self.stddev()
    }
}

/// Reusable buffers for repeated batch scoring.
///
/// [`GpModel::predict_batch`] allocates a fresh query matrix, solve block
/// and prediction vector per call; a `ScoreWorkspace` retains all of them
/// across calls, so a BO loop that scores its candidate pool every step
/// performs no heap allocation after the buffers have grown to the
/// search's maximum footprint (or after one [`reserve`](Self::reserve)
/// call up front). The caller writes scaled query features directly into
/// the workspace ([`begin_queries`](Self::begin_queries) +
/// [`push_query`](Self::push_query)), runs
/// [`GpModel::predict_batch_into`], and reads
/// [`predictions`](Self::predictions).
#[derive(Debug, Clone)]
pub struct ScoreWorkspace {
    /// Scaled query features, query `c` at `c*dim..(c+1)*dim`.
    q: Vec<f64>,
    dim: usize,
    m: usize,
    /// `n × m` cross-covariance block `K*`.
    kstar: Mat,
    /// `V = L⁻¹ K*` solve buffer.
    v: Mat,
    preds: Vec<Prediction>,
}

impl Default for ScoreWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl ScoreWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        ScoreWorkspace {
            q: Vec::new(),
            dim: 0,
            m: 0,
            kstar: Mat::zeros(0, 0),
            v: Mat::zeros(0, 0),
            preds: Vec::new(),
        }
    }

    /// Grow every buffer to the footprint of scoring up to `m_max`
    /// queries against up to `n_max` observations in `dim` dimensions, so
    /// all later calls within those bounds are allocation-free.
    pub fn reserve(&mut self, dim: usize, n_max: usize, m_max: usize) {
        self.q.reserve(dim.saturating_mul(m_max));
        self.preds.reserve(m_max);
        self.kstar.reshape_zeroed(n_max, m_max);
        self.kstar.reshape_zeroed(0, 0);
        self.v.reshape_zeroed(n_max, m_max);
        self.v.reshape_zeroed(0, 0);
    }

    /// Start a new batch of `dim`-dimensional queries, clearing any
    /// previous batch (buffers are retained).
    pub fn begin_queries(&mut self, dim: usize) {
        assert!(dim > 0, "begin_queries: zero-dimensional queries");
        self.dim = dim;
        self.m = 0;
        self.q.clear();
    }

    /// Append one query slot and return it for the caller to fill with
    /// (already scaled) features.
    pub fn push_query(&mut self) -> &mut [f64] {
        let start = self.q.len();
        self.q.resize(start + self.dim, 0.0);
        self.m += 1;
        &mut self.q[start..]
    }

    /// Number of queries in the current batch.
    pub fn n_queries(&self) -> usize {
        self.m
    }

    /// Predictions from the most recent [`GpModel::predict_batch_into`],
    /// in query order.
    pub fn predictions(&self) -> &[Prediction] {
        &self.preds
    }
}

/// A trained Gaussian-process regressor.
#[derive(Debug, Clone)]
pub struct GpModel {
    xs: Vec<Vec<f64>>,
    ys_raw: Vec<f64>,
    kernel: ArdKernel,
    noise_var: f64,
    out_scaler: OutputScaler,
    chol: Chol,
    /// `(K + σ_n² I)⁻¹ z` where `z` is the standardised target vector.
    alpha: Vec<f64>,
    /// Log marginal likelihood of the standardised targets at the fitted
    /// hyperparameters.
    log_marginal: f64,
}

impl GpModel {
    /// Build a GP with *fixed* hyperparameters (no fitting).
    pub fn with_hyperparams(
        xs: &[Vec<f64>],
        ys: &[f64],
        kernel: ArdKernel,
        noise_var: f64,
    ) -> Result<Self, GpError> {
        if xs.is_empty() {
            return Err(GpError::BadTrainingData("no observations".into()));
        }
        if xs.len() != ys.len() {
            return Err(GpError::BadTrainingData(format!(
                "{} inputs vs {} targets",
                xs.len(),
                ys.len()
            )));
        }
        let d = kernel.dim();
        for (i, row) in xs.iter().enumerate() {
            if row.len() != d {
                return Err(GpError::BadTrainingData(format!(
                    "row {i} has dim {} but kernel expects {d}",
                    row.len()
                )));
            }
            if row.iter().any(|v| !v.is_finite()) {
                return Err(GpError::BadTrainingData(format!("row {i} has non-finite input")));
            }
        }
        if ys.iter().any(|v| !v.is_finite()) {
            return Err(GpError::BadTrainingData("non-finite target".into()));
        }
        if !(noise_var.is_finite() && noise_var >= 0.0) {
            return Err(GpError::BadTrainingData(format!("bad noise variance {noise_var}")));
        }

        let out_scaler = OutputScaler::fit(ys);
        let z: Vec<f64> = ys.iter().map(|&y| out_scaler.transform(y)).collect();

        let n = xs.len();
        let mut k = Mat::from_fn(n, n, |i, j| kernel.eval(&xs[i], &xs[j]));
        k.symmetrize();
        k.add_diag(noise_var);
        let chol = Chol::factor_with_jitter(&k, 1e-10, 10)?;
        let alpha = chol.solve(&z);

        let log_marginal = -0.5 * mlcd_linalg::dot(&z, &alpha)
            - 0.5 * chol.log_det()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

        Ok(GpModel {
            xs: xs.to_vec(),
            ys_raw: ys.to_vec(),
            kernel,
            noise_var,
            out_scaler,
            chol,
            alpha,
            log_marginal,
        })
    }

    /// Fit hyperparameters by maximising the log marginal likelihood and
    /// return the trained model. See [`crate::fit`] for the search setup.
    pub fn fit(
        xs: &[Vec<f64>],
        ys: &[f64],
        family: KernelFamily,
        opts: &FitOptions,
    ) -> Result<Self, GpError> {
        let hp = fit::fit_hyperparams(xs, ys, family, opts)?;
        Self::with_hyperparams(xs, ys, hp.kernel, hp.noise_var)
    }

    /// Number of training observations.
    pub fn n_obs(&self) -> usize {
        self.xs.len()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.kernel.dim()
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &ArdKernel {
        &self.kernel
    }

    /// Fitted / supplied observation-noise variance (standardised units).
    pub fn noise_var(&self) -> f64 {
        self.noise_var
    }

    /// Log marginal likelihood of the (standardised) training targets.
    pub fn log_marginal(&self) -> f64 {
        self.log_marginal
    }

    /// Training inputs.
    pub fn train_inputs(&self) -> &[Vec<f64>] {
        &self.xs
    }

    /// Raw training targets.
    pub fn train_targets(&self) -> &[f64] {
        &self.ys_raw
    }

    /// Posterior prediction at `x`.
    ///
    /// # Panics
    /// Panics when `x` has the wrong dimensionality.
    pub fn predict(&self, x: &[f64]) -> Prediction {
        assert_eq!(x.len(), self.dim(), "predict: dim mismatch");
        let n = self.n_obs();
        let kstar: Vec<f64> = (0..n).map(|i| self.kernel.eval(&self.xs[i], x)).collect();

        let mean_z = mlcd_linalg::dot(&kstar, &self.alpha);
        // v = L⁻¹ k*; latent var = k** − ‖v‖².
        let v = self.chol.solve_lower(&kstar);
        let var_z = (self.kernel.diag() - mlcd_linalg::dot(&v, &v)).max(0.0);

        Prediction {
            mean: self.out_scaler.inverse(mean_z),
            var: self.out_scaler.inverse_var(var_z),
            var_with_noise: self.out_scaler.inverse_var(var_z + self.noise_var),
        }
    }

    /// Posterior prediction at many points through one blocked solve.
    ///
    /// Assembles the n×m cross-covariance `K*` (one column per query),
    /// runs a single blocked forward substitution `V = L⁻¹ K*` against the
    /// cached factor, and reads each query's mean and variance off its
    /// column. Results are bit-identical to calling
    /// [`predict`](Self::predict) per point — the per-column arithmetic is
    /// the same — but the factor is traversed once per pivot instead of
    /// once per query, which is what makes scoring a whole candidate pool
    /// per BO step cheap.
    ///
    /// # Panics
    /// Panics when any query has the wrong dimensionality.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<Prediction> {
        let m = xs.len();
        if m == 0 {
            return Vec::new();
        }
        for (c, x) in xs.iter().enumerate() {
            assert_eq!(x.len(), self.dim(), "predict_batch: dim mismatch at query {c}");
        }
        let n = self.n_obs();
        let kstar = Mat::from_fn(n, m, |i, c| self.kernel.eval(&self.xs[i], &xs[c]));
        let v = self.chol.solve_lower_multi(&kstar);
        let k_diag = self.kernel.diag();
        (0..m)
            .map(|c| {
                let mean_z = mlcd_linalg::dot(kstar.col(c), &self.alpha);
                let vc = v.col(c);
                let var_z = (k_diag - mlcd_linalg::dot(vc, vc)).max(0.0);
                Prediction {
                    mean: self.out_scaler.inverse(mean_z),
                    var: self.out_scaler.inverse_var(var_z),
                    var_with_noise: self.out_scaler.inverse_var(var_z + self.noise_var),
                }
            })
            .collect()
    }

    /// [`predict_batch`](Self::predict_batch) against caller-retained
    /// buffers: scores the queries staged in `ws` (via
    /// [`ScoreWorkspace::begin_queries`] / [`ScoreWorkspace::push_query`])
    /// and leaves the results in [`ScoreWorkspace::predictions`].
    /// Allocation-free once the workspace buffers have grown to the
    /// largest (n, m) seen. The assembly order and per-column arithmetic
    /// match `predict_batch` exactly, so predictions are bit-identical to
    /// the allocating path.
    ///
    /// # Panics
    /// Panics when the staged queries' dimensionality differs from the
    /// kernel's.
    pub fn predict_batch_into(&self, ws: &mut ScoreWorkspace) {
        let ScoreWorkspace { ref q, dim, m, ref mut kstar, ref mut v, ref mut preds } = *ws;
        preds.clear();
        if m == 0 {
            return;
        }
        assert_eq!(dim, self.dim(), "predict_batch_into: dim mismatch");
        let n = self.n_obs();
        kstar.reshape_zeroed(n, m);
        for c in 0..m {
            let x = &q[c * dim..(c + 1) * dim];
            for (kic, xi) in kstar.col_mut(c).iter_mut().zip(&self.xs) {
                *kic = self.kernel.eval(xi, x);
            }
        }
        self.chol.solve_lower_multi_into(kstar, v);
        let k_diag = self.kernel.diag();
        for c in 0..m {
            let mean_z = mlcd_linalg::dot(kstar.col(c), &self.alpha);
            let vc = v.col(c);
            let var_z = (k_diag - mlcd_linalg::dot(vc, vc)).max(0.0);
            preds.push(Prediction {
                mean: self.out_scaler.inverse(mean_z),
                var: self.out_scaler.inverse_var(var_z),
                var_with_noise: self.out_scaler.inverse_var(var_z + self.noise_var),
            });
        }
    }

    /// Retrain with one extra observation, keeping the same hyperparameters.
    ///
    /// Rebuilds from scratch (`O(n³)`), including refitting the output
    /// standardiser — use [`extend`](Self::extend) for the incremental
    /// path.
    pub fn with_observation(&self, x: Vec<f64>, y: f64) -> Result<Self, GpError> {
        let mut xs = self.xs.clone();
        let mut ys = self.ys_raw.clone();
        xs.push(x);
        ys.push(y);
        Self::with_hyperparams(&xs, &ys, self.kernel.clone(), self.noise_var)
    }

    /// Incrementally add one observation in `O(n²)` via a rank-1 Cholesky
    /// extension, keeping hyperparameters *and the output standardiser*
    /// fixed (so posterior scales stay comparable across the update —
    /// exactly what a BO loop wants between hyperparameter refits).
    ///
    /// Fails (`Numerical`) when the new point makes the kernel matrix
    /// numerically non-SPD, e.g. an exact duplicate input with zero noise;
    /// callers fall back to [`with_observation`](Self::with_observation).
    pub fn extend(&self, x: Vec<f64>, y: f64) -> Result<Self, GpError> {
        if x.len() != self.dim() {
            return Err(GpError::BadTrainingData(format!(
                "new point has dim {}, kernel expects {}",
                x.len(),
                self.dim()
            )));
        }
        if x.iter().any(|v| !v.is_finite()) || !y.is_finite() {
            return Err(GpError::BadTrainingData("non-finite new observation".into()));
        }
        let k: Vec<f64> = self.xs.iter().map(|xi| self.kernel.eval(xi, &x)).collect();
        // Match the original factorisation's diagonal treatment (noise +
        // whatever jitter rescued it).
        let kappa = self.kernel.diag() + self.noise_var + self.chol.jitter();
        let chol = self.chol.extend(&k, kappa)?;

        let mut xs = self.xs.clone();
        xs.push(x);
        let mut ys = self.ys_raw.clone();
        ys.push(y);
        let z: Vec<f64> = ys.iter().map(|&v| self.out_scaler.transform(v)).collect();
        let alpha = chol.solve(&z);
        let n = xs.len();
        let log_marginal = -0.5 * mlcd_linalg::dot(&z, &alpha)
            - 0.5 * chol.log_det()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

        Ok(GpModel {
            xs,
            ys_raw: ys,
            kernel: self.kernel.clone(),
            noise_var: self.noise_var,
            out_scaler: self.out_scaler,
            chol,
            alpha,
            log_marginal,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model(noise: f64) -> GpModel {
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 0.7).sin() * 3.0 + 10.0).collect();
        let k = ArdKernel::isotropic(KernelFamily::SquaredExp, 1.0, 1.5, 1);
        GpModel::with_hyperparams(&xs, &ys, k, noise).unwrap()
    }

    #[test]
    fn interpolates_training_points_with_tiny_noise() {
        let gp = toy_model(1e-8);
        for (x, &y) in gp.train_inputs().to_vec().iter().zip(gp.train_targets().to_vec().iter()) {
            let p = gp.predict(x);
            assert!((p.mean - y).abs() < 1e-3, "at {x:?}: {} vs {y}", p.mean);
            assert!(p.var < 1e-4, "var at training point should shrink, got {}", p.var);
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let gp = toy_model(1e-6);
        let near = gp.predict(&[3.5]).var;
        let far = gp.predict(&[30.0]).var;
        assert!(far > near * 10.0, "near {near}, far {far}");
        // Far from data, the latent variance approaches the signal variance
        // in raw units.
        let prior_var = gp.predict(&[1e6]).var;
        let expected = {
            let ys = gp.train_targets();
            let n = ys.len() as f64;
            let m = ys.iter().sum::<f64>() / n;
            ys.iter().map(|y| (y - m).powi(2)).sum::<f64>() / n
        };
        assert!((prior_var - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn mean_reverts_to_sample_mean_far_away() {
        let gp = toy_model(1e-6);
        let p = gp.predict(&[1e6]);
        let ys = gp.train_targets();
        let m = ys.iter().sum::<f64>() / ys.len() as f64;
        assert!((p.mean - m).abs() < 1e-6, "{} vs {m}", p.mean);
    }

    #[test]
    fn noise_widens_observation_variance() {
        let gp = toy_model(0.1);
        let p = gp.predict(&[2.5]);
        assert!(p.var_with_noise > p.var);
    }

    #[test]
    fn rejects_mismatched_inputs() {
        let k = ArdKernel::isotropic(KernelFamily::SquaredExp, 1.0, 1.0, 1);
        let err = GpModel::with_hyperparams(&[vec![0.0]], &[1.0, 2.0], k.clone(), 0.0);
        assert!(matches!(err, Err(GpError::BadTrainingData(_))));
        let err = GpModel::with_hyperparams(&[], &[], k.clone(), 0.0);
        assert!(matches!(err, Err(GpError::BadTrainingData(_))));
        let err = GpModel::with_hyperparams(&[vec![0.0, 1.0]], &[1.0], k, 0.0);
        assert!(matches!(err, Err(GpError::BadTrainingData(_))));
    }

    #[test]
    fn rejects_non_finite() {
        let k = ArdKernel::isotropic(KernelFamily::SquaredExp, 1.0, 1.0, 1);
        let err = GpModel::with_hyperparams(&[vec![f64::NAN]], &[1.0], k.clone(), 0.0);
        assert!(matches!(err, Err(GpError::BadTrainingData(_))));
        let err = GpModel::with_hyperparams(&[vec![0.0]], &[f64::INFINITY], k, 0.0);
        assert!(matches!(err, Err(GpError::BadTrainingData(_))));
    }

    #[test]
    fn duplicate_inputs_survive_via_jitter() {
        let xs = vec![vec![1.0], vec![1.0], vec![2.0]];
        let ys = vec![5.0, 5.2, 7.0];
        let k = ArdKernel::isotropic(KernelFamily::Matern52, 1.0, 1.0, 1);
        // Zero noise + duplicate rows → singular K; jitter must rescue it.
        let gp = GpModel::with_hyperparams(&xs, &ys, k, 0.0).unwrap();
        let p = gp.predict(&[1.0]);
        assert!((p.mean - 5.1).abs() < 0.2, "should average duplicates, got {}", p.mean);
    }

    #[test]
    fn with_observation_updates_posterior() {
        let gp = toy_model(1e-6);
        let before = gp.predict(&[20.0]);
        let gp2 = gp.with_observation(vec![20.0], 42.0).unwrap();
        let after = gp2.predict(&[20.0]);
        assert!((after.mean - 42.0).abs() < 0.1);
        assert!(after.var < before.var);
        assert_eq!(gp2.n_obs(), gp.n_obs() + 1);
    }

    #[test]
    fn extend_matches_posterior_of_fixed_scale_rebuild() {
        // extend() keeps the output scaler; compare against a from-scratch
        // model built with the same kernel matrix (same points) — their
        // posteriors at arbitrary points must coincide because both solve
        // the same linear system, just through different factorisations.
        let gp = toy_model(0.05);
        let x_new = vec![9.5];
        let y_new = 11.0;
        let inc = gp.extend(x_new.clone(), y_new).unwrap();

        // Reference: same data, same hyperparams, but standardised with
        // the *old* scaler — emulate by solving manually through a fresh
        // factor of the extended kernel matrix.
        let mut xs = gp.train_inputs().to_vec();
        xs.push(x_new.clone());
        let mut ys = gp.train_targets().to_vec();
        ys.push(y_new);
        // Posterior mean at a probe point must agree with a full rebuild
        // that uses the identical (old) standardisation — which is what
        // extend guarantees. Cross-check via the linear system directly:
        let probe = vec![4.2];
        let p_inc = inc.predict(&probe);
        // Build K + σI from scratch and solve.
        let n = xs.len();
        let kmat = Mat::from_fn(n, n, |i, j| {
            let mut v = inc.kernel().eval(&xs[i], &xs[j]);
            if i == j {
                v += inc.noise_var();
            }
            v
        });
        let chol = Chol::factor(&kmat).unwrap();
        let scaler = OutputScaler::fit(gp.train_targets()); // the OLD scaler
        let z: Vec<f64> = ys.iter().map(|&v| scaler.transform(v)).collect();
        let alpha = chol.solve(&z);
        let kstar: Vec<f64> = xs.iter().map(|xi| inc.kernel().eval(xi, &probe)).collect();
        let want_mean = scaler.inverse(mlcd_linalg::dot(&kstar, &alpha));
        assert!(
            (p_inc.mean - want_mean).abs() < 1e-8,
            "incremental {} vs direct {}",
            p_inc.mean,
            want_mean
        );
        assert_eq!(inc.n_obs(), gp.n_obs() + 1);
    }

    #[test]
    fn extend_interpolates_the_new_point() {
        let gp = toy_model(1e-8);
        let inc = gp.extend(vec![20.0], 42.0).unwrap();
        let p = inc.predict(&[20.0]);
        assert!((p.mean - 42.0).abs() < 1e-3, "got {}", p.mean);
    }

    #[test]
    fn extend_rejects_bad_input() {
        let gp = toy_model(0.01);
        assert!(matches!(gp.extend(vec![1.0, 2.0], 1.0), Err(GpError::BadTrainingData(_))));
        assert!(matches!(gp.extend(vec![f64::NAN], 1.0), Err(GpError::BadTrainingData(_))));
    }

    #[test]
    fn extend_duplicate_with_zero_noise_fails_numerically() {
        let xs = vec![vec![1.0], vec![2.0]];
        let ys = vec![5.0, 7.0];
        let k = ArdKernel::isotropic(KernelFamily::SquaredExp, 1.0, 1.0, 1);
        let gp = GpModel::with_hyperparams(&xs, &ys, k, 0.0).unwrap();
        // Exact duplicate input with zero noise → singular extension.
        assert!(matches!(gp.extend(vec![1.0], 5.0), Err(GpError::Numerical(_))));
    }

    #[test]
    fn predict_batch_matches_per_point() {
        let gp = toy_model(0.05);
        let queries: Vec<Vec<f64>> = [-2.0, 0.3, 3.7, 7.9, 25.0].iter().map(|&x| vec![x]).collect();
        let batch = gp.predict_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, p) in queries.iter().zip(&batch) {
            let single = gp.predict(q);
            assert_eq!(p.mean, single.mean, "mean at {q:?}");
            assert_eq!(p.var, single.var, "var at {q:?}");
            assert_eq!(p.var_with_noise, single.var_with_noise, "noisy var at {q:?}");
        }
        assert!(gp.predict_batch(&[]).is_empty());
    }

    #[test]
    fn predict_batch_into_matches_allocating_path_bitwise() {
        let gp = toy_model(0.05);
        let mut ws = ScoreWorkspace::new();
        // Three rounds against models of growing order through the same
        // workspace (reserve first so reuse is allocation-free).
        ws.reserve(1, gp.n_obs() + 2, 8);
        let mut model = gp;
        for round in 0..3 {
            let queries: Vec<Vec<f64>> =
                [-2.0, 0.3, 3.7, 7.9, 25.0].iter().map(|&x| vec![x + round as f64]).collect();
            ws.begin_queries(1);
            for q in &queries {
                ws.push_query().copy_from_slice(q);
            }
            model.predict_batch_into(&mut ws);
            let fresh = model.predict_batch(&queries);
            assert_eq!(ws.n_queries(), queries.len());
            assert_eq!(ws.predictions(), &fresh[..], "round {round}");
            model = model.extend(vec![30.0 + round as f64], 12.0).unwrap();
        }
        // Empty batch clears stale predictions.
        ws.begin_queries(1);
        model.predict_batch_into(&mut ws);
        assert!(ws.predictions().is_empty());
    }

    #[test]
    fn log_marginal_prefers_true_lengthscale() {
        // Data drawn from a smooth function: a wildly-wrong lengthscale
        // should score a worse marginal likelihood.
        let xs: Vec<Vec<f64>> = (0..15).map(|i| vec![i as f64 * 0.4]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0]).sin()).collect();
        let good = GpModel::with_hyperparams(
            &xs,
            &ys,
            ArdKernel::isotropic(KernelFamily::SquaredExp, 1.0, 1.5, 1),
            1e-4,
        )
        .unwrap();
        let bad = GpModel::with_hyperparams(
            &xs,
            &ys,
            ArdKernel::isotropic(KernelFamily::SquaredExp, 1.0, 0.01, 1),
            1e-4,
        )
        .unwrap();
        assert!(good.log_marginal() > bad.log_marginal());
    }

    #[test]
    fn ci_halfwidth_scales_with_confidence() {
        let gp = toy_model(0.01);
        let p = gp.predict(&[100.0]);
        let w90 = p.ci_halfwidth(0.90);
        let w99 = p.ci_halfwidth(0.99);
        assert!(w99 > w90);
        assert!((w90 / p.stddev() - 1.6448536269514722).abs() < 1e-6);
    }
}
