//! Per-fit distance workspace: the data-dependent part of a stationary
//! kernel matrix, computed once per fit instead of once per likelihood
//! evaluation.
//!
//! Every ARD kernel in [`crate::kernel`] is a function of the scaled
//! distance `r² = Σ_d (a_d − b_d)² / ℓ_d²`. During hyperparameter fitting
//! the inputs are fixed while θ varies, so the pairwise squared
//! differences `(a_d − b_d)²` can be cached per dimension; each likelihood
//! evaluation then assembles K with one multiply-add per (pair, dimension)
//! plus one correlation evaluation per pair, instead of O(n²·d) full
//! `kernel.eval` calls over both triangles.

// lint: allow(hot-index, file) — plane assembly and kernel fill index by loop variables
// bounded by the workspace's (n, dim, np) which are validated on rebuild; the blocked
// accumulation loops rely on slice indexing for bounds-check elision.

use crate::kernel::KernelFamily;
use mlcd_linalg::Mat;

/// Cached per-dimension pairwise squared differences for a fixed input
/// set.
///
/// Layout: dimension-major, strict lower triangle in column order — entry
/// `d * n(n−1)/2 + p` holds `(xs[i][d] − xs[j][d])²` where `p` runs over
/// the pairs `(i, j)` with `j = 0..n`, `i = j+1..n`. That pair order makes
/// [`fill_kernel`](Self::fill_kernel)'s writes into each column of K
/// contiguous.
#[derive(Debug, Clone, Default)]
pub struct DistanceWorkspace {
    n: usize,
    dim: usize,
    sq: Vec<f64>,
}

impl DistanceWorkspace {
    /// Precompute the pairwise squared differences for `xs` (one row per
    /// observation, all rows the same length).
    ///
    /// # Panics
    /// Panics on ragged or zero-dimensional input.
    pub fn new(xs: &[Vec<f64>]) -> Self {
        let mut ws = DistanceWorkspace { n: 0, dim: 0, sq: Vec::new() };
        ws.rebuild(xs);
        ws
    }

    /// Recompute the pairwise squared differences for a new input set in
    /// place, reusing the plane buffer whenever the new `dim · n(n−1)/2`
    /// footprint fits its capacity. A warm-started refit loop grows `xs`
    /// by one observation per BO step; rebuilding in place keeps the
    /// per-refit workspace setup allocation-free once the buffer has
    /// reached the search's maximum size. Entry values are identical to a
    /// fresh [`new`](Self::new) (same subtraction, same order).
    ///
    /// # Panics
    /// Panics on ragged or zero-dimensional input.
    pub fn rebuild(&mut self, xs: &[Vec<f64>]) {
        let n = xs.len();
        let dim = xs.first().map_or(0, |r| r.len());
        assert!(n == 0 || dim > 0, "DistanceWorkspace: zero-dimensional inputs");
        assert!(xs.iter().all(|r| r.len() == dim), "DistanceWorkspace: ragged input rows");
        let np = if n < 2 { 0 } else { n * (n - 1) / 2 };
        self.sq.clear();
        self.sq.reserve(dim * np);
        for d in 0..dim {
            for j in 0..n {
                let xj = xs[j][d];
                for row in &xs[j + 1..] {
                    let diff = row[d] - xj;
                    self.sq.push(diff * diff);
                }
            }
        }
        self.n = n;
        self.dim = dim;
    }

    /// Number of observations.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Assemble the kernel matrix `K_ij = sf2 · ρ(r_ij)` for the given
    /// hyperparameters into `k`, resizing `k` and the `r2` scratch buffer
    /// as needed (allocation-free once warm).
    ///
    /// The diagonal is exactly `sf2` (as `ArdKernel::diag` returns) and
    /// both triangles are written, so `k` is exactly symmetric — no
    /// `symmetrize` pass is needed. Distances are accumulated as
    /// `(a_d − b_d)² · ℓ_d⁻²`, which matches the naive
    /// `((a_d − b_d)/ℓ_d)²` only to rounding; callers compare results
    /// against the entry-by-entry path with a tolerance, not bitwise.
    pub fn fill_kernel(
        &self,
        family: KernelFamily,
        sf2: f64,
        lengthscales: &[f64],
        r2: &mut Vec<f64>,
        k: &mut Mat,
    ) {
        self.fill(family, sf2, lengthscales, r2, k, true);
    }

    /// Like [`fill_kernel`](Self::fill_kernel) but writes only the lower
    /// triangle and the diagonal, leaving the strict upper triangle
    /// untouched (stale). This is all a Cholesky factorisation reads, so
    /// the likelihood hot loop skips the mirror pass.
    pub fn fill_kernel_lower(
        &self,
        family: KernelFamily,
        sf2: f64,
        lengthscales: &[f64],
        r2: &mut Vec<f64>,
        k: &mut Mat,
    ) {
        self.fill(family, sf2, lengthscales, r2, k, false);
    }

    fn fill(
        &self,
        family: KernelFamily,
        sf2: f64,
        lengthscales: &[f64],
        r2: &mut Vec<f64>,
        k: &mut Mat,
        mirror: bool,
    ) {
        let (n, dim) = (self.n, self.dim);
        assert_eq!(lengthscales.len(), dim, "fill_kernel: lengthscale count mismatch");
        let np = self.sq.len() / dim.max(1);
        r2.clear();
        r2.resize(np, 0.0);
        // Accumulate the scaled distances four dimension planes per pass
        // over `r2`. Each element still receives its contributions one
        // `d` at a time in ascending order, so the result is bit-identical
        // to the one-plane-at-a-time loop — the blocking only cuts memory
        // passes over the accumulator.
        let mut d = 0;
        while d + 4 <= dim {
            let inv = |dd: usize| {
                let l = lengthscales[dd];
                1.0 / (l * l)
            };
            let (i0, i1, i2, i3) = (inv(d), inv(d + 1), inv(d + 2), inv(d + 3));
            let block = &self.sq[d * np..(d + 4) * np];
            let (s0, rest) = block.split_at(np);
            let (s1, rest) = rest.split_at(np);
            let (s2, s3) = rest.split_at(np);
            let lanes = s0.iter().zip(s1).zip(s2).zip(s3);
            for (acc, (((&a0, &a1), &a2), &a3)) in r2.iter_mut().zip(lanes) {
                let mut v = *acc;
                v += a0 * i0;
                v += a1 * i1;
                v += a2 * i2;
                v += a3 * i3;
                *acc = v;
            }
            d += 4;
        }
        for (d, &l) in lengthscales.iter().enumerate().skip(d) {
            let inv_l2 = 1.0 / (l * l);
            let sq_d = &self.sq[d * np..(d + 1) * np];
            for (acc, &s) in r2.iter_mut().zip(sq_d) {
                *acc += s * inv_l2;
            }
        }
        if k.rows() != n || k.cols() != n {
            *k = Mat::zeros(n, n);
        }
        // Correlations into the strict lower triangle (contiguous per
        // column thanks to the pair order), diagonal = sf2.
        let mut p = 0;
        for j in 0..n {
            let col = k.col_mut(j);
            col[j] = sf2;
            let below = &mut col[j + 1..];
            let r2_col = &r2[p..p + below.len()];
            match family {
                // For the squared exponential ρ(r) = exp(−½·r²), so the
                // cached r² feeds exp directly — no square root needed.
                KernelFamily::SquaredExp => {
                    for (x, &r2v) in below.iter_mut().zip(r2_col) {
                        *x = sf2 * (-0.5 * r2v).exp();
                    }
                }
                _ => {
                    for (x, &r2v) in below.iter_mut().zip(r2_col) {
                        *x = sf2 * family.correlation(r2v.sqrt());
                    }
                }
            }
            p += below.len();
        }
        if mirror {
            // Mirror to the upper triangle: K stays exactly symmetric.
            for j in 1..n {
                for i in 0..j {
                    k[(i, j)] = k[(j, i)];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ArdKernel;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_inputs(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect()).collect()
    }

    #[test]
    fn fill_matches_entry_by_entry_kernel() {
        let xs = random_inputs(9, 4, 1);
        let ws = DistanceWorkspace::new(&xs);
        let mut r2 = Vec::new();
        let mut k = Mat::zeros(0, 0);
        for family in KernelFamily::ALL {
            let kernel = ArdKernel::new(family, 1.7, vec![0.4, 1.1, 0.09, 3.0]);
            ws.fill_kernel(family, 1.7, kernel.lengthscales(), &mut r2, &mut k);
            for i in 0..9 {
                for j in 0..9 {
                    let want = kernel.eval(&xs[i], &xs[j]);
                    let got = k[(i, j)];
                    assert!(
                        (got - want).abs() <= 1e-14 * want.abs().max(1.0),
                        "{family:?} K[{i}][{j}]: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn filled_kernel_is_exactly_symmetric_with_exact_diagonal() {
        let xs = random_inputs(7, 3, 2);
        let ws = DistanceWorkspace::new(&xs);
        let mut r2 = Vec::new();
        let mut k = Mat::zeros(0, 0);
        ws.fill_kernel(KernelFamily::Matern52, 2.5, &[0.3, 0.7, 2.0], &mut r2, &mut k);
        assert_eq!(k.asymmetry(), 0.0);
        for i in 0..7 {
            assert_eq!(k[(i, i)], 2.5);
        }
    }

    #[test]
    fn buffers_are_reused_across_calls() {
        let xs = random_inputs(6, 2, 3);
        let ws = DistanceWorkspace::new(&xs);
        let mut r2 = Vec::new();
        let mut k = Mat::zeros(0, 0);
        ws.fill_kernel(KernelFamily::SquaredExp, 1.0, &[0.5, 0.5], &mut r2, &mut k);
        let first = k.as_slice().to_vec();
        // Different hyperparameters, same buffers; then back again.
        ws.fill_kernel(KernelFamily::SquaredExp, 3.0, &[0.1, 2.0], &mut r2, &mut k);
        assert_ne!(k.as_slice(), &first[..]);
        ws.fill_kernel(KernelFamily::SquaredExp, 1.0, &[0.5, 0.5], &mut r2, &mut k);
        assert_eq!(k.as_slice(), &first[..]);
    }

    #[test]
    fn blocked_accumulation_matches_scalar_reference_bitwise() {
        // Dimensions straddling the 4-plane block boundary. The reference
        // accumulates one plane at a time in ascending `d` — exactly the
        // historical loop — and feeds the same correlation formula, so
        // the assembled K must agree bit for bit.
        for dim in [1usize, 4, 5, 8, 11] {
            let xs = random_inputs(8, dim, dim as u64);
            let ws = DistanceWorkspace::new(&xs);
            let ls: Vec<f64> = (0..dim).map(|d| 0.07 + 0.31 * d as f64).collect();
            let sf2 = 1.9;
            let mut r2 = Vec::new();
            let mut k = Mat::zeros(0, 0);
            ws.fill_kernel(KernelFamily::Matern52, sf2, &ls, &mut r2, &mut k);

            let n = xs.len();
            let np = n * (n - 1) / 2;
            let mut r2_ref = vec![0.0; np];
            for (d, &l) in ls.iter().enumerate() {
                let inv_l2 = 1.0 / (l * l);
                let mut p = 0;
                for j in 0..n {
                    for i in j + 1..n {
                        let diff = xs[i][d] - xs[j][d];
                        r2_ref[p] += (diff * diff) * inv_l2;
                        p += 1;
                    }
                }
            }
            let mut p = 0;
            for j in 0..n {
                assert_eq!(k[(j, j)].to_bits(), sf2.to_bits());
                for i in j + 1..n {
                    let want = sf2 * KernelFamily::Matern52.correlation(r2_ref[p].sqrt());
                    assert_eq!(k[(i, j)].to_bits(), want.to_bits(), "dim {dim} K[{i}][{j}]");
                    p += 1;
                }
            }
        }
    }

    #[test]
    fn rebuild_matches_fresh_construction() {
        let mut ws = DistanceWorkspace::new(&random_inputs(4, 3, 7));
        for n in [6usize, 2, 9, 0, 5] {
            let xs = random_inputs(n, 3, n as u64 + 40);
            ws.rebuild(&xs);
            let fresh = DistanceWorkspace::new(&xs);
            assert_eq!(ws.n(), fresh.n());
            assert_eq!(ws.dim(), fresh.dim());
            assert_eq!(ws.sq, fresh.sq);
        }
    }

    #[test]
    fn single_observation_and_empty() {
        let ws = DistanceWorkspace::new(&[vec![0.5, 0.5]]);
        let mut r2 = Vec::new();
        let mut k = Mat::zeros(0, 0);
        ws.fill_kernel(KernelFamily::Matern32, 4.0, &[1.0, 1.0], &mut r2, &mut k);
        assert_eq!((k.rows(), k.cols()), (1, 1));
        assert_eq!(k[(0, 0)], 4.0);

        let empty = DistanceWorkspace::new(&[]);
        assert_eq!(empty.n(), 0);
    }
}
