//! Per-fit distance workspace: the data-dependent part of a stationary
//! kernel matrix, computed once per fit instead of once per likelihood
//! evaluation.
//!
//! Every ARD kernel in [`crate::kernel`] is a function of the scaled
//! distance `r² = Σ_d (a_d − b_d)² / ℓ_d²`. During hyperparameter fitting
//! the inputs are fixed while θ varies, so the pairwise squared
//! differences `(a_d − b_d)²` can be cached per dimension; each likelihood
//! evaluation then assembles K with one multiply-add per (pair, dimension)
//! plus one correlation evaluation per pair, instead of O(n²·d) full
//! `kernel.eval` calls over both triangles.

use crate::kernel::KernelFamily;
use mlcd_linalg::Mat;

/// Cached per-dimension pairwise squared differences for a fixed input
/// set.
///
/// Layout: dimension-major, strict lower triangle in column order — entry
/// `d * n(n−1)/2 + p` holds `(xs[i][d] − xs[j][d])²` where `p` runs over
/// the pairs `(i, j)` with `j = 0..n`, `i = j+1..n`. That pair order makes
/// [`fill_kernel`](Self::fill_kernel)'s writes into each column of K
/// contiguous.
#[derive(Debug, Clone)]
pub struct DistanceWorkspace {
    n: usize,
    dim: usize,
    sq: Vec<f64>,
}

impl DistanceWorkspace {
    /// Precompute the pairwise squared differences for `xs` (one row per
    /// observation, all rows the same length).
    ///
    /// # Panics
    /// Panics on ragged or zero-dimensional input.
    pub fn new(xs: &[Vec<f64>]) -> Self {
        let n = xs.len();
        let dim = xs.first().map_or(0, |r| r.len());
        assert!(n == 0 || dim > 0, "DistanceWorkspace: zero-dimensional inputs");
        assert!(xs.iter().all(|r| r.len() == dim), "DistanceWorkspace: ragged input rows");
        let np = if n < 2 { 0 } else { n * (n - 1) / 2 };
        let mut sq = Vec::with_capacity(dim * np);
        for d in 0..dim {
            for j in 0..n {
                let xj = xs[j][d];
                for row in &xs[j + 1..] {
                    let diff = row[d] - xj;
                    sq.push(diff * diff);
                }
            }
        }
        DistanceWorkspace { n, dim, sq }
    }

    /// Number of observations.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Assemble the kernel matrix `K_ij = sf2 · ρ(r_ij)` for the given
    /// hyperparameters into `k`, resizing `k` and the `r2` scratch buffer
    /// as needed (allocation-free once warm).
    ///
    /// The diagonal is exactly `sf2` (as `ArdKernel::diag` returns) and
    /// both triangles are written, so `k` is exactly symmetric — no
    /// `symmetrize` pass is needed. Distances are accumulated as
    /// `(a_d − b_d)² · ℓ_d⁻²`, which matches the naive
    /// `((a_d − b_d)/ℓ_d)²` only to rounding; callers compare results
    /// against the entry-by-entry path with a tolerance, not bitwise.
    pub fn fill_kernel(
        &self,
        family: KernelFamily,
        sf2: f64,
        lengthscales: &[f64],
        r2: &mut Vec<f64>,
        k: &mut Mat,
    ) {
        self.fill(family, sf2, lengthscales, r2, k, true);
    }

    /// Like [`fill_kernel`](Self::fill_kernel) but writes only the lower
    /// triangle and the diagonal, leaving the strict upper triangle
    /// untouched (stale). This is all a Cholesky factorisation reads, so
    /// the likelihood hot loop skips the mirror pass.
    pub fn fill_kernel_lower(
        &self,
        family: KernelFamily,
        sf2: f64,
        lengthscales: &[f64],
        r2: &mut Vec<f64>,
        k: &mut Mat,
    ) {
        self.fill(family, sf2, lengthscales, r2, k, false);
    }

    fn fill(
        &self,
        family: KernelFamily,
        sf2: f64,
        lengthscales: &[f64],
        r2: &mut Vec<f64>,
        k: &mut Mat,
        mirror: bool,
    ) {
        let (n, dim) = (self.n, self.dim);
        assert_eq!(lengthscales.len(), dim, "fill_kernel: lengthscale count mismatch");
        let np = self.sq.len() / dim.max(1);
        r2.clear();
        r2.resize(np, 0.0);
        for (d, &l) in lengthscales.iter().enumerate() {
            let inv_l2 = 1.0 / (l * l);
            let sq_d = &self.sq[d * np..(d + 1) * np];
            for (acc, &s) in r2.iter_mut().zip(sq_d) {
                *acc += s * inv_l2;
            }
        }
        if k.rows() != n || k.cols() != n {
            *k = Mat::zeros(n, n);
        }
        // Correlations into the strict lower triangle (contiguous per
        // column thanks to the pair order), diagonal = sf2.
        let mut p = 0;
        for j in 0..n {
            let col = k.col_mut(j);
            col[j] = sf2;
            let below = &mut col[j + 1..];
            let r2_col = &r2[p..p + below.len()];
            match family {
                // For the squared exponential ρ(r) = exp(−½·r²), so the
                // cached r² feeds exp directly — no square root needed.
                KernelFamily::SquaredExp => {
                    for (x, &r2v) in below.iter_mut().zip(r2_col) {
                        *x = sf2 * (-0.5 * r2v).exp();
                    }
                }
                _ => {
                    for (x, &r2v) in below.iter_mut().zip(r2_col) {
                        *x = sf2 * family.correlation(r2v.sqrt());
                    }
                }
            }
            p += below.len();
        }
        if mirror {
            // Mirror to the upper triangle: K stays exactly symmetric.
            for j in 1..n {
                for i in 0..j {
                    k[(i, j)] = k[(j, i)];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ArdKernel;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_inputs(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect()).collect()
    }

    #[test]
    fn fill_matches_entry_by_entry_kernel() {
        let xs = random_inputs(9, 4, 1);
        let ws = DistanceWorkspace::new(&xs);
        let mut r2 = Vec::new();
        let mut k = Mat::zeros(0, 0);
        for family in KernelFamily::ALL {
            let kernel = ArdKernel::new(family, 1.7, vec![0.4, 1.1, 0.09, 3.0]);
            ws.fill_kernel(family, 1.7, kernel.lengthscales(), &mut r2, &mut k);
            for i in 0..9 {
                for j in 0..9 {
                    let want = kernel.eval(&xs[i], &xs[j]);
                    let got = k[(i, j)];
                    assert!(
                        (got - want).abs() <= 1e-14 * want.abs().max(1.0),
                        "{family:?} K[{i}][{j}]: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn filled_kernel_is_exactly_symmetric_with_exact_diagonal() {
        let xs = random_inputs(7, 3, 2);
        let ws = DistanceWorkspace::new(&xs);
        let mut r2 = Vec::new();
        let mut k = Mat::zeros(0, 0);
        ws.fill_kernel(KernelFamily::Matern52, 2.5, &[0.3, 0.7, 2.0], &mut r2, &mut k);
        assert_eq!(k.asymmetry(), 0.0);
        for i in 0..7 {
            assert_eq!(k[(i, i)], 2.5);
        }
    }

    #[test]
    fn buffers_are_reused_across_calls() {
        let xs = random_inputs(6, 2, 3);
        let ws = DistanceWorkspace::new(&xs);
        let mut r2 = Vec::new();
        let mut k = Mat::zeros(0, 0);
        ws.fill_kernel(KernelFamily::SquaredExp, 1.0, &[0.5, 0.5], &mut r2, &mut k);
        let first = k.as_slice().to_vec();
        // Different hyperparameters, same buffers; then back again.
        ws.fill_kernel(KernelFamily::SquaredExp, 3.0, &[0.1, 2.0], &mut r2, &mut k);
        assert_ne!(k.as_slice(), &first[..]);
        ws.fill_kernel(KernelFamily::SquaredExp, 1.0, &[0.5, 0.5], &mut r2, &mut k);
        assert_eq!(k.as_slice(), &first[..]);
    }

    #[test]
    fn single_observation_and_empty() {
        let ws = DistanceWorkspace::new(&[vec![0.5, 0.5]]);
        let mut r2 = Vec::new();
        let mut k = Mat::zeros(0, 0);
        ws.fill_kernel(KernelFamily::Matern32, 4.0, &[1.0, 1.0], &mut r2, &mut k);
        assert_eq!((k.rows(), k.cols()), (1, 1));
        assert_eq!(k[(0, 0)], 4.0);

        let empty = DistanceWorkspace::new(&[]);
        assert_eq!(empty.n(), 0);
    }
}
