//! Marginal-likelihood hyperparameter fitting.
//!
//! Hyperparameters θ = (log σ_f², log ℓ₁…log ℓ_d, log σ_n²) are fitted by
//! minimising the negative log marginal likelihood of the *standardised*
//! targets with multi-start Nelder–Mead (starts drawn by Latin hypercube,
//! local searches run in parallel by `mlcd-linalg`).
//!
//! Working in log-space keeps every parameter positive without constrained
//! optimisation; the search ranges below assume inputs roughly in the unit
//! cube and standardised targets, which [`crate::scale`] provides.

// lint: allow(hot-index, file) — the θ vector layout [log σ_f², log ℓ₁…ℓ_d, log σ_n²] has
// fixed length d+2, established by the SampleRange construction and debug-asserted at every
// evaluator entry; indexing follows that contract on the likelihood hot path.

use crate::kernel::{ArdKernel, KernelFamily};
use crate::model::GpError;
use crate::scale::OutputScaler;
use crate::workspace::DistanceWorkspace;
use mlcd_linalg::{
    multi_start_nelder_mead_with, Chol, CholWorkspace, Mat, NelderMeadOptions, SampleRange,
};

/// Jitter escalation used by every likelihood evaluation.
const NLML_JITTER: (f64, usize) = (1e-12, 6);

/// Controls for the hyperparameter search.
#[derive(Debug, Clone)]
pub struct FitOptions {
    /// Number of Latin-hypercube restarts.
    pub n_starts: usize,
    /// RNG seed for the restart sample (fits are deterministic given this).
    pub seed: u64,
    /// Per-restart Nelder–Mead budget.
    pub nm: NelderMeadOptions,
    /// Search range for log ℓ (applies to every dimension).
    pub log_lengthscale: (f64, f64),
    /// Search range for log σ_f².
    pub log_signal_var: (f64, f64),
    /// Search range for log σ_n². The lower bound acts as a noise floor,
    /// which keeps kernel matrices well-conditioned.
    pub log_noise_var: (f64, f64),
    /// Evaluate the likelihood through the cached distance workspace
    /// ([`CachedNlml`], the default) instead of the entry-by-entry
    /// reference path ([`nlml_naive`]). The two agree to rounding
    /// (≲1e-12 relative), not bitwise.
    pub use_cached_nlml: bool,
    /// Optional warm start appended to the restarts: the log-space θ of a
    /// previous fit (length d+2). Invalid values (wrong length or
    /// non-finite) are ignored. The Latin-hypercube draw is unaffected,
    /// so adding a warm start can only improve the optimum.
    pub warm_start: Option<Vec<f64>>,
    /// Observation count at which a warm-started fit stops paying for the
    /// full `n_starts` restarts: with `n ≥ warm_burnin` observations and a
    /// valid warm start, only `warm_restarts` LHC starts run (plus the
    /// warm start itself).
    pub warm_burnin: usize,
    /// LHC restarts used once warm-started past the burn-in.
    pub warm_restarts: usize,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            n_starts: 8,
            seed: 0x5eed,
            nm: NelderMeadOptions { max_evals: 250, ..Default::default() },
            // Inputs in [0,1]: lengthscales from 1/50 of the cube to 20x it.
            log_lengthscale: ((0.02f64).ln(), (20.0f64).ln()),
            log_signal_var: ((0.05f64).ln(), (20.0f64).ln()),
            log_noise_var: ((1e-6f64).ln(), (1.0f64).ln()),
            use_cached_nlml: true,
            warm_start: None,
            warm_burnin: 8,
            warm_restarts: 3,
        }
    }
}

/// The outcome of hyperparameter fitting.
#[derive(Debug, Clone)]
pub struct FittedHyperparams {
    /// The kernel at the optimum.
    pub kernel: ArdKernel,
    /// Observation-noise variance (standardised target units).
    pub noise_var: f64,
    /// Negative log marginal likelihood at the optimum.
    pub nlml: f64,
    /// The optimum in log space, `[log σ_f², log ℓ₁…log ℓ_d, log σ_n²]` —
    /// feed it to [`FitOptions::warm_start`] to warm-start the next refit.
    pub theta: Vec<f64>,
}

/// Soft-wall check shared by both likelihood paths: `true` when θ is
/// within `margin` of the search box on every coordinate.
fn theta_in_bounds(theta: &[f64], d: usize, opts: &FitOptions) -> bool {
    // Allow the optimiser to wander a little past the start box (soft
    // walls), but keep the box meaningful — callers rely on the bounds to
    // regularise fits on very few points.
    let margin = 0.7;
    let (lo, hi) = opts.log_signal_var;
    if theta[0] < lo - margin || theta[0] > hi + margin {
        return false;
    }
    let (lo, hi) = opts.log_lengthscale;
    for &t in &theta[1..=d] {
        if t < lo - margin || t > hi + margin {
            return false;
        }
    }
    let (lo, hi) = opts.log_noise_var;
    let t_noise = theta[d + 1];
    t_noise >= lo - margin && t_noise <= hi + margin
}

/// Negative log marginal likelihood of standardised targets `z` for the
/// hyperparameter vector `theta = [log sf2, log l_1.., log sn2]` —
/// reference implementation that rebuilds the kernel matrix entry by
/// entry and allocates per call.
///
/// Returns `+inf` for hyperparameters outside sane bounds or that make the
/// kernel matrix unfactorable — the optimiser treats those as walls.
/// [`CachedNlml`] is the fast path; this function is kept public as the
/// ground truth the property tests and benchmarks compare it against.
pub fn nlml_naive(
    theta: &[f64],
    xs: &[Vec<f64>],
    z: &[f64],
    family: KernelFamily,
    opts: &FitOptions,
) -> f64 {
    let d = xs[0].len();
    debug_assert_eq!(theta.len(), d + 2);
    if !theta_in_bounds(theta, d, opts) {
        return f64::INFINITY;
    }

    let sf2 = theta[0].exp();
    let ls: Vec<f64> = theta[1..=d].iter().map(|t| t.exp()).collect();
    let sn2 = theta[d + 1].exp();
    let kernel = ArdKernel::new(family, sf2, ls);

    let n = xs.len();
    let mut k = Mat::from_fn(n, n, |i, j| kernel.eval(&xs[i], &xs[j]));
    k.symmetrize();
    k.add_diag(sn2);
    let chol = match Chol::factor_with_jitter(&k, NLML_JITTER.0, NLML_JITTER.1) {
        Ok(c) => c,
        Err(_) => return f64::INFINITY,
    };
    let alpha = chol.solve(z);
    0.5 * mlcd_linalg::dot(z, &alpha)
        + 0.5 * chol.log_det()
        + 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln()
}

/// Workspace-backed likelihood evaluator: the fit fast path.
///
/// Borrows a [`DistanceWorkspace`] (pairwise squared differences, computed
/// once per fit) and owns every scratch buffer an evaluation needs — the
/// kernel matrix, the r² accumulator, the Cholesky workspace and the solve
/// vector — so after the first call an evaluation performs no heap
/// allocation at all. Semantics match [`nlml_naive`] (same soft walls,
/// same jitter policy, same formula) to rounding; see
/// [`DistanceWorkspace::fill_kernel`] for why not bitwise.
pub struct CachedNlml<'w> {
    dist: &'w DistanceWorkspace,
    ls: Vec<f64>,
    r2: Vec<f64>,
    k: Mat,
    alpha: Vec<f64>,
    chol: CholWorkspace,
}

impl<'w> CachedNlml<'w> {
    /// A fresh evaluator over `dist`; buffers grow on first use.
    pub fn new(dist: &'w DistanceWorkspace) -> Self {
        CachedNlml {
            dist,
            ls: Vec::new(),
            r2: Vec::new(),
            k: Mat::zeros(0, 0),
            alpha: Vec::new(),
            chol: CholWorkspace::new(),
        }
    }

    /// Negative log marginal likelihood at `theta` for standardised
    /// targets `z` (`z.len()` must equal the workspace's `n`).
    pub fn eval(
        &mut self,
        theta: &[f64],
        z: &[f64],
        family: KernelFamily,
        opts: &FitOptions,
    ) -> f64 {
        let d = self.dist.dim();
        let n = self.dist.n();
        debug_assert_eq!(theta.len(), d + 2);
        debug_assert_eq!(z.len(), n);
        if !theta_in_bounds(theta, d, opts) {
            return f64::INFINITY;
        }

        let sf2 = theta[0].exp();
        self.ls.clear();
        self.ls.extend(theta[1..=d].iter().map(|t| t.exp()));
        let sn2 = theta[d + 1].exp();

        // Only K's lower triangle is maintained (stale upper entries from
        // the previous evaluation are never read): the factorisation
        // consumes the lower triangle alone. The upfront finiteness scan
        // is skipped too — θ passed the walls so entries are finite for
        // any sane input, and a non-finite entry (conceivable only for
        // astronomically large xs) still fails factorisation through the
        // pivot checks, landing on the same +inf wall the naive path hits.
        self.dist.fill_kernel_lower(family, sf2, &self.ls, &mut self.r2, &mut self.k);
        self.k.add_diag(sn2);
        if self
            .chol
            .factor_with_jitter_assume_finite(&self.k, NLML_JITTER.0, NLML_JITTER.1)
            .is_err()
        {
            return f64::INFINITY;
        }
        self.alpha.clear();
        self.alpha.extend_from_slice(z);
        // `zᵀK⁻¹z` as the squared norm of the forward solve: half the
        // substitution work of the naive path's solve-then-dot, equal to
        // it up to rounding.
        let quad = self.chol.quad_form_in_place(&mut self.alpha);
        0.5 * quad + 0.5 * self.chol.log_det() + 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln()
    }
}

/// Buffers that persist *across* fits.
///
/// [`fit_hyperparams`] builds a fresh [`DistanceWorkspace`] per call; a
/// warm-started BO refit loop calls it once per step over an input set
/// that grows by one row each time, so carrying the workspace across
/// calls (and rebuilding it in place) makes the per-refit distance-plane
/// setup allocation-free once the buffer has reached the search's
/// maximum footprint. Results are bit-identical to the scratch-free path
/// — [`DistanceWorkspace::rebuild`] produces the exact planes
/// [`DistanceWorkspace::new`] would.
#[derive(Debug, Clone, Default)]
pub struct FitScratch {
    dist: DistanceWorkspace,
}

impl FitScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Fit kernel hyperparameters and the noise variance for the given data.
pub fn fit_hyperparams(
    xs: &[Vec<f64>],
    ys: &[f64],
    family: KernelFamily,
    opts: &FitOptions,
) -> Result<FittedHyperparams, GpError> {
    let mut scratch = FitScratch::new();
    fit_hyperparams_with_scratch(xs, ys, family, opts, &mut scratch)
}

/// [`fit_hyperparams`] with caller-retained buffers: the cached-NLML
/// distance planes are rebuilt in place inside `scratch` instead of
/// freshly allocated, so consecutive refits over a growing input set stop
/// allocating once the planes reach their maximum size. Bit-identical to
/// [`fit_hyperparams`] for the same inputs and options.
pub fn fit_hyperparams_with_scratch(
    xs: &[Vec<f64>],
    ys: &[f64],
    family: KernelFamily,
    opts: &FitOptions,
    scratch: &mut FitScratch,
) -> Result<FittedHyperparams, GpError> {
    if xs.is_empty() {
        return Err(GpError::BadTrainingData("no observations".into()));
    }
    if xs.len() != ys.len() {
        return Err(GpError::BadTrainingData(format!(
            "{} inputs vs {} targets",
            xs.len(),
            ys.len()
        )));
    }
    let d = xs[0].len();
    if d == 0 {
        return Err(GpError::BadTrainingData("zero-dimensional inputs".into()));
    }
    for (i, row) in xs.iter().enumerate() {
        if row.len() != d {
            return Err(GpError::BadTrainingData(format!("ragged input at row {i}")));
        }
    }

    let scaler = OutputScaler::fit(ys);
    let z: Vec<f64> = ys.iter().map(|&y| scaler.transform(y)).collect();

    let mut ranges = Vec::with_capacity(d + 2);
    ranges.push(SampleRange::new(opts.log_signal_var.0, opts.log_signal_var.1));
    for _ in 0..d {
        ranges.push(SampleRange::new(opts.log_lengthscale.0, opts.log_lengthscale.1));
    }
    ranges.push(SampleRange::new(opts.log_noise_var.0, opts.log_noise_var.1));

    // Warm-start policy: a valid previous optimum always joins the start
    // list; once enough observations are in (burn-in passed), it also
    // replaces most of the LHC restarts — the surface changes little
    // between consecutive refits, so the carried-over optimum plus a few
    // fresh starts explore enough.
    let warm: Option<&[f64]> =
        opts.warm_start.as_deref().filter(|w| w.len() == d + 2 && w.iter().all(|v| v.is_finite()));
    let n_lhc = match warm {
        Some(_) if xs.len() >= opts.warm_burnin => opts.warm_restarts,
        _ => opts.n_starts,
    };
    let extra: Vec<Vec<f64>> = warm.map(|w| w.to_vec()).into_iter().collect();

    let best = if opts.use_cached_nlml {
        scratch.dist.rebuild(xs);
        let dist = &scratch.dist;
        let z = &z;
        multi_start_nelder_mead_with(
            || {
                let mut cache = CachedNlml::new(dist);
                move |theta: &[f64]| cache.eval(theta, z, family, opts)
            },
            &ranges,
            n_lhc,
            &extra,
            opts.seed,
            &opts.nm,
        )
    } else {
        multi_start_nelder_mead_with(
            || |theta: &[f64]| nlml_naive(theta, xs, &z, family, opts),
            &ranges,
            n_lhc,
            &extra,
            opts.seed,
            &opts.nm,
        )
    };

    if !best.fx.is_finite() {
        return Err(GpError::BadTrainingData(
            "marginal likelihood not finite anywhere in the search box".into(),
        ));
    }

    let sf2 = best.x[0].exp();
    let ls: Vec<f64> = best.x[1..=d].iter().map(|t| t.exp()).collect();
    let sn2 = best.x[d + 1].exp();
    Ok(FittedHyperparams {
        kernel: ArdKernel::new(family, sf2, ls),
        noise_var: sn2,
        nlml: best.fx,
        theta: best.x,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Smooth 1-D function sampled on [0,1] with tiny noise.
    fn smooth_data(n: usize, noise_sd: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> =
            xs.iter().map(|x| (x[0] * 6.0).sin() + noise_sd * rng.gen_range(-1.0..1.0)).collect();
        (xs, ys)
    }

    #[test]
    fn fits_smooth_function_with_low_noise() {
        let (xs, ys) = smooth_data(20, 0.01, 1);
        let hp = fit_hyperparams(&xs, &ys, KernelFamily::Matern52, &FitOptions::default()).unwrap();
        // One full sine period over the domain: lengthscale well under the
        // domain width, noise close to the injected level.
        assert!(hp.kernel.lengthscales()[0] < 2.0, "{hp:?}");
        assert!(hp.noise_var < 0.05, "noise overestimated: {hp:?}");
        assert!(hp.nlml.is_finite());
    }

    #[test]
    fn noisy_data_yields_larger_noise_estimate() {
        let (xs, ys_clean) = smooth_data(24, 0.01, 2);
        let (_, ys_noisy) = smooth_data(24, 0.6, 3);
        let opts = FitOptions::default();
        let clean = fit_hyperparams(&xs, &ys_clean, KernelFamily::Matern52, &opts).unwrap();
        let noisy = fit_hyperparams(&xs, &ys_noisy, KernelFamily::Matern52, &opts).unwrap();
        assert!(
            noisy.noise_var > clean.noise_var,
            "clean {} vs noisy {}",
            clean.noise_var,
            noisy.noise_var
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (xs, ys) = smooth_data(12, 0.05, 4);
        let opts = FitOptions::default();
        let a = fit_hyperparams(&xs, &ys, KernelFamily::SquaredExp, &opts).unwrap();
        let b = fit_hyperparams(&xs, &ys, KernelFamily::SquaredExp, &opts).unwrap();
        assert_eq!(a.kernel, b.kernel);
        assert_eq!(a.noise_var, b.noise_var);
    }

    #[test]
    fn works_in_higher_dimension() {
        let mut rng = SmallRng::seed_from_u64(5);
        let xs: Vec<Vec<f64>> = (0..25).map(|_| vec![rng.gen(), rng.gen(), rng.gen()]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 + (x[1] * 3.0).cos()).collect();
        let hp = fit_hyperparams(&xs, &ys, KernelFamily::Matern52, &FitOptions::default()).unwrap();
        assert_eq!(hp.kernel.lengthscales().len(), 3);
        // x[2] is irrelevant: ARD should give it a comparatively long
        // lengthscale (weak check — just not the shortest).
        let ls = hp.kernel.lengthscales();
        assert!(ls[2] > ls[0].min(ls[1]) * 0.5, "ARD lengthscales {ls:?}");
    }

    #[test]
    fn warm_start_never_worse_and_deterministic() {
        let (xs, ys) = smooth_data(16, 0.05, 6);
        let cold_opts = FitOptions::default();
        let cold = fit_hyperparams(&xs, &ys, KernelFamily::Matern52, &cold_opts).unwrap();
        // Past the burn-in the warm fit runs only warm_restarts LHC starts
        // plus the carried-over optimum; Nelder–Mead from that optimum can
        // only go downhill, so the refit is never worse than the cold one.
        let warm_opts =
            FitOptions { warm_start: Some(cold.theta.clone()), ..FitOptions::default() };
        let warm = fit_hyperparams(&xs, &ys, KernelFamily::Matern52, &warm_opts).unwrap();
        assert!(warm.nlml <= cold.nlml + 1e-9, "warm {} vs cold {}", warm.nlml, cold.nlml);
        let warm2 = fit_hyperparams(&xs, &ys, KernelFamily::Matern52, &warm_opts).unwrap();
        assert_eq!(warm.theta, warm2.theta);
        assert_eq!(warm.nlml, warm2.nlml);
    }

    #[test]
    fn invalid_warm_start_is_ignored() {
        let (xs, ys) = smooth_data(10, 0.05, 8);
        let cold = fit_hyperparams(&xs, &ys, KernelFamily::Matern52, &FitOptions::default());
        for bad in [vec![0.0; 2], vec![f64::NAN, 0.0, 0.0], vec![]] {
            let opts = FitOptions { warm_start: Some(bad), ..FitOptions::default() };
            let got = fit_hyperparams(&xs, &ys, KernelFamily::Matern52, &opts).unwrap();
            // A rejected warm start leaves the start list and the restart
            // count untouched, so the fit is bit-identical to a cold one.
            assert_eq!(got.theta, cold.as_ref().unwrap().theta);
        }
    }

    #[test]
    fn burnin_gates_the_restart_shrink() {
        // Below the burn-in a warm start is appended but the full restart
        // budget still runs, so the result can only improve on cold; at or
        // past the burn-in only warm_restarts LHC starts run. Both paths
        // must stay deterministic and finite.
        let (xs, ys) = smooth_data(6, 0.05, 9);
        let cold =
            fit_hyperparams(&xs, &ys, KernelFamily::Matern52, &FitOptions::default()).unwrap();
        let below = FitOptions {
            warm_start: Some(cold.theta.clone()),
            warm_burnin: 100, // n=6 < 100: full budget
            ..FitOptions::default()
        };
        let past = FitOptions {
            warm_start: Some(cold.theta.clone()),
            warm_burnin: 2, // n=6 ≥ 2: shrunk budget
            ..FitOptions::default()
        };
        let a = fit_hyperparams(&xs, &ys, KernelFamily::Matern52, &below).unwrap();
        let b = fit_hyperparams(&xs, &ys, KernelFamily::Matern52, &past).unwrap();
        assert!(a.nlml <= cold.nlml + 1e-9);
        assert!(b.nlml <= cold.nlml + 1e-9);
        assert!(a.nlml.is_finite() && b.nlml.is_finite());
    }

    #[test]
    fn cached_and_naive_paths_agree_on_the_optimum() {
        let (xs, ys) = smooth_data(14, 0.05, 10);
        let cached = fit_hyperparams(&xs, &ys, KernelFamily::Matern52, &FitOptions::default());
        let naive_opts = FitOptions { use_cached_nlml: false, ..FitOptions::default() };
        let naive = fit_hyperparams(&xs, &ys, KernelFamily::Matern52, &naive_opts);
        let (c, n) = (cached.unwrap(), naive.unwrap());
        // Same starts, same optimiser; the likelihood surfaces differ by
        // rounding only, but an ulp-level difference can tip a simplex
        // comparison and let the two descents take slightly different
        // final steps — agreement is therefore bounded by the optimiser's
        // own convergence tolerance (x_tol = 1e-7), not by rounding.
        for (a, b) in c.theta.iter().zip(&n.theta) {
            assert!((a - b).abs() <= 1e-5, "theta {:?} vs {:?}", c.theta, n.theta);
        }
        // At the shared optimum the surface is flat, so the nlml values
        // agree far more tightly than the coordinates do.
        assert!((c.nlml - n.nlml).abs() <= 1e-9 * c.nlml.abs().max(1.0));
    }

    #[test]
    fn scratch_reuse_matches_fresh_fits_bitwise() {
        // Three consecutive "refits" over a growing input set through one
        // scratch — exactly the warm-started BO cadence — must agree bit
        // for bit with scratch-free fits.
        let mut scratch = FitScratch::new();
        let mut warm: Option<Vec<f64>> = None;
        for n in [6usize, 7, 8] {
            let (xs, ys) = smooth_data(n, 0.05, 11);
            let opts = FitOptions { warm_start: warm.clone(), ..FitOptions::default() };
            let with =
                fit_hyperparams_with_scratch(&xs, &ys, KernelFamily::Matern52, &opts, &mut scratch)
                    .unwrap();
            let fresh = fit_hyperparams(&xs, &ys, KernelFamily::Matern52, &opts).unwrap();
            assert_eq!(with.theta, fresh.theta, "n = {n}");
            assert_eq!(with.nlml.to_bits(), fresh.nlml.to_bits());
            assert_eq!(with.kernel, fresh.kernel);
            warm = Some(with.theta);
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let opts = FitOptions::default();
        assert!(fit_hyperparams(&[], &[], KernelFamily::Matern52, &opts).is_err());
        assert!(fit_hyperparams(&[vec![]], &[1.0], KernelFamily::Matern52, &opts).is_err());
        assert!(fit_hyperparams(
            &[vec![0.0], vec![1.0, 2.0]],
            &[1.0, 2.0],
            KernelFamily::Matern52,
            &opts
        )
        .is_err());
    }

    #[test]
    fn single_observation_is_fittable() {
        // Degenerate but must not crash: BO starts from very few points.
        let hp =
            fit_hyperparams(&[vec![0.5]], &[3.0], KernelFamily::Matern52, &FitOptions::default())
                .unwrap();
        assert!(hp.noise_var.is_finite());
    }
}
