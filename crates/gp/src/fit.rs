//! Marginal-likelihood hyperparameter fitting.
//!
//! Hyperparameters θ = (log σ_f², log ℓ₁…log ℓ_d, log σ_n²) are fitted by
//! minimising the negative log marginal likelihood of the *standardised*
//! targets with multi-start Nelder–Mead (starts drawn by Latin hypercube,
//! local searches run in parallel by `mlcd-linalg`).
//!
//! Working in log-space keeps every parameter positive without constrained
//! optimisation; the search ranges below assume inputs roughly in the unit
//! cube and standardised targets, which [`crate::scale`] provides.

use crate::kernel::{ArdKernel, KernelFamily};
use crate::model::GpError;
use crate::scale::OutputScaler;
use mlcd_linalg::{multi_start_nelder_mead, Chol, Mat, NelderMeadOptions, SampleRange};

/// Controls for the hyperparameter search.
#[derive(Debug, Clone)]
pub struct FitOptions {
    /// Number of Latin-hypercube restarts.
    pub n_starts: usize,
    /// RNG seed for the restart sample (fits are deterministic given this).
    pub seed: u64,
    /// Per-restart Nelder–Mead budget.
    pub nm: NelderMeadOptions,
    /// Search range for log ℓ (applies to every dimension).
    pub log_lengthscale: (f64, f64),
    /// Search range for log σ_f².
    pub log_signal_var: (f64, f64),
    /// Search range for log σ_n². The lower bound acts as a noise floor,
    /// which keeps kernel matrices well-conditioned.
    pub log_noise_var: (f64, f64),
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            n_starts: 8,
            seed: 0x5eed,
            nm: NelderMeadOptions { max_evals: 250, ..Default::default() },
            // Inputs in [0,1]: lengthscales from 1/50 of the cube to 20x it.
            log_lengthscale: ((0.02f64).ln(), (20.0f64).ln()),
            log_signal_var: ((0.05f64).ln(), (20.0f64).ln()),
            log_noise_var: ((1e-6f64).ln(), (1.0f64).ln()),
        }
    }
}

/// The outcome of hyperparameter fitting.
#[derive(Debug, Clone)]
pub struct FittedHyperparams {
    /// The kernel at the optimum.
    pub kernel: ArdKernel,
    /// Observation-noise variance (standardised target units).
    pub noise_var: f64,
    /// Negative log marginal likelihood at the optimum.
    pub nlml: f64,
}

/// Negative log marginal likelihood of standardised targets `z` for the
/// hyperparameter vector `theta = [log sf2, log l_1.., log sn2]`.
///
/// Returns `+inf` for hyperparameters outside sane bounds or that make the
/// kernel matrix unfactorable — the optimiser treats those as walls.
fn nlml(theta: &[f64], xs: &[Vec<f64>], z: &[f64], family: KernelFamily, opts: &FitOptions) -> f64 {
    let d = xs[0].len();
    debug_assert_eq!(theta.len(), d + 2);
    // Allow the optimiser to wander a little past the start box (soft
    // walls), but keep the box meaningful — callers rely on the bounds to
    // regularise fits on very few points.
    let margin = 0.7;
    let (lo, hi) = opts.log_signal_var;
    if theta[0] < lo - margin || theta[0] > hi + margin {
        return f64::INFINITY;
    }
    let (lo, hi) = opts.log_lengthscale;
    for &t in &theta[1..=d] {
        if t < lo - margin || t > hi + margin {
            return f64::INFINITY;
        }
    }
    let (lo, hi) = opts.log_noise_var;
    let t_noise = theta[d + 1];
    if t_noise < lo - margin || t_noise > hi + margin {
        return f64::INFINITY;
    }

    let sf2 = theta[0].exp();
    let ls: Vec<f64> = theta[1..=d].iter().map(|t| t.exp()).collect();
    let sn2 = t_noise.exp();
    let kernel = ArdKernel::new(family, sf2, ls);

    let n = xs.len();
    let mut k = Mat::from_fn(n, n, |i, j| kernel.eval(&xs[i], &xs[j]));
    k.symmetrize();
    k.add_diag(sn2);
    let chol = match Chol::factor_with_jitter(&k, 1e-12, 6) {
        Ok(c) => c,
        Err(_) => return f64::INFINITY,
    };
    let alpha = chol.solve(z);
    0.5 * mlcd_linalg::dot(z, &alpha)
        + 0.5 * chol.log_det()
        + 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln()
}

/// Fit kernel hyperparameters and the noise variance for the given data.
pub fn fit_hyperparams(
    xs: &[Vec<f64>],
    ys: &[f64],
    family: KernelFamily,
    opts: &FitOptions,
) -> Result<FittedHyperparams, GpError> {
    if xs.is_empty() {
        return Err(GpError::BadTrainingData("no observations".into()));
    }
    if xs.len() != ys.len() {
        return Err(GpError::BadTrainingData(format!(
            "{} inputs vs {} targets",
            xs.len(),
            ys.len()
        )));
    }
    let d = xs[0].len();
    if d == 0 {
        return Err(GpError::BadTrainingData("zero-dimensional inputs".into()));
    }
    for (i, row) in xs.iter().enumerate() {
        if row.len() != d {
            return Err(GpError::BadTrainingData(format!("ragged input at row {i}")));
        }
    }

    let scaler = OutputScaler::fit(ys);
    let z: Vec<f64> = ys.iter().map(|&y| scaler.transform(y)).collect();

    let mut ranges = Vec::with_capacity(d + 2);
    ranges.push(SampleRange::new(opts.log_signal_var.0, opts.log_signal_var.1));
    for _ in 0..d {
        ranges.push(SampleRange::new(opts.log_lengthscale.0, opts.log_lengthscale.1));
    }
    ranges.push(SampleRange::new(opts.log_noise_var.0, opts.log_noise_var.1));

    let obj = |theta: &[f64]| nlml(theta, xs, &z, family, opts);
    let best = multi_start_nelder_mead(obj, &ranges, opts.n_starts, opts.seed, &opts.nm);

    if !best.fx.is_finite() {
        return Err(GpError::BadTrainingData(
            "marginal likelihood not finite anywhere in the search box".into(),
        ));
    }

    let sf2 = best.x[0].exp();
    let ls: Vec<f64> = best.x[1..=d].iter().map(|t| t.exp()).collect();
    let sn2 = best.x[d + 1].exp();
    Ok(FittedHyperparams { kernel: ArdKernel::new(family, sf2, ls), noise_var: sn2, nlml: best.fx })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Smooth 1-D function sampled on [0,1] with tiny noise.
    fn smooth_data(n: usize, noise_sd: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let ys: Vec<f64> =
            xs.iter().map(|x| (x[0] * 6.0).sin() + noise_sd * rng.gen_range(-1.0..1.0)).collect();
        (xs, ys)
    }

    #[test]
    fn fits_smooth_function_with_low_noise() {
        let (xs, ys) = smooth_data(20, 0.01, 1);
        let hp = fit_hyperparams(&xs, &ys, KernelFamily::Matern52, &FitOptions::default()).unwrap();
        // One full sine period over the domain: lengthscale well under the
        // domain width, noise close to the injected level.
        assert!(hp.kernel.lengthscales()[0] < 2.0, "{hp:?}");
        assert!(hp.noise_var < 0.05, "noise overestimated: {hp:?}");
        assert!(hp.nlml.is_finite());
    }

    #[test]
    fn noisy_data_yields_larger_noise_estimate() {
        let (xs, ys_clean) = smooth_data(24, 0.01, 2);
        let (_, ys_noisy) = smooth_data(24, 0.6, 3);
        let opts = FitOptions::default();
        let clean = fit_hyperparams(&xs, &ys_clean, KernelFamily::Matern52, &opts).unwrap();
        let noisy = fit_hyperparams(&xs, &ys_noisy, KernelFamily::Matern52, &opts).unwrap();
        assert!(
            noisy.noise_var > clean.noise_var,
            "clean {} vs noisy {}",
            clean.noise_var,
            noisy.noise_var
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (xs, ys) = smooth_data(12, 0.05, 4);
        let opts = FitOptions::default();
        let a = fit_hyperparams(&xs, &ys, KernelFamily::SquaredExp, &opts).unwrap();
        let b = fit_hyperparams(&xs, &ys, KernelFamily::SquaredExp, &opts).unwrap();
        assert_eq!(a.kernel, b.kernel);
        assert_eq!(a.noise_var, b.noise_var);
    }

    #[test]
    fn works_in_higher_dimension() {
        let mut rng = SmallRng::seed_from_u64(5);
        let xs: Vec<Vec<f64>> = (0..25).map(|_| vec![rng.gen(), rng.gen(), rng.gen()]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 + (x[1] * 3.0).cos()).collect();
        let hp = fit_hyperparams(&xs, &ys, KernelFamily::Matern52, &FitOptions::default()).unwrap();
        assert_eq!(hp.kernel.lengthscales().len(), 3);
        // x[2] is irrelevant: ARD should give it a comparatively long
        // lengthscale (weak check — just not the shortest).
        let ls = hp.kernel.lengthscales();
        assert!(ls[2] > ls[0].min(ls[1]) * 0.5, "ARD lengthscales {ls:?}");
    }

    #[test]
    fn rejects_bad_shapes() {
        let opts = FitOptions::default();
        assert!(fit_hyperparams(&[], &[], KernelFamily::Matern52, &opts).is_err());
        assert!(fit_hyperparams(&[vec![]], &[1.0], KernelFamily::Matern52, &opts).is_err());
        assert!(fit_hyperparams(
            &[vec![0.0], vec![1.0, 2.0]],
            &[1.0, 2.0],
            KernelFamily::Matern52,
            &opts
        )
        .is_err());
    }

    #[test]
    fn single_observation_is_fittable() {
        // Degenerate but must not crash: BO starts from very few points.
        let hp =
            fit_hyperparams(&[vec![0.5]], &[3.0], KernelFamily::Matern52, &FitOptions::default())
                .unwrap();
        assert!(hp.noise_var.is_finite());
    }
}
