//! Input/output scaling.
//!
//! GP hyperparameter priors (the lengthscale search ranges in
//! [`crate::fit`]) assume inputs roughly in the unit cube and targets
//! standardised to zero mean / unit variance. These helpers own that
//! bookkeeping so the searcher layer never hand-rolls it.

/// Affine map from a raw per-dimension range onto `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct InputScaler {
    lo: Vec<f64>,
    width: Vec<f64>,
}

impl InputScaler {
    /// Build from explicit per-dimension `(lo, hi)` bounds. Zero-width
    /// dimensions map to the constant 0.5.
    ///
    /// # Panics
    /// Panics when a dimension has `hi < lo`.
    pub fn from_bounds(bounds: &[(f64, f64)]) -> Self {
        let mut lo = Vec::with_capacity(bounds.len());
        let mut width = Vec::with_capacity(bounds.len());
        for (d, &(l, h)) in bounds.iter().enumerate() {
            assert!(h >= l, "InputScaler: dimension {d} has hi={h} < lo={l}");
            lo.push(l);
            width.push(h - l);
        }
        InputScaler { lo, width }
    }

    /// Infer bounds from data (per-dimension min/max).
    ///
    /// # Panics
    /// Panics on an empty dataset or ragged rows.
    pub fn from_data(xs: &[Vec<f64>]) -> Self {
        assert!(!xs.is_empty(), "InputScaler::from_data: empty dataset");
        let d = xs[0].len();
        let mut bounds = vec![(f64::INFINITY, f64::NEG_INFINITY); d];
        for row in xs {
            assert_eq!(row.len(), d, "InputScaler::from_data: ragged rows");
            for (b, &v) in bounds.iter_mut().zip(row) {
                b.0 = b.0.min(v);
                b.1 = b.1.max(v);
            }
        }
        Self::from_bounds(&bounds)
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Map a raw point into the unit cube. Values outside the stored
    /// bounds extrapolate linearly (they are not clamped), which keeps the
    /// map invertible.
    pub fn scale(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "InputScaler::scale: dim mismatch");
        x.iter()
            .zip(self.lo.iter().zip(&self.width))
            .map(|(&v, (&l, &w))| if mlcd_linalg::is_exact_zero(w) { 0.5 } else { (v - l) / w })
            .collect()
    }

    /// [`scale`](Self::scale) in place on a caller-owned slice — the same
    /// elementwise map with no allocation, for hot loops that stage
    /// features into a reusable buffer. Results are bit-identical to
    /// `scale`.
    ///
    /// # Panics
    /// Panics on a dimensionality mismatch.
    pub fn scale_in_place(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.dim(), "InputScaler::scale_in_place: dim mismatch");
        for (v, (&l, &w)) in x.iter_mut().zip(self.lo.iter().zip(&self.width)) {
            *v = if mlcd_linalg::is_exact_zero(w) { 0.5 } else { (*v - l) / w };
        }
    }

    /// Inverse of [`scale`](Self::scale) (zero-width dimensions return the
    /// stored constant).
    pub fn unscale(&self, u: &[f64]) -> Vec<f64> {
        assert_eq!(u.len(), self.dim(), "InputScaler::unscale: dim mismatch");
        u.iter()
            .zip(self.lo.iter().zip(&self.width))
            .map(|(&v, (&l, &w))| if mlcd_linalg::is_exact_zero(w) { l } else { l + v * w })
            .collect()
    }
}

/// Standardises targets to zero mean / unit standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutputScaler {
    mean: f64,
    std: f64,
}

impl OutputScaler {
    /// Fit to a sample. A constant (or single-element) sample gets unit
    /// scale so the transform stays invertible.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn fit(ys: &[f64]) -> Self {
        assert!(!ys.is_empty(), "OutputScaler::fit: empty sample");
        let n = ys.len() as f64;
        let mean = ys.iter().sum::<f64>() / n;
        let var = ys.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / n;
        let std = var.sqrt();
        OutputScaler { mean, std: if std > 1e-12 { std } else { 1.0 } }
    }

    /// Identity scaler.
    pub fn identity() -> Self {
        OutputScaler { mean: 0.0, std: 1.0 }
    }

    /// Training-sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Scale used (sample standard deviation, or 1 for degenerate samples).
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Raw target → standardised.
    #[inline]
    pub fn transform(&self, y: f64) -> f64 {
        (y - self.mean) / self.std
    }

    /// Standardised → raw.
    #[inline]
    pub fn inverse(&self, z: f64) -> f64 {
        z * self.std + self.mean
    }

    /// Map a variance from standardised space back to raw space.
    #[inline]
    pub fn inverse_var(&self, var: f64) -> f64 {
        var * self.std * self.std
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_round_trip() {
        let s = InputScaler::from_bounds(&[(0.0, 10.0), (-5.0, 5.0)]);
        let x = vec![2.5, 0.0];
        let u = s.scale(&x);
        assert_eq!(u, vec![0.25, 0.5]);
        assert_eq!(s.unscale(&u), x);
    }

    #[test]
    fn input_from_data_covers_extremes() {
        let xs = vec![vec![1.0, 10.0], vec![3.0, 20.0], vec![2.0, 15.0]];
        let s = InputScaler::from_data(&xs);
        assert_eq!(s.scale(&[1.0, 10.0]), vec![0.0, 0.0]);
        assert_eq!(s.scale(&[3.0, 20.0]), vec![1.0, 1.0]);
    }

    #[test]
    fn scale_in_place_matches_scale() {
        let s = InputScaler::from_bounds(&[(0.0, 10.0), (-5.0, 5.0), (3.0, 3.0)]);
        for x in [[2.5, 0.0, 3.0], [-4.0, 17.0, 99.0]] {
            let mut buf = x;
            s.scale_in_place(&mut buf);
            assert_eq!(buf.to_vec(), s.scale(&x));
        }
    }

    #[test]
    fn zero_width_dimension_is_constant() {
        let s = InputScaler::from_bounds(&[(4.0, 4.0)]);
        assert_eq!(s.scale(&[4.0]), vec![0.5]);
        assert_eq!(s.unscale(&[0.77]), vec![4.0]);
    }

    #[test]
    fn out_of_bounds_extrapolates() {
        let s = InputScaler::from_bounds(&[(0.0, 10.0)]);
        assert_eq!(s.scale(&[20.0]), vec![2.0]);
        assert_eq!(s.unscale(&[2.0]), vec![20.0]);
    }

    #[test]
    fn output_standardises() {
        let ys = [10.0, 20.0, 30.0];
        let s = OutputScaler::fit(&ys);
        assert!((s.mean() - 20.0).abs() < 1e-12);
        let z: Vec<f64> = ys.iter().map(|&y| s.transform(y)).collect();
        let zm = z.iter().sum::<f64>() / 3.0;
        assert!(zm.abs() < 1e-12);
        for &y in &ys {
            assert!((s.inverse(s.transform(y)) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn output_constant_sample_safe() {
        let s = OutputScaler::fit(&[7.0, 7.0, 7.0]);
        assert_eq!(s.std(), 1.0);
        assert_eq!(s.transform(7.0), 0.0);
        assert_eq!(s.inverse(0.0), 7.0);
    }

    #[test]
    fn output_variance_mapping() {
        let s = OutputScaler::fit(&[0.0, 10.0]);
        // std = 5, so unit standardised variance maps to 25.
        assert!((s.inverse_var(1.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn output_empty_panics() {
        let _ = OutputScaler::fit(&[]);
    }
}
