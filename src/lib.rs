//! Workspace facade for the MLCD / HeterBO reproduction.
//!
//! Re-exports the public API of every crate in the workspace so examples
//! and integration tests can use a single import root. See the individual
//! crates for the real documentation:
//!
//! * [`mlcd`] — HeterBO search + the MLCD deployment system (the paper).
//! * [`mlcd_gp`] — Gaussian-process regression.
//! * [`mlcd_cloudsim`] — the EC2-style cloud substrate simulator.
//! * [`mlcd_perfmodel`] — the distributed-training performance substrate.
//! * [`mlcd_linalg`] — numerical primitives.

pub use mlcd;
pub use mlcd_cloudsim as cloudsim;
pub use mlcd_gp as gp;
pub use mlcd_linalg as linalg;
pub use mlcd_perfmodel as perfmodel;
