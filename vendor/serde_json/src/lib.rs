//! Offline stand-in for the `serde_json` crate.
//!
//! Pairs with the shimmed `serde` (which defines the [`Value`] tree and
//! the `to_value`/`from_value` traits): this crate adds JSON *text* —
//! [`to_string`], [`to_string_pretty`], [`from_str`] — and the [`json!`]
//! construction macro. Output conventions follow real serde_json where
//! the workspace can observe them: struct field order is preserved,
//! integral floats print with a trailing `.0`, non-finite floats print as
//! `null`.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialisation/deserialisation failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.message)
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Convert any `Serialize` into a [`Value`].
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuild a `Deserialize` from a [`Value`].
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    Ok(T::from_value(&value)?)
}

/// Compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Human-indented JSON text (two spaces, serde_json style).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

// ---- rendering ----

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                out.push_str("null");
            } else if f.fract() == 0.0 && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // crate's own writer; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte position.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let s = std::str::from_utf8(&self.bytes[start..])
                            .map_err(|_| Error::new("invalid utf-8 in string"))?;
                        let c = s.chars().next().expect("non-empty by construction");
                        out.push(c);
                        self.pos = start + c.len_utf8();
                    }
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

// ---- the json! macro ----

/// Build a [`Value`] from JSON-looking syntax with interpolated
/// expressions, like serde_json's macro of the same name.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::Value::Array($crate::json_array_internal!(@acc [] $($tt)*)) };
    ({ $($tt:tt)* }) => { $crate::Value::Object($crate::json_object_internal!(@acc [] $($tt)*)) };
    ($other:expr) => { $crate::to_value(&$other).expect("infallible") };
}

/// Internal: accumulate array elements. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    (@acc [$($done:expr,)*]) => { vec![$($done,)*] };
    (@acc [$($done:expr,)*] null , $($rest:tt)*) => {
        $crate::json_array_internal!(@acc [$($done,)* $crate::Value::Null,] $($rest)*)
    };
    (@acc [$($done:expr,)*] null) => {
        $crate::json_array_internal!(@acc [$($done,)* $crate::Value::Null,])
    };
    (@acc [$($done:expr,)*] { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::json_array_internal!(@acc [$($done,)* $crate::json!({ $($inner)* }),] $($rest)*)
    };
    (@acc [$($done:expr,)*] { $($inner:tt)* }) => {
        $crate::json_array_internal!(@acc [$($done,)* $crate::json!({ $($inner)* }),])
    };
    (@acc [$($done:expr,)*] [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::json_array_internal!(@acc [$($done,)* $crate::json!([ $($inner)* ]),] $($rest)*)
    };
    (@acc [$($done:expr,)*] [ $($inner:tt)* ]) => {
        $crate::json_array_internal!(@acc [$($done,)* $crate::json!([ $($inner)* ]),])
    };
    (@acc [$($done:expr,)*] $value:expr , $($rest:tt)*) => {
        $crate::json_array_internal!(@acc [$($done,)* $crate::json!($value),] $($rest)*)
    };
    (@acc [$($done:expr,)*] $value:expr) => {
        $crate::json_array_internal!(@acc [$($done,)* $crate::json!($value),])
    };
}

/// Internal: accumulate object entries. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    (@acc [$($done:expr,)*]) => { vec![$($done,)*] };
    (@acc [$($done:expr,)*] $key:literal : null , $($rest:tt)*) => {
        $crate::json_object_internal!(
            @acc [$($done,)* ($key.to_string(), $crate::Value::Null),] $($rest)*)
    };
    (@acc [$($done:expr,)*] $key:literal : null) => {
        $crate::json_object_internal!(
            @acc [$($done,)* ($key.to_string(), $crate::Value::Null),])
    };
    (@acc [$($done:expr,)*] $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::json_object_internal!(
            @acc [$($done,)* ($key.to_string(), $crate::json!({ $($inner)* })),] $($rest)*)
    };
    (@acc [$($done:expr,)*] $key:literal : { $($inner:tt)* }) => {
        $crate::json_object_internal!(
            @acc [$($done,)* ($key.to_string(), $crate::json!({ $($inner)* })),])
    };
    (@acc [$($done:expr,)*] $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $crate::json_object_internal!(
            @acc [$($done,)* ($key.to_string(), $crate::json!([ $($inner)* ])),] $($rest)*)
    };
    (@acc [$($done:expr,)*] $key:literal : [ $($inner:tt)* ]) => {
        $crate::json_object_internal!(
            @acc [$($done,)* ($key.to_string(), $crate::json!([ $($inner)* ])),])
    };
    (@acc [$($done:expr,)*] $key:literal : $value:expr , $($rest:tt)*) => {
        $crate::json_object_internal!(
            @acc [$($done,)* ($key.to_string(), $crate::json!($value)),] $($rest)*)
    };
    (@acc [$($done:expr,)*] $key:literal : $value:expr) => {
        $crate::json_object_internal!(
            @acc [$($done,)* ($key.to_string(), $crate::json!($value)),])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = json!({"a": 1, "b": [true, null], "c": {"nested": 1.5}});
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null],"c":{"nested":1.5}}"#);
        assert!(to_string_pretty(&v).unwrap().contains("\n  \"a\": 1"));
    }

    #[test]
    fn parses_back() {
        let text = r#"{"x": -3, "y": 2.25, "s": "he\"llo", "arr": [1, 2, 3], "n": null}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["x"].as_i64(), Some(-3));
        assert_eq!(v["y"].as_f64(), Some(2.25));
        assert_eq!(v["s"].as_str(), Some("he\"llo"));
        assert_eq!(v["arr"].as_array().unwrap().len(), 3);
        assert!(v["n"].is_null());
    }

    #[test]
    fn round_trips_unicode_and_escapes() {
        let v = json!({"s": "tab\there λ µ"});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integral_floats_keep_decimal_point() {
        assert_eq!(to_string(&json!(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&json!(2)).unwrap(), "2");
    }

    #[test]
    fn json_macro_interpolates_expressions() {
        struct T;
        impl T {
            fn name(&self) -> &'static str {
                "t"
            }
        }
        let q = (1.0, 2.0);
        let v = json!({"type": T.name(), "min": q.0, "rows": [{"k": q.1}]});
        assert_eq!(v["type"].as_str(), Some("t"));
        assert_eq!(v["min"].as_f64(), Some(1.0));
        assert_eq!(v["rows"][0]["k"].as_f64(), Some(2.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12x").is_err());
    }
}
