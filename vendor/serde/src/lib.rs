//! Offline stand-in for the `serde` crate.
//!
//! The real serde's visitor architecture is overkill for this workspace,
//! which only ever serialises plain structs/enums to JSON and round-trips
//! a handful of catalog types back. This shim collapses the data model to
//! a single JSON-shaped [`Value`] tree:
//!
//! - [`Serialize`] renders `self` into a [`Value`];
//! - [`Deserialize`] rebuilds `Self` from a [`Value`].
//!
//! The derive macros (re-exported from the local `serde_derive` shim)
//! generate the same externally-tagged representation real serde uses:
//! named structs → objects, newtype structs → their inner value, unit enum
//! variants → strings, data-carrying variants → `{"Variant": value}`.
//! `serde_json` (also shimmed) handles text parsing/printing of [`Value`].

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::collections::HashMap;

/// A JSON-shaped value tree — the interchange format of the shimmed
/// serde/serde_json pair. Object entries preserve insertion order, like
/// `serde_json` with default features.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (serialised without a decimal point).
    Int(i64),
    /// Unsigned integer beyond `i64::MAX`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` on anything else.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// As `f64` (integers widen), `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// As `u64` when the value is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// As `i64` when the value is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// As `&str` for strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As `bool` for booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// As a slice of values for arrays.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Whether this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Serialisation into the [`Value`] tree.
pub trait Serialize {
    /// Render `self` as a JSON-shaped value.
    fn to_value(&self) -> Value;
}

/// Deserialisation error: what was expected, and a rendering of what was
/// found.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    /// Human-readable mismatch description.
    pub message: String,
}

impl DeError {
    /// Build an error from an expectation and the offending value.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError { message: format!("expected {what}, got {got:?}") }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialize error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Reconstruction from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a JSON-shaped value.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- Serialize impls for primitives and std containers ----

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}

impl<K: ToString, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort map entries by key.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

macro_rules! ser_tuple {
    ($($idx:tt : $t:ident),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}
ser_tuple!(0: A);
ser_tuple!(0: A, 1: B);
ser_tuple!(0: A, 1: B, 2: C);
ser_tuple!(0: A, 1: B, 2: C, 3: D);

// ---- Deserialize impls ----

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| DeError::expected(stringify!($t), v))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_u64().ok_or_else(|| DeError::expected("u64", v))
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_u64()
            .and_then(|u| usize::try_from(u).ok())
            .ok_or_else(|| DeError::expected("usize", v))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("f64", v))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| DeError::expected("f32", v))
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::expected("string", v))
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Vec::<u8>::from_value(&vec![1u8, 2].to_value()).unwrap(), vec![1, 2]);
    }

    #[test]
    fn index_and_accessors() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(3)),
            ("b".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v["a"].as_f64(), Some(3.0));
        assert_eq!(v["b"][0].as_bool(), Some(true));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn big_u64_survives() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }
}
