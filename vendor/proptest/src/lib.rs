//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] test
//! macro (with optional `#![proptest_config(..)]`), [`Strategy`] with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], and the `prop_assert*` macros. Sampling is
//! deterministic — each test derives its RNG seed from its full module
//! path, so failures reproduce without persistence files. There is no
//! shrinking: a failing case panics with the assert's own message.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration. Only `cases` is honoured; the remaining
/// fields exist so `..ProptestConfig::default()` spreads keep working.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// Failure value property bodies may return early with `Ok(())` /
/// `Err(..)`; the macro harness panics on `Err`.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic RNG driving strategy sampling (xoshiro256++ seeded via
/// SplitMix64 from a test-name hash).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary string — the `proptest!` macro passes the
    /// test's `module_path!()::name` so every test gets a stable,
    /// distinct stream.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 to fill the state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in [0, bound).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant for test sampling.
        self.next_u64() % bound
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform sampled values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Sample a value, then sample from a strategy built from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

// ---- range strategies ----

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // 53-bit grid over the closed interval; endpoint-inclusive.
        let t = rng.next_u64() >> 11;
        lo + (t as f64 / ((1u64 << 53) - 1) as f64) * (hi - lo)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty range strategy");
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i64 - self.start as i64) as u64;
                assert!(span > 0, "empty range strategy");
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                let span = (hi - lo) as u64;
                (lo + rng.below(span.saturating_add(1)) as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

/// A fixed value, sampled as itself every time.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($idx:tt : $t:ident),+) => {
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(0: A);
tuple_strategy!(0: A, 1: B);
tuple_strategy!(0: A, 1: B, 2: C);
tuple_strategy!(0: A, 1: B, 2: C, 3: D);
tuple_strategy!(0: A, 1: B, 2: C, 3: D, 4: E);
tuple_strategy!(0: A, 1: B, 2: C, 3: D, 4: E, 5: F);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Anything usable as the `size` argument of [`vec`](fn@vec): an exact
    /// length or a (half-open / inclusive) range of lengths.
    pub trait SizeRange {
        /// Sample a concrete length.
        fn sample(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `proptest::collection::vec(element_strategy, size)`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Assert inside a property; panics (fails the test) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declare property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` that samples `cases` inputs deterministically and
/// runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr);) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let __strats = ($($strat,)+);
            for __case in 0..__cfg.cases {
                let _ = __case;
                let ($($pat,)+) = $crate::Strategy::generate(&__strats, &mut __rng);
                // The body runs inside a Result-returning closure so
                // `return Ok(())` / `Err(..)` early exits type-check,
                // matching real proptest's implicit `TestCaseResult`.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        Ok(())
                    })();
                if let Err(e) = __outcome {
                    panic!("property failed: {e}");
                }
            }
        }
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
}

/// The usual glob import surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let f = Strategy::generate(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
            let u = Strategy::generate(&(5u64..9), &mut rng);
            assert!((5..9).contains(&u));
            let i = Strategy::generate(&(-4i32..=4), &mut rng);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        let mut c = TestRng::deterministic("different");
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn combinators_compose() {
        let strat = (1usize..=4)
            .prop_flat_map(|n| collection::vec(0.0f64..1.0, n * 2).prop_map(move |v| (n, v)));
        let mut rng = TestRng::deterministic("compose");
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n * 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_form_works(x in 0.0f64..1.0, (a, b) in (0u64..10, 0u64..10)) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(a < 10 && b < 10, "a {a} b {b}");
        }
    }

    proptest! {
        #[test]
        fn macro_form_without_config(n in 1usize..5) {
            prop_assert!((1..5).contains(&n));
        }
    }
}
