//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this repo builds in has no registry access, so the real
//! crate cannot be fetched. This shim exposes the subset of the API the
//! workspace uses — `Mutex::lock`, `RwLock::read`/`write` returning guards
//! directly (no `Result`) — implemented over `std::sync`. Lock poisoning
//! is translated into a panic on the *next* acquisition, which matches
//! parking_lot's semantics closely enough for a simulator whose locks
//! never cross a panic boundary in practice.

use std::sync;

/// Mutual exclusion, `parking_lot`-style: `lock()` returns the guard.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock, `parking_lot`-style: `read()`/`write()` return
/// guards.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
