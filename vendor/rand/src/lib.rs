//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no registry access, so this shim provides the
//! exact slice of `rand` the workspace consumes — and it reproduces
//! `rand` 0.8.5 **bit for bit**, not just approximately:
//!
//! * `SmallRng` is the same xoshiro256++ generator real `rand` 0.8 uses on
//!   64-bit targets, seeded through the same SplitMix64 expansion.
//! * `gen_range` over integers uses the same widening-multiply rejection
//!   sampler (`UniformInt::sample_single`), including the modulus-zone
//!   variant for 8/16-bit types and the u32 half-width draws for ≤32-bit
//!   types.
//! * `gen_range` over floats uses the same [1,2)-mantissa construction
//!   (`UniformFloat::sample_single`).
//! * `gen_bool` is `Bernoulli`'s integer-threshold compare (no draw at
//!   all for `p == 1.0`).
//! * `shuffle`/`choose` route index generation through the same
//!   `gen_index` u32 fast path.
//!
//! Bit-exactness matters: every seed-tuned benchmark figure in this
//! workspace was calibrated against real `rand`'s streams, so a shim that
//! merely "returns uniform numbers" silently re-rolls every experiment.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of a 64-bit draw, as real `rand`'s
    /// xoshiro256++ does — the low bits have weak linear dependencies).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Expand a 64-bit seed into a full generator state (SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution ([0,1) for floats,
/// uniform for integers and bools).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1) (rand's
        // multiply-based method).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand compares the most significant bit of a u32 draw.
        rng.next_u32() & (1 << 31) != 0
    }
}

#[inline]
fn wmul32(a: u32, b: u32) -> (u32, u32) {
    let p = a as u64 * b as u64;
    ((p >> 32) as u32, p as u32)
}

#[inline]
fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let p = a as u128 * b as u128;
    ((p >> 64) as u64, p as u64)
}

/// `UniformInt::sample_single` with a u32-wide draw (used for all integer
/// types of ≤32 bits). `modulus_zone` selects the exact rejection zone for
/// 8/16-bit types, matching rand 0.8.5.
fn uniform_u32<R: RngCore + ?Sized>(rng: &mut R, range: u32, modulus_zone: bool) -> u32 {
    debug_assert!(range > 0);
    let zone = if modulus_zone {
        let ints_to_reject = (u32::MAX - range + 1) % range;
        u32::MAX - ints_to_reject
    } else {
        (range << range.leading_zeros()).wrapping_sub(1)
    };
    loop {
        let v = rng.next_u32();
        let (hi, lo) = wmul32(v, range);
        if lo <= zone {
            return hi;
        }
    }
}

/// `UniformInt::sample_single` with a u64-wide draw (64-bit and
/// pointer-sized integer types).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    debug_assert!(range > 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let (hi, lo) = wmul64(v, range);
        if lo <= zone {
            return hi;
        }
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range_32 {
    ($($t:ty, $un:ty => $modulus:expr),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let range = (self.end as $un).wrapping_sub(self.start as $un) as u32;
                let hi = uniform_u32(rng, range, $modulus);
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi_b) = (*self.start(), *self.end());
                assert!(lo <= hi_b, "gen_range: empty range");
                let range64 = ((hi_b as $un).wrapping_sub(lo as $un) as u64) + 1;
                if range64 > u32::MAX as u64 {
                    // Full 32-bit span: a raw draw is already uniform.
                    return rng.next_u32() as $t;
                }
                let hi = uniform_u32(rng, range64 as u32, $modulus);
                lo.wrapping_add(hi as $t)
            }
        }
    )*};
}

int_sample_range_32!(u8, u8 => true, i8, u8 => true, u16, u16 => true,
                     i16, u16 => true, u32, u32 => false, i32, u32 => false);

macro_rules! int_sample_range_64 {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let range = (self.end as u64).wrapping_sub(self.start as u64);
                let hi = uniform_u64(rng, range);
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi_b) = (*self.start(), *self.end());
                assert!(lo <= hi_b, "gen_range: empty range");
                let range = (hi_b as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if range == 0 {
                    // Full span: a raw draw is already uniform.
                    return rng.next_u64() as $t;
                }
                let hi = uniform_u64(rng, range);
                lo.wrapping_add(hi as $t)
            }
        }
    )*};
}

int_sample_range_64!(u64, i64, usize, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let scale = self.end - self.start;
        loop {
            // A value in [1, 2): exponent 0, 52 random mantissa bits —
            // rand's `UniformFloat::sample_single` construction.
            let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
            let res = (value1_2 - 1.0) * scale + self.start;
            if res < self.end {
                return res;
            }
        }
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let scale = self.end - self.start;
        loop {
            let value1_2 = f32::from_bits((rng.next_u32() >> 9) | (127u32 << 23));
            let res = (value1_2 - 1.0) * scale + self.start;
            if res < self.end {
                return res;
            }
        }
    }
}

/// The user-facing extension trait.
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p` (rand's integer
    /// threshold; `p == 1.0` consumes no randomness).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        if p == 1.0 {
            return true;
        }
        let p_int = (p * 2.0f64.powi(64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand` 0.8's `SmallRng` on
    /// 64-bit platforms. Fast, 256-bit state, passes BigCrush.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility: the stand-in's `StdRng` is the
    /// same generator as `SmallRng`.
    pub type StdRng = SmallRng;
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// rand's index helper: draw u32-wide whenever the bound allows — this
    /// halves stream consumption vs a usize draw and is what makes
    /// `shuffle` reproduce real rand's permutations.
    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= u32::MAX as usize {
            rng.gen_range(0..ubound as u32) as usize
        } else {
            rng.gen_range(0..ubound)
        }
    }

    /// Slice shuffling and choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = gen_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_index(rng, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn matches_rand_085_reference_stream() {
        // First raw words of rand 0.8.5's SmallRng::seed_from_u64(0):
        // SplitMix64 state expansion followed by xoshiro256++ output.
        // (Reference: xoshiro256plusplus.c + splitmix64.c by Blackman &
        // Vigna, the generators rand vendors verbatim.)
        let mut rng = SmallRng::seed_from_u64(0);
        let s0 = 0xE220_A839_7B1D_CDAFu64; // splitmix64(0x9E3779B97F4A7C15)
        let first = rng.next_u64();
        // result = rotl(s0 + s3, 23) + s0, with the s-values from splitmix.
        let mut sm = 0u64;
        let mut split = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let (a, _b, _c, d) = (split(), split(), split(), split());
        assert_eq!(a, s0);
        assert_eq!(first, a.wrapping_add(d).rotate_left(23).wrapping_add(a));
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let k = rng.gen_range(5..8u32);
            assert!((5..8).contains(&k));
            let j = rng.gen_range(0..=2usize);
            assert!(j <= 2);
            let s = rng.gen_range(-3..=3i64);
            assert!((-3..=3).contains(&s));
            let b = rng.gen_range(10..200u8);
            assert!((10..200).contains(&b));
        }
    }

    #[test]
    fn u32_range_consumes_half_words() {
        // A 0..n u32 draw must consume exactly one u32 (= one u64 here,
        // since next_u32 takes the upper half of a fresh u64) and map via
        // the widening multiply: hi = (v * n) >> 32.
        let mut a = SmallRng::seed_from_u64(11);
        let mut b = SmallRng::seed_from_u64(11);
        let v = b.next_u32();
        let n = 7u32;
        let want = ((v as u64 * n as u64) >> 32) as u32;
        assert_eq!(a.gen_range(0..n), want);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        // p = 1.0 must not consume randomness.
        let mut a = SmallRng::seed_from_u64(6);
        let mut b = SmallRng::seed_from_u64(6);
        let _ = a.gen_bool(1.0);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_range_uses_mantissa_construction() {
        let mut a = SmallRng::seed_from_u64(13);
        let mut b = SmallRng::seed_from_u64(13);
        let raw = b.next_u64();
        let value1_2 = f64::from_bits((raw >> 12) | (1023u64 << 52));
        let want = (value1_2 - 1.0) * 5.0 + 2.0;
        assert_eq!(a.gen_range(2.0..7.0), want);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([42u8].choose(&mut rng) == Some(&42));
    }
}
