//! Offline stand-in for the `rayon` crate.
//!
//! Implements the small parallel-iterator subset the workspace uses —
//! `slice.par_iter().map(f)` followed by `collect`, `reduce`, `min_by`,
//! `max_by`, `for_each` or `sum` — with genuine parallelism from
//! `std::thread::scope` instead of a work-stealing pool. Items are split
//! into one contiguous chunk per available core; `map → collect` preserves
//! input order exactly, so pipelines built on it are bit-identical to
//! their sequential equivalents regardless of thread count.
//!
//! Set `RAYON_NUM_THREADS=1` to force sequential execution (useful when
//! bisecting a parallelism-dependent result).

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    /// Per-thread worker-count override installed by [`ThreadPool::install`]
    /// (0 = no override). Thread-local so concurrent benches sweeping
    /// different widths cannot race each other.
    static POOL_WIDTH: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads used for fan-out.
pub fn current_num_threads() -> usize {
    let width = POOL_WIDTH.with(Cell::get);
    if width >= 1 {
        return width;
    }
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    })
}

/// Run `f` over every item, in parallel, preserving input order.
fn parallel_map<'a, T: Sync, R: Send>(items: &'a [T], f: &(impl Fn(&'a T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("rayon shim worker panicked"));
        }
        out
    })
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T: Sync> {
    items: &'a [T],
}

/// `.par_iter()` entry point.
pub trait IntoParallelRefIterator<'a> {
    /// Item yielded by the parallel iterator.
    type Item: Sync + 'a;

    /// Parallel iterator borrowing the collection.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each item through `f`.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap { items: self.items, f }
    }

    /// Run `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        parallel_map(self.items, &|t| f(t));
    }
}

/// A mapped parallel iterator: terminal operations execute the fan-out.
pub struct ParMap<'a, T: Sync, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    fn run(self) -> Vec<R> {
        parallel_map(self.items, &self.f)
    }

    /// Collect mapped values in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Rayon-style reduce with an identity constructor.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R,
        OP: Fn(R, R) -> R,
    {
        self.run().into_iter().fold(identity(), &op)
    }

    /// Minimum by comparator.
    pub fn min_by(self, cmp: impl Fn(&R, &R) -> std::cmp::Ordering) -> Option<R> {
        self.run().into_iter().min_by(|a, b| cmp(a, b))
    }

    /// Maximum by comparator.
    pub fn max_by(self, cmp: impl Fn(&R, &R) -> std::cmp::Ordering) -> Option<R> {
        self.run().into_iter().max_by(|a, b| cmp(a, b))
    }
}

impl<'a, T: Sync, R: Send + std::iter::Sum, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    /// Sum of the mapped values.
    pub fn sum<S: From<R>>(self) -> S {
        S::from(self.run().into_iter().sum::<R>())
    }
}

/// Builder for a fixed-width [`ThreadPool`], mirroring the real rayon
/// API surface the benches use.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type of [`ThreadPoolBuilder::build`]. The shim's build cannot
/// fail, but callers written against real rayon expect a `Result`.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rayon shim thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Fresh builder with the default (global) width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin the pool to `n` workers; 0 keeps the global default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Infallible in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// A fixed-width pool. The shim has no persistent workers; `install`
/// simply pins the fan-out width seen by `par_iter` calls made while
/// the closure runs on this thread. Nested scoped workers spawned by
/// those calls use the default width, matching the shim's one-level
/// parallelism.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's width; restores the previous width on
    /// exit (also on panic, via the guard's `Drop`).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_WIDTH.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(POOL_WIDTH.with(|c| c.replace(self.num_threads)));
        f()
    }

    /// The width `par_iter` will use inside [`ThreadPool::install`].
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads >= 1 {
            self.num_threads
        } else {
            current_num_threads()
        }
    }
}

/// What `use rayon::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(ys, xs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_matches_fold() {
        let xs: Vec<f64> = (0..500).map(|i| i as f64 * 0.5).collect();
        let m = xs.par_iter().map(|x| x * x).reduce(|| 0.0, f64::max);
        assert_eq!(m, (499.0f64 * 0.5).powi(2));
    }

    #[test]
    fn min_by_finds_minimum() {
        let xs = vec![3.0, -1.0, 2.5, -0.5];
        let m = xs.par_iter().map(|x| x * 2.0_f64).min_by(|a, b| a.total_cmp(b));
        assert_eq!(m, Some(-2.0));
    }

    #[test]
    fn pool_install_pins_width_and_restores() {
        let outside = crate::current_num_threads();
        let pool = crate::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let (inside, mapped) = pool.install(|| {
            let xs: Vec<u64> = (0..64).collect();
            let ys: Vec<u64> = xs.par_iter().map(|x| x + 1).collect();
            (crate::current_num_threads(), ys)
        });
        assert_eq!(inside, 1);
        assert_eq!(mapped, (1..=64).collect::<Vec<u64>>());
        assert_eq!(crate::current_num_threads(), outside);
    }

    #[test]
    fn empty_input_works() {
        let xs: Vec<u32> = Vec::new();
        let ys: Vec<u32> = xs.par_iter().map(|x| x + 1).collect();
        assert!(ys.is_empty());
        assert_eq!(xs.par_iter().map(|x| *x).reduce(|| 7, |a, b| a + b), 7);
    }
}
