//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the shimmed `serde::Serialize` / `serde::Deserialize`
//! traits (JSON-value-tree based, see the local `vendor/serde`) for the
//! item shapes this workspace actually contains:
//!
//! - named-field structs → JSON objects;
//! - tuple structs: one field → the inner value (serde's newtype rule),
//!   several → an array;
//! - enums with unit variants → variant-name strings;
//! - enums with tuple or struct variants → externally tagged
//!   `{"Variant": …}`.
//!
//! Parsing is a hand-rolled walk over the `proc_macro` token stream (the
//! container has no `syn`/`quote`). Generics and `#[serde(...)]`
//! attributes are rejected loudly rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[derive(Debug)]
enum Shape {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<(String, VariantKind)> },
}

/// Derive the shimmed `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 serde::Value::Object(vec![{entries}])\n}}\n}}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let inner = if *arity == 1 {
                "serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: String = (0..*arity)
                    .map(|i| format!("serde::Serialize::to_value(&self.{i}),"))
                    .collect();
                format!("serde::Value::Array(vec![{items}])")
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ {inner} }}\n}}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
             serde::Value::Str(\"{name}\".to_string()) }}\n}}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, kind)| match kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => serde::Value::Str(\"{v}\".to_string()),"
                    ),
                    VariantKind::Tuple(1) => format!(
                        "{name}::{v}(f0) => serde::Value::Object(vec![(\"{v}\".to_string(), \
                         serde::Serialize::to_value(f0))]),"
                    ),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: String = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b}),"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => serde::Value::Object(vec![(\"{v}\".to_string(), \
                             serde::Value::Array(vec![{items}]))]),",
                            binds.join(", ")
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let entries: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), serde::Serialize::to_value({f})),"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {} }} => serde::Value::Object(vec![(\"{v}\".to_string(), \
                             serde::Value::Object(vec![{entries}]))]),",
                            fields.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                 match self {{ {arms} }}\n}}\n}}"
            )
        }
    };
    body.parse().expect("serde_derive shim: generated Serialize impl must parse")
}

/// Derive the shimmed `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(\
                         v.get(\"{f}\").unwrap_or(&serde::Value::Null))?,"
                    )
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {{\n\
                 match v {{\n\
                 serde::Value::Object(_) => Ok({name} {{ {inits} }}),\n\
                 other => Err(serde::DeError::expected(\"object for {name}\", other)),\n\
                 }}\n}}\n}}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {{\n\
                     Ok({name}(serde::Deserialize::from_value(v)?))\n}}\n}}"
                )
            } else {
                let items: String = (0..*arity)
                    .map(|i| format!("serde::Deserialize::from_value(&a[{i}])?,"))
                    .collect();
                format!(
                    "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {{\n\
                     match v {{\n\
                     serde::Value::Array(a) if a.len() == {arity} => Ok({name}({items})),\n\
                     other => Err(serde::DeError::expected(\"array[{arity}] for {name}\", other)),\n\
                     }}\n}}\n}}"
                )
            }
        }
        Shape::UnitStruct { name } => format!(
            "impl serde::Deserialize for {name} {{\n\
             fn from_value(_v: &serde::Value) -> std::result::Result<Self, serde::DeError> {{\n\
             Ok({name}) }}\n}}"
        ),
        Shape::Enum { name, variants } => {
            let str_arms: String = variants
                .iter()
                .filter(|(_, kind)| matches!(kind, VariantKind::Unit))
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let tag_arms: String = variants
                .iter()
                .filter_map(|(v, kind)| match kind {
                    VariantKind::Unit => None,
                    VariantKind::Tuple(1) => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(serde::Deserialize::from_value(val)?)),"
                    )),
                    VariantKind::Tuple(arity) => {
                        let items: String = (0..*arity)
                            .map(|i| format!("serde::Deserialize::from_value(&a[{i}])?,"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => match val {{\n\
                             serde::Value::Array(a) if a.len() == {arity} => Ok({name}::{v}({items})),\n\
                             other => Err(serde::DeError::expected(\"array[{arity}] for {name}::{v}\", other)),\n\
                             }},"
                        ))
                    }
                    VariantKind::Struct(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: serde::Deserialize::from_value(\
                                     val.get(\"{f}\").unwrap_or(&serde::Value::Null))?,"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => Ok({name}::{v} {{ {inits} }}),"
                        ))
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {{\n\
                 match v {{\n\
                 serde::Value::Str(s) => match s.as_str() {{\n\
                 {str_arms}\n\
                 _ => Err(serde::DeError::expected(\"variant of {name}\", v)),\n\
                 }},\n\
                 serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, val) = &entries[0];\n\
                 match tag.as_str() {{\n\
                 {tag_arms}\n\
                 _ => Err(serde::DeError::expected(\"variant of {name}\", v)),\n\
                 }}\n\
                 }},\n\
                 other => Err(serde::DeError::expected(\"string or 1-entry object for {name}\", other)),\n\
                 }}\n}}\n}}"
            )
        }
    };
    body.parse().expect("serde_derive shim: generated Deserialize impl must parse")
}

// ---- token-stream parsing ----

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct { name, fields: parse_named_fields(g.stream()) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct { name, arity: count_top_level_commas(g.stream()) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("serde_derive shim: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum { name, variants: parse_variants(g.stream()) }
            }
            other => panic!("serde_derive shim: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

/// Advance past outer attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the bracket group
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                } else {
                    panic!("serde_derive shim: stray `#` without attribute brackets");
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field struct body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            panic!("serde_derive shim: expected field name, got {:?}", tokens.get(i));
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after field, got {other:?}"),
        }
        skip_type_until_comma(&tokens, &mut i);
    }
    fields
}

/// Skip a type expression, stopping after the next top-level comma (or at
/// end of stream). Tracks `<`/`>` nesting; `(..)`/`[..]` arrive as atomic
/// groups.
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Number of fields in a tuple-struct/tuple-variant body.
fn count_top_level_commas(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle_depth = 0usize;
    for (idx, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                // A trailing comma does not start a new field.
                ',' if angle_depth == 0 && idx + 1 < tokens.len() => fields += 1,
                _ => {}
            }
        }
    }
    fields
}

/// `(variant name, kind)` pairs of an enum body. Explicit discriminants
/// are rejected.
fn parse_variants(stream: TokenStream) -> Vec<(String, VariantKind)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            panic!("serde_derive shim: expected variant name, got {:?}", tokens.get(i));
        };
        let vname = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_top_level_commas(g.stream());
                i += 1;
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push((vname, kind));
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde_derive shim: explicit discriminants are not supported");
            }
            other => panic!("serde_derive shim: expected `,` between variants, got {other:?}"),
        }
    }
    variants
}
