//! Offline stand-in for the `criterion` crate.
//!
//! Real timing, simplified statistics: each benchmark runs a short
//! warm-up to estimate per-iteration cost, picks an iteration count that
//! fills a fixed sampling window, takes `sample_size` samples, and
//! prints min / median / max per iteration in criterion's familiar
//! `time: [..]` shape. Supports `bench_function`, benchmark groups,
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros. No plots, no baselines, no CLI filtering
//! beyond a single optional substring argument.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(300);
const DEFAULT_SAMPLE_SIZE: usize = 50;
/// Total measurement window split across samples.
const MEASURE: Duration = Duration::from_millis(1500);

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    /// `cargo bench` passes `--bench` to harness=false targets; `cargo
    /// test` does not. Without it, run each routine once as a smoke
    /// test, exactly like real criterion.
    smoke_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // First non-flag CLI argument acts as a substring filter, like
        // `cargo bench -- <substring>`.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let smoke_mode = !std::env::args().any(|a| a == "--bench");
        Criterion { filter, smoke_mode }
    }
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.filter.as_deref(), DEFAULT_SAMPLE_SIZE, self.smoke_mode, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            filter: self.filter.clone(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            smoke_mode: self.smoke_mode,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    filter: Option<String>,
    sample_size: usize,
    smoke_mode: bool,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_bench(&full, self.filter.as_deref(), self.sample_size, self.smoke_mode, f);
        self
    }

    /// Run a benchmark that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_bench(&full, self.filter.as_deref(), self.sample_size, self.smoke_mode, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (kept for API compatibility; groups have no state
    /// to flush in this shim).
    pub fn finish(self) {}
}

/// A benchmark identifier: `function/parameter` or just a parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Just the parameter, for groups benching one function at many
    /// sizes.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId(s.clone())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` runs of the routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    filter: Option<&str>,
    sample_size: usize,
    smoke_mode: bool,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }

    if smoke_mode {
        // `cargo test` path: one iteration proves the bench runs.
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        println!("{name}: smoke-tested (1 iter, {})", fmt_time(b.elapsed.as_secs_f64()));
        return;
    }

    // Warm-up: run single iterations until the warm-up window elapses.
    // Per-iteration cost is estimated from the *fastest* warm-up run —
    // the last run used to decide it, so one slow outlier (page faults,
    // a scheduler hiccup) at the end of the window skewed the iteration
    // count and with it every sample of the measurement phase.
    let mut per_iter = Duration::MAX;
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < WARMUP {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter = per_iter.min(b.elapsed.max(Duration::from_nanos(1)));
        warm_iters += 1;
        if warm_iters >= 1000 {
            break;
        }
    }
    if per_iter == Duration::MAX {
        per_iter = Duration::from_nanos(1);
    }

    // Pick iterations per sample so all samples fit the measure window.
    let budget_per_sample = MEASURE / sample_size as u32;
    let iters =
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let median = samples[samples.len() / 2];

    // Relative sample spread — (max − min) / median — so downstream
    // reports can flag unstable benchmarks instead of silently folding
    // an outlier-ridden run into a clean-looking median.
    let spread = if median > 0.0 { (max - min) / median } else { 0.0 };

    println!(
        "{name:<40} time: [{} {} {}]  ({} samples × {} iters, {} warm-up runs, spread {:.0}%)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(max),
        sample_size,
        iters,
        warm_iters,
        spread * 100.0,
    );

    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            append_json_record(&path, name, min, median, max, sample_size, iters, warm_iters);
        }
    }
}

/// Append one JSONL record per benchmark to the file named by the
/// `CRITERION_JSON` env var. Times are nanoseconds per iteration; the
/// format is hand-rolled (no serde in the shim) and each line is a
/// self-contained JSON object, so partial runs still parse.
#[allow(clippy::too_many_arguments)]
fn append_json_record(
    path: &str,
    name: &str,
    min: f64,
    median: f64,
    max: f64,
    sample_size: usize,
    iters: u64,
    warmup_runs: u64,
) {
    use std::io::Write;
    let escaped: String = name
        .chars()
        .flat_map(|ch| match ch {
            '"' | '\\' => vec!['\\', ch],
            _ => vec![ch],
        })
        .collect();
    let spread = if median > 0.0 { (max - min) / median } else { 0.0 };
    let line = format!(
        "{{\"name\":\"{escaped}\",\"min_ns\":{:.1},\"median_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{sample_size},\"iters\":{iters},\"warmup_runs\":{warmup_runs},\"spread\":{spread:.4}}}\n",
        min * 1e9,
        median * 1e9,
        max * 1e9,
    );
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = res {
        eprintln!("criterion shim: failed to append to {path}: {e}");
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Bundle benchmark functions into a runnable group, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_something() {
        let mut c = Criterion { filter: None, smoke_mode: true };
        // Keep this fast: tiny body, but the harness path is exercised.
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn full_timing_path_runs() {
        // Exercise warm-up + sampling with a cheap body; the windows are
        // constant so this stays ~2s worst case.
        run_bench("timing", None, 2, false, |b| b.iter(|| black_box(17u64.wrapping_mul(31))));
    }

    #[test]
    fn filter_skips_everything_quickly() {
        let mut c = Criterion { filter: Some("no-such-bench".into()), smoke_mode: false };
        let t = Instant::now();
        c.bench_function("skipped", |b| b.iter(|| std::thread::sleep(Duration::from_secs(1))));
        assert!(t.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn json_record_appends_parseable_lines() {
        let path =
            std::env::temp_dir().join(format!("criterion_shim_{}.jsonl", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);
        append_json_record(&path, "gp_fit/32", 1.0e-3, 1.1e-3, 1.3e-3, 10, 4, 25);
        append_json_record(&path, "with \"quote\"", 2e-9, 3e-9, 4e-9, 2, 1, 3);
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"gp_fit/32\""));
        assert!(lines[0].contains("\"median_ns\":1100000.0"));
        assert!(lines[0].contains("\"samples\":10"));
        assert!(lines[0].contains("\"warmup_runs\":25"));
        // spread = (1.3ms − 1.0ms) / 1.1ms ≈ 0.2727
        assert!(lines[0].contains("\"spread\":0.2727"));
        assert!(lines[1].contains("with \\\"quote\\\""));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("fit", 40).0, "fit/40");
        assert_eq!(BenchmarkId::from_parameter(7).0, "7");
    }
}
