//! Extension walkthrough: calibrating the performance model against
//! measurements.
//!
//! ```text
//! cargo run --example calibrate_simulator --release
//! ```
//!
//! The simulator's communication constants are calibration values. If your
//! cloud behaves differently — a chattier parameter server, a slower ring —
//! measure a handful of deployments and fit the constants, then run all
//! the what-if analysis (optima, budget sweeps) on the fitted model.

use mlcd::prelude::*;
use mlcd_perfmodel::{CalibrationSample, Calibrator, CommModel};

fn main() {
    let job = TrainingJob::resnet_cifar10();

    // Pretend this is your cloud: its PS incast is 2.3× our default.
    let your_cloud = ThroughputModel {
        comm: CommModel { ps_incast_per_peer: 35e-3, ring_step_latency: 2.0e-3 },
    };

    // "Measure" a grid of deployments on it (in reality: run the MLCD
    // Profiler against your real cluster; see tests/calibration_pipeline.rs
    // for that exact flow).
    let mut samples = Vec::new();
    for t in [InstanceType::C5Xlarge, InstanceType::C54xlarge, InstanceType::P2Xlarge] {
        for n in [1u32, 4, 8, 16, 32] {
            if let Ok(speed) = your_cloud.throughput(&job, t, n) {
                samples.push(CalibrationSample { itype: t, n, speed });
            }
        }
    }
    println!("measured {} deployments of {}", samples.len(), job.model.name);

    let fitted = Calibrator::new(job.clone()).fit(&samples).expect("fit succeeds");
    println!(
        "fitted comm constants : incast {:.1} ms/peer (true 35.0), ring {:.2} ms/step (true 2.00)",
        fitted.model.comm.ps_incast_per_peer * 1e3,
        fitted.model.comm.ring_step_latency * 1e3,
    );
    println!("fit quality           : {:.1}% relative RMSE", fitted.rel_rmse * 100.0);

    // Now ask deployment questions on the *fitted* model.
    let runner = ExperimentRunner::new(1)
        .with_types(vec![InstanceType::C5Xlarge, InstanceType::C54xlarge, InstanceType::P2Xlarge])
        .with_truth(fitted.model);
    let opt = runner
        .optimum(&job, &Scenario::FastestWithBudget(Money::from_dollars(100.0)))
        .expect("a feasible optimum");
    println!(
        "\non your cloud, the $100-budget optimum is {} ({:.2} h training, {})",
        opt.deployment,
        opt.train_time.as_hours(),
        opt.train_cost
    );

    // Sanity: the default (uncalibrated) model would have mispredicted.
    let default_pred = ThroughputModel::default()
        .throughput(&job, opt.deployment.itype, opt.deployment.n)
        .unwrap();
    let true_speed = your_cloud.throughput(&job, opt.deployment.itype, opt.deployment.n).unwrap();
    let fitted_pred =
        fitted.model.throughput(&job, opt.deployment.itype, opt.deployment.n).unwrap();
    println!(
        "at that deployment: true {true_speed:.0} samples/s | fitted model {fitted_pred:.0} | uncalibrated {default_pred:.0}"
    );
    assert!((fitted_pred / true_speed - 1.0).abs() < (default_pred / true_speed - 1.0).abs());
}
