//! Composing a novel searcher from kernel policies.
//!
//! The search kernel is five swappable stages (init, pruning,
//! feasibility, acquisition, stop); HeterBO, ConvBO and CherryPick are
//! just named compositions of them. This example builds a variant none of
//! the paper's searchers use — a **UCB sweep**: type-sweep
//! initialisation, the concave scale-out prior, but an upper-confidence-
//! bound acquisition with no cost penalty — and runs it head-to-head
//! against HeterBO, tracing every decision it takes.
//!
//! ```text
//! cargo run --release --example custom_searcher
//! ```

use mlcd::acquisition::AcquisitionKind;
use mlcd::env::ProfilingEnv;
use mlcd::prelude::*;
use mlcd::search::kernel::SearchKernel;
use mlcd::search::policies::{
    ConcaveScaleOutPrior, ConvergenceStop, CostPenalisedAcquisition, TeiReserveGate, TypeSweepInit,
};

/// A custom searcher: UCB acquisition over a type-sweep init with the
/// concave scale-out prior, budget-guarded but cost-oblivious.
struct UcbSweep {
    seed: u64,
}

impl UcbSweep {
    /// A fresh kernel per search — pruners carry per-search state.
    fn kernel(&self) -> SearchKernel {
        SearchKernel::builder("UcbSweep")
            .seed(self.seed)
            .constraint_aware(true)
            .init(Box::new(TypeSweepInit { parallel: false }))
            .pruner(Box::new(ConcaveScaleOutPrior::new()))
            .gate(Box::new(TeiReserveGate {
                reserve_protection: true,
                constraint_aware: true,
                min_obs_before_stop: 6,
            }))
            .acquisition(Box::new(CostPenalisedAcquisition {
                kind: AcquisitionKind::UpperConfidenceBound { kappa: 2.0 },
                cost_penalty: false,
            }))
            .stop(Box::new(ConvergenceStop {
                ei_rel_threshold: 0.10,
                ci_stop: false,
                max_steps: 10,
                min_obs_before_stop: 6,
            }))
            .build()
    }
}

impl Searcher for UcbSweep {
    fn name(&self) -> &'static str {
        "UcbSweep"
    }

    fn search(&self, env: &mut dyn ProfilingEnv, scenario: &Scenario) -> SearchOutcome {
        self.search_traced(env, scenario, &mut NullSink)
    }

    fn search_traced(
        &self,
        env: &mut dyn ProfilingEnv,
        scenario: &Scenario,
        sink: &mut dyn TraceSink,
    ) -> SearchOutcome {
        self.kernel().run(env, scenario, sink)
    }
}

fn main() {
    let job = TrainingJob::resnet_cifar10();
    let scenario = Scenario::FastestWithBudget(Money::from_dollars(150.0));
    let seed = 7;
    let runner = ExperimentRunner::new(seed).with_types(vec![
        InstanceType::C5Xlarge,
        InstanceType::C54xlarge,
        InstanceType::C5n4xlarge,
        InstanceType::P2Xlarge,
    ]);

    println!("== {scenario} on {} ==\n", job.model.name);
    let (custom, trace) = runner.run_traced(&UcbSweep { seed }, &job, &scenario);
    let heterbo = runner.run(&HeterBo::seeded(seed), &job, &scenario);

    for outcome in [&custom, &heterbo] {
        println!(
            "{:<10} {:>2} probes, profiling ${:>6.2}, total {:>6.2} h, compliant: {}",
            outcome.searcher,
            outcome.search.n_probes(),
            outcome.search.profile_cost.dollars(),
            outcome.total_hours(),
            outcome.satisfied
        );
    }

    println!("\nUcbSweep's kernel trace ({} events):", trace.len());
    let mut shown = 0;
    for event in &trace.events {
        match event {
            TraceEvent::InitProbe { observation, .. } => {
                println!(
                    "  init probe  {:>16} → {:>7.1} samples/s",
                    observation.deployment.to_string(),
                    observation.speed
                );
            }
            TraceEvent::Probe { observation, .. } => {
                println!(
                    "  probe       {:>16} → {:>7.1} samples/s",
                    observation.deployment.to_string(),
                    observation.speed
                );
            }
            TraceEvent::IncumbentChanged { observation, utility } => {
                println!(
                    "  incumbent → {:>16} (utility {utility:.3})",
                    observation.deployment.to_string()
                );
            }
            TraceEvent::ScaleOutCapped { itype, cap } => {
                println!("  capped      {itype} at n={cap} (concave prior)");
            }
            TraceEvent::Stopped { reason } => {
                println!("  stopped: {reason:?}");
            }
            _ => {
                shown += 1; // scored / pruned / reserve events, summarised below
            }
        }
    }
    println!("  (+{shown} candidate scoring / pruning / reserve events)");
}
