//! Quickstart: "I have $100 and a ResNet to train on CIFAR-10 — find me
//! the best cloud deployment, fast."
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! This walks the whole MLCD pipeline exactly as a user would drive it:
//! describe the job, state the requirement, let HeterBO profile a handful
//! of deployments, then train on the winner and read the bill.

use mlcd::prelude::*;

fn main() {
    // 1. The training job: model, dataset, platform, sync topology.
    //    (Several presets exist; building a custom `TrainingJob` is just a
    //    struct literal — see mlcd_perfmodel::TrainingJob.)
    let job = TrainingJob::resnet_cifar10();
    println!(
        "job: {} on {} ({} epochs, global batch {}, {} via {})",
        job.model.name, job.dataset.name, job.epochs, job.global_batch, job.platform, job.topology
    );

    // 2. The user requirement → scenario, via the Scenario Analyzer.
    let analyzer = ScenarioAnalyzer;
    let scenario = analyzer
        .analyze(&mlcd::system::UserRequirements {
            deadline: None,
            budget: Some(Money::from_dollars(100.0)),
        })
        .expect("a single budget constraint is well-formed");
    println!("requirement: {scenario}");

    // 3. Run the experiment: HeterBO profiles deployments against the
    //    simulated EC2 substrate, then the chosen deployment trains for
    //    real (in virtual time).
    let runner = ExperimentRunner::new(42);
    let outcome = runner.run(&HeterBo::default(), &job, &scenario);

    // 4. What happened.
    println!("\nsearch trace:");
    for step in &outcome.search.steps {
        println!(
            "  probe {:>2}: {:>16} → {:>6.0} samples/s  ({}, {:.0} min)",
            step.index,
            step.observation.deployment.to_string(),
            step.observation.speed,
            step.observation.profile_cost,
            step.observation.profile_time.as_mins(),
        );
    }
    let plan = outcome.plan.expect("HeterBO found a deployment");
    println!("\nchosen deployment : {}", plan.deployment);
    println!(
        "profiling         : {:.2} h, {}",
        outcome.search.profile_time.as_hours(),
        outcome.search.profile_cost
    );
    println!("training          : {:.2} h, {}", outcome.train_time.as_hours(), outcome.train_cost);
    println!("total             : {:.2} h, {}", outcome.total_hours(), outcome.total_cost);
    println!("within budget     : {}", if outcome.satisfied { "yes" } else { "NO" });

    // 5. How good was it? Compare against the ground-truth optimum an
    //    oracle would have picked for free.
    if let Some(opt) = runner.optimum(&job, &scenario) {
        println!(
            "\noracle optimum    : {} ({:.2} h training, {})",
            opt.deployment,
            opt.train_time.as_hours(),
            opt.train_cost
        );
    }

    assert!(outcome.satisfied, "the quickstart should come in under budget");
}
