//! Head-to-head: every searcher in the crate on the same job and budget —
//! HeterBO, ConvBO, CherryPick, their budget-aware variants, random,
//! (strided) exhaustive, and the Paleo analytical baseline, against the
//! oracle optimum.
//!
//! ```text
//! cargo run --example compare_searchers --release
//! ```

use mlcd::prelude::*;
use mlcd::search::{CherryPick, ConvBo};

fn main() {
    let job = TrainingJob::char_rnn();
    let budget = Money::from_dollars(120.0);
    let scenario = Scenario::FastestWithBudget(budget);
    let types = vec![
        InstanceType::C5Xlarge,
        InstanceType::C54xlarge,
        InstanceType::C5n4xlarge,
        InstanceType::P2Xlarge,
        InstanceType::P32xlarge,
    ];
    let seed = 3;
    println!("job: {} | requirement: {scenario}\n", job.model.name);
    println!(
        "{:<11} {:>16} | {:>8} {:>9} | {:>8} {:>9} | {:>8} {:>9} | ok",
        "searcher", "pick", "prof(h)", "prof($)", "train(h)", "train($)", "total(h)", "total($)"
    );

    let runner = ExperimentRunner::new(seed).with_types(types.clone());
    let searchers: Vec<Box<dyn Searcher>> = vec![
        Box::new(HeterBo::seeded(seed)),
        Box::new(ConvBo::seeded(seed)),
        Box::new(ConvBo::budget_aware(seed)),
        Box::new(CherryPick::seeded(seed)),
        Box::new(CherryPick::budget_aware(seed, None)),
        Box::new(RandomSearch::new(9, seed)),
        Box::new(ExhaustiveSearch::strided(10)),
    ];
    for s in &searchers {
        let o = runner.run(s.as_ref(), &job, &scenario);
        print_row(&o);
    }
    // Paleo needs no profiling environment at all.
    print_row(&runner.run_paleo(&job, &scenario));

    if let Some(opt) = runner.optimum(&job, &scenario) {
        println!(
            "{:<11} {:>16} | {:>8} {:>9} | {:>8.2} {:>9.2} | {:>8.2} {:>9.2} | yes",
            "Opt",
            opt.deployment.to_string(),
            "-",
            "-",
            opt.train_time.as_hours(),
            opt.train_cost.dollars(),
            opt.train_time.as_hours(),
            opt.train_cost.dollars()
        );
    }
}

fn print_row(o: &ExperimentOutcome) {
    println!(
        "{:<11} {:>16} | {:>8.2} {:>9.2} | {:>8.2} {:>9.2} | {:>8.2} {:>9.2} | {}",
        o.searcher,
        o.plan.map(|p| p.deployment.to_string()).unwrap_or_else(|| "-".into()),
        o.search.profile_time.as_hours(),
        o.search.profile_cost.dollars(),
        o.train_time.as_hours(),
        o.train_cost.dollars(),
        o.total_hours(),
        o.total_cost.dollars(),
        if o.satisfied { "yes" } else { "NO" }
    );
}
