//! Extension walkthrough: probing on the spot market.
//!
//! ```text
//! cargo run --example spot_probing --release
//! ```
//!
//! Profiling probes are short and restartable — ideal spot-market
//! tenants (a revoked probe is simply retried on-demand). Two effects
//! show up:
//!
//! 1. With a *fixed* probe plan (random search probes the same points
//!    regardless of prices), the profiling bill drops to roughly the spot
//!    discount.
//! 2. With a *budget-aware* searcher (HeterBO), the protective reserve
//!    notices the cheaper probes and reinvests the savings into richer
//!    exploration — same spend, bigger clusters probed, often a better
//!    pick.

use mlcd::prelude::*;
use mlcd::system::ProfilerConfig;

fn main() {
    let job = TrainingJob::resnet_cifar10();
    let scenario = Scenario::FastestWithBudget(Money::from_dollars(150.0));
    let types = vec![
        InstanceType::C5Xlarge,
        InstanceType::C54xlarge,
        InstanceType::C5n4xlarge,
        InstanceType::P2Xlarge,
    ];
    let runner = |use_spot: bool| {
        ExperimentRunner::new(17)
            .with_types(types.clone())
            .with_profiler(ProfilerConfig { use_spot, ..Default::default() })
    };

    println!("job: {} | {scenario}\n", job.model.name);

    // Effect 1: identical probe plan, cheaper bill.
    println!("random search (identical 10-probe plan):");
    let mut rand_costs = Vec::new();
    for use_spot in [false, true] {
        let out = runner(use_spot).run(&RandomSearch::new(10, 17), &job, &scenario);
        println!(
            "  {:<10} profiling {:>8} over {:>5.2} h",
            if use_spot { "spot" } else { "on-demand" },
            out.search.profile_cost.to_string(),
            out.search.profile_time.as_hours()
        );
        rand_costs.push(out.search.profile_cost.dollars());
    }
    let saving = (1.0 - rand_costs[1] / rand_costs[0]) * 100.0;
    println!(
        "  → spot cut the identical profiling plan's bill by {saving:.0}%\n    \
         (below the raw ~68% discount because revoked big-cluster probes\n    \
         are retried on-demand and billed twice)\n"
    );
    assert!(saving > 15.0, "spot discount should be substantial, got {saving:.0}%");

    // Effect 2: HeterBO reinvests the savings.
    println!("HeterBO (budget-aware — reserve reinvests spot savings):");
    for use_spot in [false, true] {
        let out = runner(use_spot).run(&HeterBo::seeded(17), &job, &scenario);
        let biggest =
            out.search.steps.iter().map(|s| s.observation.deployment.n).max().unwrap_or(0);
        println!(
            "  {:<10} probes {:>2} (largest cluster {:>3} nodes) | profiling {:>8} | pick {:>16} | total {:>8}",
            if use_spot { "spot" } else { "on-demand" },
            out.search.n_probes(),
            biggest,
            out.search.profile_cost.to_string(),
            out.plan.map(|p| p.deployment.to_string()).unwrap_or_default(),
            out.total_cost.to_string()
        );
        assert!(out.satisfied, "both runs must respect the budget");
    }
    // Effect 3: batch probing composes with spot. The parallel type-sweep
    // launches every init cluster on the spot market at once; members the
    // market revokes mid-probe are retried on-demand in a second wave, and
    // every observation is billed from the cloud ledger (spot discounts,
    // billing minimums and the revoked first attempts all land in the
    // profiling bill).
    println!("\nHeterBO with parallel init (whole type sweep probed at once, on spot):");
    for use_spot in [false, true] {
        let out = runner(use_spot).run(&HeterBo::with_parallel_init(17), &job, &scenario);
        println!(
            "  {:<10} probes {:>2} | profiling {:>8} over {:>5.2} h | pick {:>16} | total {:>8}",
            if use_spot { "spot" } else { "on-demand" },
            out.search.n_probes(),
            out.search.profile_cost.to_string(),
            out.search.profile_time.as_hours(),
            out.plan.map(|p| p.deployment.to_string()).unwrap_or_default(),
            out.total_cost.to_string()
        );
        assert!(out.satisfied, "both runs must respect the budget");
    }

    println!(
        "\nThe training run itself stays on-demand — you don't gamble the long job\n\
         on the spot market, only the ten-minute probes."
    );
}
