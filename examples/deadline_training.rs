//! Scenario-2 walkthrough: train BERT before a deadline, as cheaply as
//! possible — and watch the protective mechanism refuse to over-explore.
//!
//! ```text
//! cargo run --example deadline_training --release
//! ```
//!
//! A 340 M-parameter model makes every profiling probe expensive (big
//! clusters, long state-distribution warm-up), so the tension the paper
//! describes is sharp here: every extra probe eats the very deadline the
//! training run must fit into.

use mlcd::prelude::*;
use mlcd::search::ConvBo;

fn main() {
    let job = TrainingJob::bert_tensorflow();
    let deadline = SimDuration::from_hours(24.0);
    let scenario = Scenario::CheapestWithDeadline(deadline);
    println!("job: {} ({} sequences)", job.model.name, job.total_samples());
    println!("requirement: {scenario}\n");

    let types = vec![
        InstanceType::C5nXlarge,
        InstanceType::C5n4xlarge,
        InstanceType::P2Xlarge,
        InstanceType::P32xlarge,
    ];

    for searcher_run in [true, false] {
        let runner = ExperimentRunner::new(7).with_types(types.clone()).with_max_nodes(32);
        let outcome = if searcher_run {
            runner.run(&HeterBo::seeded(7), &job, &scenario)
        } else {
            runner.run(&ConvBo::seeded(7), &job, &scenario)
        };
        println!(
            "{:<8} probes {:>2} | profiling {:>5.2} h {:>9} | training {:>5.2} h {:>9} | total {:>5.2} h — {}",
            outcome.searcher,
            outcome.search.n_probes(),
            outcome.search.profile_time.as_hours(),
            outcome.search.profile_cost.to_string(),
            outcome.train_time.as_hours(),
            outcome.train_cost.to_string(),
            outcome.total_hours(),
            if outcome.satisfied { "made the deadline" } else { "MISSED the deadline" }
        );
        println!("         stopped because: {:?}", outcome.search.stop_reason);
    }

    println!(
        "\nHeterBO reserves enough of the deadline to finish training on its incumbent\n\
         before every probe (the paper's 'protective mechanism'); ConvBO profiles\n\
         obliviously and pays for it at the end."
    );
}
