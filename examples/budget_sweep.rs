//! Scenario-3 sensitivity: how the chosen deployment shifts as the budget
//! grows (a miniature of the paper's Fig 18 sweep).
//!
//! ```text
//! cargo run --example budget_sweep --release
//! ```
//!
//! With $60 HeterBO must settle for a small cheap cluster; with $220 it can
//! afford to both explore more and commit to a bigger, faster deployment —
//! while never violating the cap.

use mlcd::prelude::*;

fn main() {
    let job = TrainingJob::resnet_cifar10();
    let types = vec![
        InstanceType::C5Xlarge,
        InstanceType::C54xlarge,
        InstanceType::C5n4xlarge,
        InstanceType::P2Xlarge,
    ];

    println!(
        "{:>8} | {:>16} | {:>9} | {:>9} | {:>9} | ok",
        "budget", "pick", "train(h)", "total($)", "total(h)"
    );
    for budget in [60.0, 100.0, 140.0, 180.0, 220.0] {
        let scenario = Scenario::FastestWithBudget(Money::from_dollars(budget));
        let runner = ExperimentRunner::new(11).with_types(types.clone());
        let outcome = runner.run(&HeterBo::seeded(11), &job, &scenario);
        println!(
            "{:>8} | {:>16} | {:>9.2} | {:>9.2} | {:>9.2} | {}",
            format!("${budget:.0}"),
            outcome.plan.map(|p| p.deployment.to_string()).unwrap_or_else(|| "-".into()),
            outcome.train_time.as_hours(),
            outcome.total_cost.dollars(),
            outcome.total_hours(),
            if outcome.satisfied { "yes" } else { "NO" }
        );
        assert!(
            outcome.satisfied || outcome.plan.is_none(),
            "HeterBO must never knowingly blow the budget"
        );
    }

    println!("\nBigger budgets buy faster deployments; the cap is never violated.");
}
