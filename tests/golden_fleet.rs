//! Golden fleet-outcome snapshots: pinned (policy × seed) cells of the
//! contended preset must reproduce their recorded [`FleetOutcome`]
//! digest **bit for bit** — per-job completion instants, queue waits,
//! inlined search digests and fleet aggregates, every f64 as its raw
//! IEEE-754 bit pattern.
//!
//! The fleet runs tenants on real threads, so this is the test that
//! pins the strict-handoff protocol: any scheduling race, any
//! driver-order dependence, any RNG-draw reordering on the shared
//! provider shows up here as a diff.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! MLCD_UPDATE_GOLDEN=1 cargo test --test golden_fleet
//! ```

use mlcd_fleet::{policy_by_name, FleetScenario, FleetSim};
use std::fmt::Write as _;
use std::path::PathBuf;

const GOLDEN_PATH: &str = "tests/golden/fleet_outcomes.txt";

/// Pinned cells: the two interesting policies (fifo is the baseline the
/// bench quotes; fairshare exercises denial + cost-cooling) × two seeds
/// on the mildly contended preset. Level 1 keeps the pinned set cheap
/// enough for tier-1 while still queueing requests at the scheduler.
const CELLS: [(&str, u64); 4] =
    [("fifo", 7), ("fifo", 2020), ("fairshare", 7), ("fairshare", 2020)];

fn render_all() -> String {
    let mut out = String::new();
    for (policy, seed) in CELLS {
        let scenario = FleetScenario::contended(1, seed);
        let outcome = FleetSim::new(scenario, policy_by_name(policy).expect("known policy")).run();
        writeln!(out, "=== {policy} / seed {seed} ===").unwrap();
        out.push_str(&outcome.digest());
    }
    out
}

fn golden_file() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH)
}

#[test]
fn golden_fleet_outcomes_are_bit_identical() {
    let actual = render_all();
    let path = golden_file();
    if std::env::var("MLCD_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("golden snapshots rewritten at {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with MLCD_UPDATE_GOLDEN=1 to capture",
            path.display()
        )
    });
    if expected != actual {
        let mismatch = expected
            .lines()
            .zip(actual.lines())
            .enumerate()
            .find(|(_, (e, a))| e != a)
            .map(|(i, (e, a))| {
                format!("first diff at line {}:\n  golden: {e}\n  actual: {a}", i + 1)
            })
            .unwrap_or_else(|| "one output is a prefix of the other".to_string());
        panic!(
            "fleet outcomes diverged from the golden snapshots \
             (the strict-handoff fleet must be bit-deterministic)\n{mismatch}"
        );
    }
}

/// Two back-to-back runs of the same cell are bit-identical — the live
/// counterpart of the pinned snapshot, catching nondeterminism that
/// happens to differ from the recorded capture too.
#[test]
fn fleet_runs_are_bit_identical_across_runs() {
    let digest = || {
        let scenario = FleetScenario::contended(1, 2020);
        FleetSim::new(scenario, policy_by_name("deadline").expect("known policy")).run().digest()
    };
    assert_eq!(digest(), digest());
}
