//! Integration: calibrate the performance model from real Profiler
//! observations, then verify the fitted model explains the cloud's
//! behaviour — the workflow a user follows to point MLCD at their own
//! infrastructure.

use mlcd::deployment::{Deployment, SearchSpace};
use mlcd::env::ProfilingEnv;
use mlcd::prelude::*;
use mlcd::system::{Profiler, ProfilerConfig, SimMlPlatform};
use mlcd_cloudsim::SimCloud;
use mlcd_perfmodel::{CalibrationSample, Calibrator, CommModel, NoiseModel};

/// A "foreign cloud" whose comm constants differ from our defaults.
fn foreign_truth() -> ThroughputModel {
    ThroughputModel { comm: CommModel { ps_incast_per_peer: 35e-3, ring_step_latency: 2.5e-3 } }
}

#[test]
fn calibrate_from_profiler_observations() {
    let job = TrainingJob::resnet_cifar10();
    let truth = foreign_truth();
    let types = [InstanceType::C5Xlarge, InstanceType::C54xlarge, InstanceType::P2Xlarge];
    let space = SearchSpace::new(&types, 50, &job, &truth);

    // Measure a grid through the actual Profiler (with realistic noise).
    let cloud = SimCloud::new(51);
    let platform = SimMlPlatform::new(job.clone(), truth, NoiseModel::default(), 52);
    let mut profiler = Profiler::new(cloud, platform, space, ProfilerConfig::default());
    let mut samples = Vec::new();
    for t in types {
        for n in [1u32, 4, 8, 16, 32] {
            let obs = profiler.profile(&Deployment::new(t, n)).expect("probe runs");
            samples.push(CalibrationSample { itype: t, n, speed: obs.speed });
        }
    }

    // Fit and check the fit explains the measurements.
    let fitted = Calibrator::new(job.clone()).fit(&samples).expect("calibration succeeds");
    assert!(fitted.rel_rmse < 0.10, "poor fit: rel RMSE {}", fitted.rel_rmse);

    // The fitted constants should be far closer to the foreign cloud's
    // than the library defaults are.
    let got = fitted.model.comm.ps_incast_per_peer;
    let want = truth.comm.ps_incast_per_peer;
    let default = CommModel::default().ps_incast_per_peer;
    assert!(
        (got / want).ln().abs() < (default / want).ln().abs(),
        "fit {got} is no closer to {want} than the default {default}"
    );

    // Held-out prediction: a point the calibration never saw.
    let held_speed = truth.throughput(&job, InstanceType::C54xlarge, 24).unwrap();
    let pred = fitted.model.throughput(&job, InstanceType::C54xlarge, 24).unwrap();
    assert!(
        (pred / held_speed - 1.0).abs() < 0.10,
        "held-out: predicted {pred:.1} vs true {held_speed:.1}"
    );
}

#[test]
fn searching_on_a_calibrated_world_stays_compliant() {
    // End-to-end what-if: the world runs foreign physics; the runner is
    // told so; HeterBO's guarantees must hold there too.
    let job = TrainingJob::resnet_cifar10();
    let truth = foreign_truth();
    let budget = Money::from_dollars(120.0);
    let runner = ExperimentRunner::new(9)
        .with_types(vec![InstanceType::C5Xlarge, InstanceType::C54xlarge, InstanceType::C5n4xlarge])
        .with_truth(truth);
    let out = runner.run(&HeterBo::seeded(9), &job, &Scenario::FastestWithBudget(budget));
    assert!(out.plan.is_some());
    assert!(
        out.total_cost.dollars() <= budget.dollars() * 1.01,
        "blew the budget on the foreign cloud: {}",
        out.total_cost
    );
}
