//! Golden event-stream snapshots for the cloudsim discrete-event engine.
//!
//! Each pinned scenario drives `SimCloud` with event recording on and
//! renders the dispatched event stream — every timestamp and payload f64
//! as its IEEE-754 bit pattern in hex — plus the final billing ledger.
//! Any change to event ordering, tie-breaking, payloads or settlement
//! arithmetic shows up here as a diff, down to the last ulp.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! MLCD_UPDATE_GOLDEN=1 cargo test --test golden_cloudsim
//! ```

use mlcd_cloudsim::catalog::InstanceType;
use mlcd_cloudsim::cluster::ProvisioningModel;
use mlcd_cloudsim::provider::{CloudError, SimCloud};
use mlcd_cloudsim::sim::{EventRecord, SimEvent};
use mlcd_cloudsim::time::{SimDuration, SimTime};
use std::fmt::Write as _;
use std::path::PathBuf;

const GOLDEN_PATH: &str = "tests/golden/cloudsim_events.txt";

const SEEDS: [u64; 2] = [7, 21];

/// Hex bit pattern of an f64 — the ulp-exact rendering the digest pins.
fn hx(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Render one dispatched event, payload floats as bit patterns.
fn render_event(rec: &EventRecord) -> String {
    let body = match &rec.event {
        SimEvent::ProvisioningDone { cluster } => format!("provisioning_done {cluster}"),
        SimEvent::WarmupDone { cluster } => format!("warmup_done {cluster}"),
        SimEvent::SpotRevoked { cluster } => format!("spot_revoked {cluster}"),
        SimEvent::SpotPriceChanged { itype, hourly_usd } => {
            format!("spot_price_changed {itype} rate={}", hx(*hourly_usd))
        }
        SimEvent::CapacityChanged { itype, available } => {
            format!("capacity_changed {itype} available={available}")
        }
        SimEvent::ClusterTerminated { cluster, itype, n, start, end, hourly_usd, cause } => {
            format!(
                "cluster_terminated {cluster} {n}x{itype} start={} end={} rate={} cause={cause:?}",
                hx(start.as_secs()),
                hx(end.as_secs()),
                hourly_usd.map(hx).unwrap_or_else(|| "ondemand".into()),
            )
        }
        SimEvent::MetricTick { period } => format!("metric_tick period={}", hx(period.as_secs())),
        SimEvent::JobArrived { job } => format!("job_arrived job={job}"),
        SimEvent::ProbeGranted { job, waited } => {
            format!("probe_granted job={job} waited={}", hx(waited.as_secs()))
        }
        SimEvent::ProbeDenied { job } => format!("probe_denied job={job}"),
        SimEvent::JobCompleted { job, missed } => {
            format!("job_completed job={job} missed={missed}")
        }
    };
    format!("t={} seq={} {body}", hx(rec.at.as_secs()), rec.seq)
}

/// Render a finished scenario: its event stream and its billing ledger.
fn render_cloud(cloud: &SimCloud) -> String {
    let mut out = String::new();
    for rec in cloud.take_event_log() {
        writeln!(out, "{}", render_event(&rec)).unwrap();
    }
    for r in cloud.billing().records() {
        writeln!(
            out,
            "bill {} {}x{} span=[{},{}] cost={}",
            r.cluster,
            r.n,
            r.itype,
            hx(r.start.as_secs()),
            hx(r.end.as_secs()),
            hx(r.cost().dollars()),
        )
        .unwrap();
    }
    writeln!(out, "total={}", hx(cloud.billing().total_cost().dollars())).unwrap();
    out
}

/// An on-demand fleet: three clusters launched together, run staggered,
/// settled retroactively — the profiler's batch-wave shape.
fn ondemand_fleet(seed: u64) -> SimCloud {
    let cloud = SimCloud::new(seed);
    cloud.record_events(true);
    let a = cloud.launch(InstanceType::C5Xlarge, 4).unwrap();
    let b = cloud.launch(InstanceType::C5n4xlarge, 2).unwrap();
    let c = cloud.launch(InstanceType::P2Xlarge, 1).unwrap();
    cloud.wait_until_running(&a);
    cloud.wait_until_running(&b);
    cloud.wait_until_running(&c);
    let t0 = cloud.now();
    cloud.run_until(t0 + SimDuration::from_mins(45.0));
    cloud.terminate_at(&a, t0 + SimDuration::from_mins(15.0));
    cloud.terminate_at(&b, t0 + SimDuration::from_mins(30.0));
    cloud.terminate_at(&c, t0 + SimDuration::from_mins(45.0));
    cloud
}

/// A revocation-heavy spot scenario: big spot clusters held for a long
/// horizon, revocations delivered as queued events.
fn spot_churn(seed: u64) -> SimCloud {
    let cloud = SimCloud::new(seed);
    cloud.record_events(true);
    let mut handles = Vec::new();
    for n in [32, 16, 8] {
        handles.push(cloud.launch_spot(InstanceType::C5Xlarge, n).unwrap());
    }
    cloud.run_until(SimTime::from_secs(0.0) + SimDuration::from_hours(24.0));
    for h in &handles {
        cloud.terminate(h); // survivors settle; revoked ones are no-ops
    }
    cloud
}

/// Two tenants sharing one capped capacity pool and one clock: the second
/// tenant's big ask bounces until the first terminates.
fn multi_tenant(seed: u64) -> SimCloud {
    let cloud =
        SimCloud::with_provisioning(seed, ProvisioningModel { jitter: 0.1, ..Default::default() });
    cloud.record_events(true);
    cloud.set_capacity(InstanceType::C54xlarge, 12);
    let job_a = cloud.clone();
    let job_b = cloud.clone();
    let a = job_a.launch(InstanceType::C54xlarge, 9).unwrap();
    let denied = job_b.launch(InstanceType::C54xlarge, 6);
    assert!(matches!(denied, Err(CloudError::CapacityExhausted { available: 3, .. })));
    let b_small = job_b.launch(InstanceType::C54xlarge, 3).unwrap();
    job_a.wait_until_running(&a);
    job_b.wait_until_running(&b_small);
    let t0 = cloud.now();
    cloud.run_until(t0 + SimDuration::from_mins(20.0));
    job_a.terminate(&a);
    let b_big = job_b.launch(InstanceType::C54xlarge, 6).unwrap();
    job_b.wait_until_running(&b_big);
    cloud.run_until(cloud.now() + SimDuration::from_mins(10.0));
    job_b.terminate(&b_small);
    job_b.terminate(&b_big);
    cloud
}

/// A named scenario builder: seed in, fully-driven cloud out.
type ScenarioFn = fn(u64) -> SimCloud;

fn render_all() -> String {
    let scenarios: [(&str, ScenarioFn); 3] = [
        ("ondemand_fleet", ondemand_fleet),
        ("spot_churn", spot_churn),
        ("multi_tenant", multi_tenant),
    ];
    let mut out = String::new();
    for (name, build) in scenarios {
        for seed in SEEDS {
            writeln!(out, "=== {name} / seed {seed} ===").unwrap();
            out.push_str(&render_cloud(&build(seed)));
        }
    }
    out
}

fn golden_file() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH)
}

#[test]
fn golden_cloudsim_event_streams_are_bit_identical() {
    let actual = render_all();
    let path = golden_file();
    if std::env::var("MLCD_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("golden snapshots rewritten at {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with MLCD_UPDATE_GOLDEN=1 to capture",
            path.display()
        )
    });
    if expected != actual {
        let mismatch = expected
            .lines()
            .zip(actual.lines())
            .enumerate()
            .find(|(_, (e, a))| e != a)
            .map(|(i, (e, a))| {
                format!("first diff at line {}:\n  golden: {e}\n  actual: {a}", i + 1)
            })
            .unwrap_or_else(|| "one output is a prefix of the other".to_string());
        panic!(
            "cloudsim event streams diverged from the golden snapshots \
             (the event engine must stay bit-deterministic)\n{mismatch}"
        );
    }
}
