//! Cross-crate property tests: the paper's guarantees and the substrate's
//! invariants under randomly drawn scenarios, jobs and seeds.
//!
//! These are deliberately few-case (searches are not free) but each case
//! runs the full pipeline.

use mlcd::prelude::*;
use proptest::prelude::*;

fn types() -> Vec<InstanceType> {
    vec![InstanceType::C5Xlarge, InstanceType::C54xlarge, InstanceType::P2Xlarge]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// HeterBO's budget guarantee holds for arbitrary budgets and seeds.
    #[test]
    fn heterbo_never_busts_a_random_budget(budget in 60.0f64..250.0, seed in 0u64..1000) {
        let job = TrainingJob::resnet_cifar10();
        let scenario = Scenario::FastestWithBudget(Money::from_dollars(budget));
        let runner = ExperimentRunner::new(seed).with_types(types());
        let out = runner.run(&HeterBo::seeded(seed), &job, &scenario);
        prop_assert!(
            out.total_cost.dollars() <= budget * 1.01,
            "budget ${budget:.0}, seed {seed}: spent {}",
            out.total_cost
        );
    }

    /// Totals always decompose exactly into profiling + training.
    #[test]
    fn outcome_breakdown_always_adds_up(seed in 0u64..1000, k in 2usize..8) {
        let job = TrainingJob::char_rnn();
        let runner = ExperimentRunner::new(seed).with_types(types());
        let out = runner.run(&RandomSearch::new(k, seed), &job, &Scenario::FastestUnlimited);
        prop_assert!((out.total_cost.dollars()
            - out.search.profile_cost.dollars() - out.train_cost.dollars()).abs() < 1e-9);
        prop_assert!((out.total_time.as_secs()
            - out.search.profile_time.as_secs() - out.train_time.as_secs()).abs() < 1e-6);
        // Cumulative trace totals equal the outcome totals.
        if let Some(last) = out.search.steps.last() {
            prop_assert!((last.cum_profile_cost.dollars() - out.search.profile_cost.dollars()).abs() < 1e-9);
        }
    }

    /// The oracle optimum truly dominates every candidate under its scenario.
    #[test]
    fn optimum_dominates_space(seed in 0u64..100, budget in 60.0f64..300.0) {
        let job = TrainingJob::resnet_cifar10();
        let scenario = Scenario::FastestWithBudget(Money::from_dollars(budget));
        let runner = ExperimentRunner::new(seed).with_types(types());
        let Some(opt) = runner.optimum(&job, &scenario) else { return Ok(()) };
        let truth = ThroughputModel::default();
        for d in runner.space(&job).candidates() {
            if let Ok(speed) = truth.throughput(&job, d.itype, d.n) {
                let t = Scenario::training_time(job.total_samples(), speed);
                let c = d.cost_for(t);
                if c.dollars() <= budget {
                    prop_assert!(speed <= opt.speed + 1e-9,
                        "{d} at {speed:.1} beats 'optimum' {:.1}", opt.speed);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// The ground-truth model is deterministic and positive over the whole
    /// catalog, and feasibility agrees with throughput availability.
    #[test]
    fn truth_model_total_function(n in 1u32..=50) {
        let truth = ThroughputModel::default();
        for job in [TrainingJob::resnet_cifar10(), TrainingJob::bert_tensorflow()] {
            for t in InstanceType::all() {
                match truth.feasible(&job, t, n) {
                    Ok(()) => {
                        let s = truth.throughput(&job, t, n).unwrap();
                        prop_assert!(s.is_finite() && s > 0.0, "{t} n={n}");
                    }
                    Err(_) => {
                        prop_assert!(truth.throughput(&job, t, n).is_err());
                    }
                }
            }
        }
    }

    /// Billing is additive: splitting a run into two clusters costs at
    /// least as much as one (60-second minimums can only add).
    #[test]
    fn billing_is_superadditive_under_split(mins in 2.0f64..600.0) {
        use mlcd_cloudsim::billing::quote;
        let whole = quote(InstanceType::C54xlarge, 4, SimDuration::from_mins(mins));
        let half = quote(InstanceType::C54xlarge, 4, SimDuration::from_mins(mins / 2.0));
        prop_assert!(half.dollars() * 2.0 >= whole.dollars() - 1e-9);
    }
}
