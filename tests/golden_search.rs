//! Golden `SearchOutcome` snapshots: every searcher × scenario × seed in
//! the pinned set must reproduce its recorded outcome **bit for bit** —
//! deployments, speeds, costs and stop reasons, down to the last f64 bit.
//!
//! These snapshots were captured before the search kernel was split into
//! policy stages and pin the refactor: any change to probe order, scoring,
//! pruning, feasibility gating or stopping shows up here as a diff.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! MLCD_UPDATE_GOLDEN=1 cargo test --test golden_search
//! ```

use mlcd::prelude::*;
use mlcd::search::{CherryPick, ConvBo};
use std::fmt::Write as _;
use std::path::PathBuf;

const GOLDEN_PATH: &str = "tests/golden/search_outcomes.txt";

const SEEDS: [u64; 3] = [1, 2, 3];

fn scenarios() -> Vec<(&'static str, Scenario)> {
    vec![
        ("unconstrained", Scenario::FastestUnlimited),
        ("deadline-12h", Scenario::CheapestWithDeadline(SimDuration::from_hours(12.0))),
        ("budget-150", Scenario::FastestWithBudget(Money::from_dollars(150.0))),
    ]
}

fn searchers(seed: u64) -> Vec<(&'static str, Box<dyn Searcher>)> {
    vec![
        ("HeterBO", Box::new(HeterBo::seeded(seed))),
        ("ConvBO", Box::new(ConvBo::seeded(seed))),
        ("CherryPick", Box::new(CherryPick::seeded(seed))),
    ]
}

/// The paper's standard 4-type space (as the end-to-end tests use), with
/// the default (noisy) observation model — exercising the full profiling
/// stack, not a sanitised synthetic surface.
fn runner(seed: u64) -> ExperimentRunner {
    ExperimentRunner::new(seed).with_types(vec![
        InstanceType::C5Xlarge,
        InstanceType::C54xlarge,
        InstanceType::C5n4xlarge,
        InstanceType::P2Xlarge,
    ])
}

/// Render the whole pinned set as one text blob, cell by cell. The
/// per-cell digest is the canonical [`SearchOutcome::digest`] — the same
/// rendering the service layer's crash-resume tests compare against.
fn render_all() -> String {
    let mut out = String::new();
    for (scenario_name, scenario) in scenarios() {
        for seed in SEEDS {
            for (searcher_name, searcher) in searchers(seed) {
                let outcome =
                    runner(seed).run(searcher.as_ref(), &TrainingJob::resnet_cifar10(), &scenario);
                writeln!(out, "=== {searcher_name} / {scenario_name} / seed {seed} ===").unwrap();
                out.push_str(&outcome.search.digest());
            }
        }
    }
    out
}

fn golden_file() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH)
}

#[test]
fn golden_search_outcomes_are_bit_identical() {
    let actual = render_all();
    let path = golden_file();
    if std::env::var("MLCD_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("golden snapshots rewritten at {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with MLCD_UPDATE_GOLDEN=1 to capture",
            path.display()
        )
    });
    if expected != actual {
        // Point at the first diverging line so the failure is actionable.
        let mismatch = expected
            .lines()
            .zip(actual.lines())
            .enumerate()
            .find(|(_, (e, a))| e != a)
            .map(|(i, (e, a))| {
                format!("first diff at line {}:\n  golden: {e}\n  actual: {a}", i + 1)
            })
            .unwrap_or_else(|| "one output is a prefix of the other".to_string());
        panic!(
            "search outcomes diverged from the golden snapshots \
             (behaviour-pinned refactors must be bit-identical)\n{mismatch}"
        );
    }
}
