//! Serde round-trip properties for the wire-facing core types.
//!
//! The service layer's journal and protocol both assume that
//! `serde_json::to_string` → `from_str` is the identity on
//! `SearchOutcome` and `Scenario` *at the bit level*: crash-resume
//! verifies re-emitted events against journaled lines by string
//! equality, which is only sound if rendering a finite `f64` loses
//! nothing. These properties pin that contract.
//!
//! NaN-free invariant: the vendored serde_json renders non-finite
//! floats as `null` (they are unrepresentable in JSON), so every f64
//! that can reach a journal or the wire must be finite. The generators
//! below therefore draw only finite values — which is exactly the
//! domain the simulator produces (speeds, durations and dollars are
//! all finite by construction) — and a dedicated test documents what
//! happens if a NaN ever *did* sneak in (it fails loudly at
//! deserialize, rather than corrupting state silently).

use mlcd::prelude::*;
use proptest::prelude::*;

/// Widen a unit-ish float into the interesting corners of the finite
/// f64 space: integral values (exercise the `{:.1}` rendering path),
/// huge magnitudes ≥ 1e15 (digit-string path), tiny subnormal-adjacent
/// magnitudes, negative zero, and plain fractional values (shortest
/// round-trip path).
fn corner(sel: u8, x: f64) -> f64 {
    match sel % 7 {
        0 => x,                  // plain fractional
        1 => x.trunc(),          // integral, rendered as "N.0"
        2 => (x * 1e18).trunc(), // integral ≥ 1e15, rendered as digits
        3 => x * 1e-290,         // near the subnormal boundary
        4 => -0.0,               // sign-of-zero preservation
        5 => x * 1e300,          // huge but finite
        _ => x.recip(),          // 1/x, scattered exponents
    }
}

fn instance(sel: usize) -> InstanceType {
    let all: Vec<InstanceType> = InstanceType::all().collect();
    all[sel % all.len()]
}

fn stop_reason(sel: u8) -> StopReason {
    match sel % 5 {
        0 => StopReason::Converged,
        1 => StopReason::ReserveProtection,
        2 => StopReason::SpaceExhausted,
        3 => StopReason::MaxSteps,
        _ => StopReason::NothingFeasible,
    }
}

fn observation(sel: usize, n: u32, speed: f64, t: f64, c: f64) -> Observation {
    Observation {
        deployment: Deployment::new(instance(sel), n),
        speed,
        profile_time: SimDuration::from_secs(t.abs()),
        profile_cost: Money::from_dollars(c.abs()),
    }
}

/// Field-by-field bit equality for every f64 an outcome carries.
/// `PartialEq` alone would pass `-0.0 == 0.0`; the journal's string
/// comparison would not, so the test must hold the stronger line.
fn assert_bits_eq(a: &SearchOutcome, b: &SearchOutcome) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.steps.len(), b.steps.len());
    prop_assert_eq!(a.stop_reason, b.stop_reason);
    prop_assert_eq!(a.profile_time.as_secs().to_bits(), b.profile_time.as_secs().to_bits());
    prop_assert_eq!(a.profile_cost.dollars().to_bits(), b.profile_cost.dollars().to_bits());
    prop_assert_eq!(a.best.is_some(), b.best.is_some());
    if let (Some(x), Some(y)) = (&a.best, &b.best) {
        prop_assert_eq!(x.deployment, y.deployment);
        prop_assert_eq!(x.speed.to_bits(), y.speed.to_bits());
        prop_assert_eq!(x.profile_time.as_secs().to_bits(), y.profile_time.as_secs().to_bits());
        prop_assert_eq!(x.profile_cost.dollars().to_bits(), y.profile_cost.dollars().to_bits());
    }
    for (sa, sb) in a.steps.iter().zip(&b.steps) {
        prop_assert_eq!(sa.index, sb.index);
        prop_assert_eq!(sa.observation.deployment, sb.observation.deployment);
        prop_assert_eq!(sa.observation.speed.to_bits(), sb.observation.speed.to_bits());
        prop_assert_eq!(
            sa.cum_profile_time.as_secs().to_bits(),
            sb.cum_profile_time.as_secs().to_bits()
        );
        prop_assert_eq!(
            sa.cum_profile_cost.dollars().to_bits(),
            sb.cum_profile_cost.dollars().to_bits()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// `SearchOutcome` survives a JSON round-trip bit-for-bit, across
    /// every float-rendering path the vendored serde_json has.
    #[test]
    fn search_outcome_roundtrips_bit_exact(
        sels in proptest::collection::vec((0u8..7, 0usize..40, 1u32..64), 0..6),
        floats in proptest::collection::vec(0.001f64..1.0, 24),
        stop_sel in 0u8..5,
        has_best in 0u8..2,
    ) {
        let mut f = floats.iter().cycle().copied();
        let mut fsel = sels.iter().map(|(s, _, _)| *s).cycle();
        let mut draw = |bias: u8| corner(fsel.next().unwrap_or(0).wrapping_add(bias),
                                         f.next().unwrap());
        let steps: Vec<SearchStep> = sels
            .iter()
            .enumerate()
            .map(|(i, &(s, isel, n))| SearchStep {
                index: i + 1,
                observation: observation(isel, n, draw(s), draw(s + 1), draw(s + 2)),
                cum_profile_time: SimDuration::from_secs(draw(s + 3).abs()),
                cum_profile_cost: Money::from_dollars(draw(s + 4).abs()),
            })
            .collect();
        let best = (has_best == 1 && !steps.is_empty())
            .then(|| steps[steps.len() / 2].observation);
        let outcome = SearchOutcome {
            best,
            steps,
            profile_time: SimDuration::from_secs(draw(5).abs()),
            profile_cost: Money::from_dollars(draw(6).abs()),
            stop_reason: stop_reason(stop_sel),
        };

        let text = serde_json::to_string(&outcome).expect("serialize");
        let back: SearchOutcome = serde_json::from_str(&text).expect("deserialize");
        assert_bits_eq(&outcome, &back)?;
        // The canonical digest — the crash-resume currency — agrees too.
        prop_assert_eq!(outcome.digest(), back.digest());
        // And re-serializing is a fixed point (string-stable), which is
        // what lets the journal verify by line comparison.
        prop_assert_eq!(serde_json::to_string(&back).expect("re-serialize"), text);
    }

    /// All three `Scenario` variants round-trip with their constraint
    /// values bit-preserved.
    #[test]
    fn scenario_roundtrips_bit_exact(sel in 0u8..3, csel in 0u8..7, x in 0.001f64..1.0) {
        let v = corner(csel, x).abs();
        let scenario = match sel {
            0 => Scenario::FastestUnlimited,
            1 => Scenario::CheapestWithDeadline(SimDuration::from_secs(v)),
            _ => Scenario::FastestWithBudget(Money::from_dollars(v)),
        };
        let text = serde_json::to_string(&scenario).expect("serialize");
        let back: Scenario = serde_json::from_str(&text).expect("deserialize");
        prop_assert_eq!(scenario, back);
        match (scenario, back) {
            (Scenario::CheapestWithDeadline(a), Scenario::CheapestWithDeadline(b)) => {
                prop_assert_eq!(a.as_secs().to_bits(), b.as_secs().to_bits());
            }
            (Scenario::FastestWithBudget(a), Scenario::FastestWithBudget(b)) => {
                prop_assert_eq!(a.dollars().to_bits(), b.dollars().to_bits());
            }
            _ => {}
        }
        prop_assert_eq!(serde_json::to_string(&back).expect("re-serialize"), text);
    }
}

/// The NaN-free invariant is load-bearing: a non-finite float renders
/// as `null`, which then *fails* to deserialize as an f64 — the system
/// rejects the value instead of silently laundering NaN into 0.0 or a
/// journal mismatch. This is the failure mode we want: loud, at the
/// boundary.
#[test]
fn non_finite_floats_fail_loudly_not_silently() {
    let outcome = SearchOutcome {
        best: None,
        steps: Vec::new(),
        profile_time: SimDuration::from_secs(0.0),
        profile_cost: Money::ZERO,
        stop_reason: StopReason::NothingFeasible,
    };
    let text = serde_json::to_string(&outcome).expect("serialize");
    // Splice a NaN in by hand: rendering turns it into null …
    let nan_text = text.replace("\"profile_time\":0.0", "\"profile_time\":null");
    assert_ne!(text, nan_text, "test fixture must actually splice");
    // … and deserialization refuses it rather than inventing a number.
    assert!(serde_json::from_str::<SearchOutcome>(&nan_text).is_err());
}
