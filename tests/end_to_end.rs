//! End-to-end integration tests: the full MLCD pipeline (scenario analysis
//! → search → profiling against the simulated cloud → deployment) across
//! crates, scenarios and searchers.

use mlcd::prelude::*;
use mlcd::search::{CherryPick, ConvBo};
use mlcd_perfmodel::NoiseModel;

fn standard_types() -> Vec<InstanceType> {
    vec![
        InstanceType::C5Xlarge,
        InstanceType::C54xlarge,
        InstanceType::C5n4xlarge,
        InstanceType::P2Xlarge,
    ]
}

#[test]
fn every_searcher_completes_every_scenario() {
    let job = TrainingJob::resnet_cifar10();
    let scenarios = [
        Scenario::FastestUnlimited,
        Scenario::CheapestWithDeadline(SimDuration::from_hours(12.0)),
        Scenario::FastestWithBudget(Money::from_dollars(150.0)),
    ];
    let searchers: Vec<Box<dyn Searcher>> = vec![
        Box::new(HeterBo::seeded(1)),
        Box::new(ConvBo::seeded(1)),
        Box::new(CherryPick::seeded(1)),
        Box::new(RandomSearch::new(6, 1)),
        Box::new(ExhaustiveSearch::strided(25)),
    ];
    let runner = ExperimentRunner::new(1).with_types(standard_types());
    for scenario in &scenarios {
        for s in &searchers {
            let out = runner.run(s.as_ref(), &job, scenario);
            assert!(out.plan.is_some(), "{} found nothing under {scenario}", s.name());
            assert!(out.search.n_probes() >= 1);
            assert!(out.total_cost.dollars() > 0.0);
            // Breakdown must add up exactly.
            assert!(
                (out.total_cost.dollars()
                    - out.search.profile_cost.dollars()
                    - out.train_cost.dollars())
                .abs()
                    < 1e-9
            );
        }
    }
}

#[test]
fn heterbo_budget_guarantee_across_seeds() {
    // The paper's core guarantee: HeterBO never busts the budget. Exercise
    // it across seeds with realistic observation noise.
    let job = TrainingJob::resnet_cifar10();
    let budget = Money::from_dollars(120.0);
    let scenario = Scenario::FastestWithBudget(budget);
    for seed in 0..8 {
        let runner = ExperimentRunner::new(seed).with_types(standard_types());
        let out = runner.run(&HeterBo::seeded(seed), &job, &scenario);
        assert!(
            out.total_cost.dollars() <= budget.dollars() * 1.01,
            "seed {seed}: HeterBO spent {} of {budget}",
            out.total_cost
        );
    }
}

#[test]
fn heterbo_deadline_guarantee_across_seeds() {
    let job = TrainingJob::resnet_cifar10();
    // A deadline with the paper-like ~60-75% opt-to-deadline tightness.
    let deadline = SimDuration::from_hours(8.0);
    let scenario = Scenario::CheapestWithDeadline(deadline);
    for seed in 0..8 {
        let runner = ExperimentRunner::new(seed).with_types(standard_types());
        let out = runner.run(&HeterBo::seeded(seed), &job, &scenario);
        assert!(
            out.total_time.as_hours() <= deadline.as_hours() * 1.01,
            "seed {seed}: HeterBO took {:.2} h of {:.1} h",
            out.total_time.as_hours(),
            deadline.as_hours()
        );
    }
}

#[test]
fn searches_fully_deterministic_per_seed() {
    let job = TrainingJob::char_rnn();
    let scenario = Scenario::FastestWithBudget(Money::from_dollars(100.0));
    let run = || {
        let runner = ExperimentRunner::new(5).with_types(standard_types());
        let out = runner.run(&HeterBo::seeded(5), &job, &scenario);
        (
            out.plan.map(|p| p.deployment),
            out.search.n_probes(),
            out.total_cost.dollars().to_bits(),
            out.total_time.as_secs().to_bits(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn noiseless_profiling_recovers_ground_truth_speeds() {
    let job = TrainingJob::resnet_cifar10();
    let truth = ThroughputModel::default();
    let runner =
        ExperimentRunner::new(9).with_types(standard_types()).with_noise(NoiseModel::noiseless());
    let out = runner.run(&HeterBo::seeded(9), &job, &Scenario::FastestUnlimited);
    for step in &out.search.steps {
        let o = step.observation;
        let expect = truth.throughput(&job, o.deployment.itype, o.deployment.n).unwrap();
        assert!(
            (o.speed - expect).abs() < 1e-9,
            "noiseless observation at {} should be exact",
            o.deployment
        );
    }
}

#[test]
fn heterbo_beats_convbo_on_cost_in_expectation() {
    // Headline direction over a handful of seeds on the real pipeline.
    let job = TrainingJob::resnet_cifar10();
    let scenario = Scenario::FastestWithBudget(Money::from_dollars(150.0));
    let (mut h_total, mut c_total) = (0.0, 0.0);
    for seed in 0..4 {
        let runner = ExperimentRunner::new(seed).with_types(standard_types());
        h_total += runner.run(&HeterBo::seeded(seed), &job, &scenario).total_cost.dollars();
        c_total += runner.run(&ConvBo::seeded(seed), &job, &scenario).total_cost.dollars();
    }
    assert!(
        h_total < c_total,
        "HeterBO mean total ${:.2} should undercut ConvBO's ${:.2}",
        h_total / 4.0,
        c_total / 4.0
    );
}

#[test]
fn engine_plan_and_execute_round_trip() {
    use mlcd::deployment::SearchSpace;
    use mlcd::system::{DeploymentEngine, Profiler, ProfilerConfig, SimMlPlatform};
    use mlcd_cloudsim::SimCloud;

    let job = TrainingJob::char_rnn();
    let truth = ThroughputModel::default();
    let space = SearchSpace::new(&standard_types(), 30, &job, &truth);
    let cloud = SimCloud::new(33);
    let platform = SimMlPlatform::new(job, truth, NoiseModel::default(), 34);
    let mut profiler = Profiler::new(cloud, platform, space, ProfilerConfig::default());

    let engine = DeploymentEngine::new(HeterBo::seeded(33));
    let (outcome, plan) =
        engine.plan(&mut profiler, &Scenario::FastestWithBudget(Money::from_dollars(150.0)));
    let plan = plan.expect("found a plan");
    assert!(outcome.n_probes() >= 4, "should at least sweep the types");

    let (cloud, platform) = profiler.into_parts();
    let report = engine.execute(&cloud, &platform, &plan).unwrap();
    assert_eq!(report.deployment, plan.deployment);
    // The bill covers both phases and is internally consistent.
    let total_billed = cloud.billing().total_cost();
    assert!(
        total_billed.dollars()
            >= outcome.profile_cost.dollars() + report.train_cost.dollars() - 1e-6
    );
}

#[test]
fn parallel_init_sweep_saves_wall_clock() {
    // Against the real simulated cloud (which supports concurrent
    // clusters), running the type sweep as a batch cuts profiling
    // wall-clock without changing the money math's integrity.
    let job = TrainingJob::resnet_cifar10();
    let scenario = Scenario::FastestUnlimited;
    let seq = ExperimentRunner::new(3).with_types(standard_types()).run(
        &HeterBo::seeded(3),
        &job,
        &scenario,
    );
    let par = ExperimentRunner::new(3).with_types(standard_types()).run(
        &HeterBo::with_parallel_init(3),
        &job,
        &scenario,
    );
    // The sweep (4 probes ≈ 40+ min sequential) collapses to ~the slowest
    // probe; total profiling wall-clock must drop measurably.
    assert!(
        par.search.profile_time.as_secs() < seq.search.profile_time.as_secs() - 15.0 * 60.0,
        "parallel {:.2} h vs sequential {:.2} h",
        par.search.profile_time.as_hours(),
        seq.search.profile_time.as_hours()
    );
    // And the accounting still decomposes exactly.
    assert!(
        (par.total_cost.dollars() - par.search.profile_cost.dollars() - par.train_cost.dollars())
            .abs()
            < 1e-9
    );
}

#[test]
fn profiling_spend_matches_cloud_billing() {
    use mlcd::deployment::{Deployment, SearchSpace};
    use mlcd::env::ProfilingEnv;
    use mlcd::system::{Profiler, ProfilerConfig, SimMlPlatform};
    use mlcd_cloudsim::SimCloud;

    let job = TrainingJob::resnet_cifar10();
    let truth = ThroughputModel::default();
    let space = SearchSpace::new(&standard_types(), 20, &job, &truth);
    let cloud = SimCloud::new(77);
    let platform = SimMlPlatform::new(job, truth, NoiseModel::default(), 78);
    let mut profiler = Profiler::new(cloud, platform, space, ProfilerConfig::default());

    for (t, n) in
        [(InstanceType::C5Xlarge, 3u32), (InstanceType::P2Xlarge, 5), (InstanceType::C54xlarge, 12)]
    {
        profiler.profile(&Deployment::new(t, n)).unwrap();
    }
    let billed = profiler.cloud().billing().total_cost();
    assert!(
        (profiler.spent().dollars() - billed.dollars()).abs() < 1e-9,
        "profiler accounting {} vs cloud billing {}",
        profiler.spent(),
        billed
    );
}
