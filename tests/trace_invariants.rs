//! `SearchTrace` invariants, checked against full kernel-backed searches:
//!
//! * **spend accounting** — the cumulative profiling spend carried by the
//!   last traced probe equals the outcome's `profile_cost` exactly, and
//!   the per-probe `profile_cost`s sum to the same figure;
//! * **incumbent monotonicity** — `IncumbentChanged` events form a
//!   strictly increasing utility sequence;
//! * **purity** — tracing never perturbs the search: traced and untraced
//!   runs produce bit-identical outcomes.

use mlcd::prelude::*;
use mlcd::search::{CherryPick, ConvBo};

fn runner(seed: u64) -> ExperimentRunner {
    ExperimentRunner::new(seed).with_types(vec![
        InstanceType::C5Xlarge,
        InstanceType::C54xlarge,
        InstanceType::C5n4xlarge,
        InstanceType::P2Xlarge,
    ])
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::FastestUnlimited,
        Scenario::CheapestWithDeadline(SimDuration::from_hours(12.0)),
        Scenario::FastestWithBudget(Money::from_dollars(150.0)),
    ]
}

fn searchers(seed: u64) -> Vec<Box<dyn Searcher>> {
    vec![
        Box::new(HeterBo::seeded(seed)),
        Box::new(ConvBo::seeded(seed)),
        Box::new(CherryPick::seeded(seed)),
    ]
}

#[test]
fn traced_probe_spend_matches_outcome_spend() {
    let job = TrainingJob::resnet_cifar10();
    for scenario in scenarios() {
        for seed in [1, 2] {
            for searcher in searchers(seed) {
                let (outcome, trace) = runner(seed).run_traced(searcher.as_ref(), &job, &scenario);
                let ctx = format!("{} / {scenario} / seed {seed}", outcome.searcher);

                // The running total on the last probe event is the
                // outcome's spend, bit for bit.
                let last = trace.final_probe_spend().expect("at least one probe traced");
                assert_eq!(
                    last.dollars().to_bits(),
                    outcome.search.profile_cost.dollars().to_bits(),
                    "{ctx}: cumulative traced spend != outcome spend"
                );

                // And the per-probe costs sum to it (floating-point sum,
                // so compare with a tolerance).
                let sum: f64 = trace.probes().map(|o| o.profile_cost.dollars()).sum();
                assert!(
                    (sum - outcome.search.profile_cost.dollars()).abs() < 1e-6,
                    "{ctx}: Σ probe costs {sum} != spend {}",
                    outcome.search.profile_cost.dollars()
                );

                // One traced probe per recorded search step.
                assert_eq!(trace.probes().count(), outcome.search.n_probes(), "{ctx}");
            }
        }
    }
}

#[test]
fn incumbent_changes_are_strict_improvements() {
    let job = TrainingJob::resnet_cifar10();
    for scenario in scenarios() {
        for seed in [1, 2, 3] {
            for searcher in searchers(seed) {
                let (outcome, trace) = runner(seed).run_traced(searcher.as_ref(), &job, &scenario);
                let utilities = trace.incumbent_utilities();
                assert!(
                    !utilities.is_empty(),
                    "{}: a successful search must improve its incumbent at least once",
                    outcome.searcher
                );
                for w in utilities.windows(2) {
                    assert!(
                        w[1] > w[0],
                        "{} / {scenario} / seed {seed}: incumbent utilities not strictly \
                         increasing: {utilities:?}",
                        outcome.searcher
                    );
                }
            }
        }
    }
}

#[test]
fn tracing_is_pure_observation() {
    let job = TrainingJob::resnet_cifar10();
    let scenario = Scenario::FastestWithBudget(Money::from_dollars(120.0));
    for seed in [5, 9] {
        for (plain, traced) in searchers(seed).into_iter().zip(searchers(seed)) {
            let untraced = runner(seed).run(plain.as_ref(), &job, &scenario);
            let (outcome, trace) = runner(seed).run_traced(traced.as_ref(), &job, &scenario);
            assert_eq!(untraced.search.steps, outcome.search.steps, "{}", outcome.searcher);
            assert_eq!(
                untraced.total_cost.dollars().to_bits(),
                outcome.total_cost.dollars().to_bits(),
                "{}",
                outcome.searcher
            );
            assert!(trace.stop_reason().is_some(), "{}", outcome.searcher);
        }
    }
}
